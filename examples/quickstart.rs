//! Quickstart: build a small Dragonfly, run uniform-random traffic under
//! Q-adaptive routing, and print the measured statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec as Spec;

fn main() {
    // A 342-node Dragonfly (p=3, a=6, h=3 → 19 groups); small enough to run
    // in a couple of seconds, large enough to show path diversity.
    let config = DragonflyConfig::small();
    println!("Topology: {config}");

    let report = SimulationBuilder::new(config)
        .routing(Spec::QAdaptive(QAdaptiveParams::paper_1056()))
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(0.5)
        .warmup_ns(50_000) // 50 µs to let the agents learn
        .measure_ns(50_000) // measure over the next 50 µs
        .seed(42)
        .run();

    println!("\n== Q-adaptive under uniform random traffic, offered load 0.5 ==");
    println!("packets delivered   : {}", report.packets_delivered);
    println!("system throughput   : {:.3}", report.throughput);
    println!("mean latency        : {:.2} µs", report.mean_latency_us);
    println!("p99 latency         : {:.2} µs", report.p99_latency_us);
    println!("mean hops           : {:.2}", report.mean_hops);
    println!("events simulated    : {}", report.events_processed);
    println!("wall-clock time     : {:.2} s", report.wall_seconds);

    // Compare against plain minimal routing on the same workload.
    let min_report = SimulationBuilder::new(config)
        .routing(Spec::Minimal)
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(0.5)
        .warmup_ns(50_000)
        .measure_ns(50_000)
        .seed(42)
        .run();

    println!("\n== Minimal routing on the same workload ==");
    println!("{}", min_report.summary());
    println!("{}", report.summary());
    println!(
        "\nUnder benign uniform traffic Q-adaptive should be close to the \
         minimal-routing optimum (it learns to route minimally)."
    );
}
