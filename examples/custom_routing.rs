//! Extending the library: implement a custom routing algorithm against the
//! engine's `RoutingAlgorithm` / `RouterAgent` traits and evaluate it with
//! the same harness used for the paper's algorithms.
//!
//! The toy algorithm below ("coin-flip Valiant") routes each packet
//! minimally or through a random intermediate group with 50/50 probability,
//! regardless of congestion — a deliberately naive midpoint between MIN and
//! VALg that is easy to reason about.
//!
//! ```text
//! cargo run --release --example custom_routing
//! ```

use qadaptive::engine::config::EngineConfig;
use qadaptive::engine::injector::{Injection, TrafficInjector};
use qadaptive::engine::observer::CountingObserver;
use qadaptive::engine::packet::{Packet, RouteMode};
use qadaptive::engine::routing::{
    vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm,
};
use qadaptive::engine::Engine;
use qadaptive::prelude::*;
use qadaptive::topology::ids::{NodeId, RouterId};
use qadaptive::topology::{AnyTopology, Dragonfly, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Coin-flip Valiant: 50 % minimal, 50 % Valiant-global, decided at the
/// source router.
struct CoinFlipValiant;

impl RoutingAlgorithm for CoinFlipValiant {
    fn name(&self) -> String {
        "CoinFlip".to_string()
    }

    fn num_vcs(&self) -> usize {
        3
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(CoinFlipAgent {
            router,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

struct CoinFlipAgent {
    router: RouterId,
    rng: StdRng,
}

impl RouterAgent for CoinFlipAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;
        if packet.at_source_router(self.router)
            && packet.route.mode == RouteMode::Minimal
            && packet.src_group != packet.dst_group
            && self.rng.gen_bool(0.5)
        {
            let ig =
                topo.random_intermediate_domain(&mut self.rng, packet.src_group, packet.dst_group);
            packet.route.mode = RouteMode::Valiant;
            packet.route.intermediate_group = Some(ig);
        }
        let port = match packet.route.mode {
            RouteMode::Valiant if !packet.route.reached_intermediate => {
                let ig = packet.route.intermediate_group.unwrap();
                if topo.domain_of_router(self.router) == ig {
                    packet.route.reached_intermediate = true;
                    topo.minimal_port(self.router, packet.dst_router).unwrap()
                } else {
                    // Topology-agnostic: the trait picks the Dragonfly
                    // gateway hop, the fat-tree up-link or the HyperX
                    // column link as appropriate.
                    topo.port_toward_domain(self.router, ig)
                }
            }
            _ => topo.minimal_port(self.router, packet.dst_router).unwrap(),
        };
        Decision {
            port,
            vc: vc_for_next_hop(packet, ctx.num_vcs()),
        }
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, _packet: &Packet) -> f64 {
        0.0
    }
}

/// Drive the custom algorithm directly through the engine with a scripted
/// uniform workload (the high-level `SimulationBuilder` only knows the
/// built-in algorithms, so this example shows the lower-level API).
fn evaluate(algo: &dyn RoutingAlgorithm) -> CountingObserver {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes() as u64;
    let script: Vec<Injection> = (0..20_000u64)
        .map(|i| Injection {
            time: i * 4,
            src: NodeId((i % n) as u32),
            dst: NodeId((((i * 37) + 11) % n) as u32),
        })
        .collect();
    struct V(Vec<Injection>, usize);
    impl TrafficInjector for V {
        fn next_injection(&mut self) -> Option<Injection> {
            let i = self.0.get(self.1).copied();
            self.1 += 1;
            i
        }
    }
    let cfg = EngineConfig::paper(algo.num_vcs());
    let mut engine = Engine::new(
        topo,
        cfg,
        algo,
        Box::new(V(script, 0)),
        CountingObserver::default(),
        3,
    );
    engine.run_to_drain(10_000_000);
    *engine.observer()
}

fn main() {
    println!("Custom routing algorithm through the public RouterAgent trait\n");
    for (label, algo) in [
        ("CoinFlip", &CoinFlipValiant as &dyn RoutingAlgorithm),
        ("MIN", &qadaptive::routing::MinRouting),
        (
            "Q-adaptive",
            &qadaptive::core::QAdaptiveRouting::paper_1056(),
        ),
    ] {
        let obs = evaluate(algo);
        println!(
            "{:<12} delivered={:>6}  mean latency={:>8.2} µs  mean hops={:>5.2}",
            label,
            obs.delivered,
            obs.mean_latency_ns() / 1_000.0,
            obs.mean_hops()
        );
    }
    println!(
        "\nCoin-flipping wastes bandwidth under uniform traffic (longer paths, higher\n\
         latency); congestion-aware and learning algorithms avoid that."
    );
}
