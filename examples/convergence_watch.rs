//! Watch the multi-agent system converge: start from an empty network and
//! print the per-10-µs average packet latency as the routers learn
//! (the paper's Figure 7, scaled down).
//!
//! ```text
//! cargo run --release --example convergence_watch
//! ```

use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec as Spec;
use qadaptive::sim::convergence::run_convergence;
use qadaptive::traffic::schedule::LoadSchedule;

fn main() {
    let result = run_convergence(
        DragonflyConfig::small(),
        Spec::QAdaptive(QAdaptiveParams::paper_1056()),
        TrafficSpec::Adversarial { shift: 1 },
        LoadSchedule::constant(0.35),
        400_000, // 400 µs total
        10_000,  // 10 µs bins
        100_000, // measure the final 100 µs
        21,
    );

    println!("Q-adaptive convergence under ADV+1, offered load 0.35\n");
    println!("{:>10} {:>18}", "time (µs)", "mean latency (µs)");
    for (t, lat) in result.latency_curve() {
        let bar_len = (lat * 10.0).min(60.0) as usize;
        println!("{:>10.0} {:>18.2}  {}", t, lat, "#".repeat(bar_len));
    }
    match result.convergence_us {
        Some(t) => println!("\nLatency settled after ~{t:.0} µs (paper: under 500 µs)."),
        None => println!("\nLatency had not settled within the simulated window."),
    }
    println!("\nConverged-window summary: {}", result.report.summary());
}
