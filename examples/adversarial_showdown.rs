//! Adversarial-traffic showdown: the motivating scenario of the paper.
//!
//! Under ADV+1 traffic every group sends all of its packets to the next
//! group, so the single global link between the two groups saturates and
//! minimal routing collapses. Valiant routing fixes the throughput but
//! wastes bandwidth when it is not needed; adaptive routing has to figure
//! out the right mix from local congestion signals. Q-adaptive learns it.
//!
//! ```text
//! cargo run --release --example adversarial_showdown
//! ```

use qadaptive::metrics::report::SimulationReport;
use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec as Spec;

fn run(routing: Spec, load: f64) -> SimulationReport {
    SimulationBuilder::new(DragonflyConfig::small())
        .routing(routing)
        .traffic(TrafficSpec::Adversarial { shift: 1 })
        .offered_load(load)
        .warmup_ns(80_000)
        .measure_ns(60_000)
        .seed(7)
        .run()
}

fn main() {
    let load = 0.40;
    println!(
        "ADV+1 adversarial traffic at offered load {load} on {}",
        DragonflyConfig::small()
    );
    println!(
        "(paper: MIN collapses, VALn is the classic fix, Q-adaptive should match or beat it)\n"
    );

    let lineup = [
        Spec::Minimal,
        Spec::ValiantNode,
        Spec::UgalG,
        Spec::UgalN,
        Spec::Par,
        Spec::QAdaptive(QAdaptiveParams::paper_1056()),
    ];

    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>10}",
        "routing", "throughput", "mean lat (µs)", "p99 (µs)", "hops"
    );
    for spec in lineup {
        let r = run(spec, load);
        println!(
            "{:<10} {:>10.3} {:>14.2} {:>12.2} {:>10.2}",
            r.routing, r.throughput, r.mean_latency_us, r.p99_latency_us, r.mean_hops
        );
    }

    println!(
        "\nExpected shape: MIN saturates well below the offered load; VALn and the\n\
         adaptive algorithms keep up; Q-adaptive reaches the highest throughput with\n\
         the shortest paths because it only reroutes when the Q-table says it pays off."
    );
}
