//! HPC communication patterns (the paper's Section 6 case study, scaled
//! down): 3D Stencil, Many-to-Many and Random Neighbors, comparing minimal
//! routing, UGALg and Q-adaptive.
//!
//! ```text
//! cargo run --release --example hpc_workloads
//! ```

use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec as Spec;
use qadaptive::traffic::TrafficSpec as Traffic;

fn main() {
    let config = DragonflyConfig::small();
    let patterns = [
        Traffic::Stencil3D,
        Traffic::ManyToMany,
        Traffic::RandomNeighbors,
    ];
    let routings = [
        ("MIN", Spec::Minimal),
        ("UGALg", Spec::UgalG),
        ("Q-adp", Spec::QAdaptive(QAdaptiveParams::paper_2550())),
    ];

    println!("HPC workloads on {config}\n");
    for pattern in patterns {
        println!("--- {} ---", pattern.label());
        println!(
            "{:<8} {:>10} {:>14} {:>10} {:>8}",
            "routing", "throughput", "mean lat (µs)", "p99 (µs)", "hops"
        );
        for (label, spec) in routings {
            let report = SimulationBuilder::new(config)
                .routing(spec)
                .traffic(pattern)
                .offered_load(0.5)
                .warmup_ns(60_000)
                .measure_ns(60_000)
                .seed(11)
                .run();
            println!(
                "{:<8} {:>10.3} {:>14.2} {:>10.2} {:>8.2}",
                label,
                report.throughput,
                report.mean_latency_us,
                report.p99_latency_us,
                report.mean_hops
            );
        }
        println!();
    }
    println!(
        "The paper's observation: Q-adaptive matches the best baseline on every\n\
         pattern because it adapts per (source, destination-group) rather than\n\
         committing to one routing style."
    );
}
