//! # qadaptive — facade crate
//!
//! A from-scratch Rust reproduction of *"Q-adaptive: A Multi-Agent
//! Reinforcement Learning Based Routing on Dragonfly Network"* (HPDC 2021).
//!
//! This crate re-exports the whole workspace under a single name so that
//! examples, integration tests and downstream users can depend on one
//! crate:
//!
//! * [`topology`] — the topology abstraction (`Topology` trait, locality
//!   domains) with three implementations: the paper's Dragonfly, a
//!   three-level fat-tree and a 2-D HyperX, selectable from scenario
//!   files via the tagged `TopologySpec`.
//! * [`engine`] — the flit-level, event-driven network simulator substrate
//!   (routers with virtual channels, credit-based flow control, links).
//! * [`core`] — the paper's contribution: the two-level Q-table, hysteretic
//!   Q-learning, and the Q-adaptive routing agent.
//! * [`routing`] — every routing algorithm evaluated by the paper
//!   (MIN, VALg, VALn, UGALg, UGALn, PAR, Q-routing, Q-adaptive).
//! * [`traffic`] — traffic patterns (UR, ADV+i, 3D Stencil, Many-to-Many,
//!   Random Neighbors) and dynamic load schedules.
//! * [`metrics`] — latency/throughput/hop statistics and time series.
//! * [`sim`] — the experiment harness: the **serializable experiment API**
//!   ([`sim::spec::ExperimentSpec`] / [`sim::spec::SweepSpec`], loadable
//!   from the TOML/JSON scenario files under `scenarios/`), the
//!   [`sim::builder::SimulationBuilder`] it wraps, parallel sweeps and
//!   convergence studies.
//!
//! ## Quickstart
//!
//! Experiments are *data*: one [`ExperimentSpec`] value describes the
//! topology, routing, traffic, load and measurement windows of a run, and
//! the same value round-trips through TOML/JSON scenario files (see
//! `scenarios/README.md`) and the `qadaptive-cli` binary.
//!
//! ```
//! use qadaptive::prelude::*;
//!
//! // A small Dragonfly (p=2, a=4, h=2 → 72 nodes) under uniform-random
//! // traffic, routed by Q-adaptive.
//! let mut spec = ExperimentSpec::new(DragonflyConfig::new(2, 4, 2).unwrap());
//! spec.routing = RoutingSpec::QAdaptive(QAdaptiveParams::default());
//! spec.load = Some(0.3);
//! spec.warmup_ns = 20_000;
//! spec.measure_ns = 20_000;
//! spec.seed = Some(7);
//!
//! let report = spec.run();
//! assert!(report.packets_delivered > 0);
//!
//! // The exact same experiment as a scenario file:
//! let round_tripped = ExperimentSpec::from_toml(&spec.to_toml()).unwrap();
//! assert_eq!(round_tripped, spec);
//! ```
//!
//! The fluent [`SimulationBuilder`] is equivalent (and convertible both
//! ways via [`ExperimentSpec::to_builder`] /
//! [`SimulationBuilder::to_spec`]):
//!
//! ```
//! use qadaptive::prelude::*;
//!
//! let report = SimulationBuilder::new(DragonflyConfig::new(2, 4, 2).unwrap())
//!     .routing(RoutingSpec::QAdaptive(QAdaptiveParams::default()))
//!     .traffic(TrafficSpec::UniformRandom)
//!     .offered_load(0.3)
//!     .warmup_ns(20_000)
//!     .measure_ns(20_000)
//!     .seed(7)
//!     .run();
//! assert!(report.packets_delivered > 0);
//! ```
//!
//! Grids over routings × loads × traffics × seeds are [`SweepSpec`]s:
//!
//! ```no_run
//! use qadaptive::prelude::*;
//!
//! let sweep = SweepSpec::paper_lineup(
//!     DragonflyConfig::paper_1056(),
//!     TrafficSpec::Adversarial { shift: 1 },
//!     vec![0.1, 0.2, 0.3, 0.4, 0.5],
//!     120_000,
//!     40_000,
//! );
//! let result = sweep.run_parallel(0); // one worker per CPU
//! println!("{}", result.to_csv());
//! ```

pub use dragonfly_engine as engine;
pub use dragonfly_metrics as metrics;
pub use dragonfly_routing as routing;
pub use dragonfly_sim as sim;
pub use dragonfly_topology as topology;
pub use dragonfly_traffic as traffic;
pub use qadaptive_core as core;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use dragonfly_engine::config::EngineConfig;
    pub use dragonfly_metrics::latency::LatencyStats;
    pub use dragonfly_metrics::report::SimulationReport;
    pub use dragonfly_routing::RoutingSpec;
    pub use dragonfly_sim::builder::SimulationBuilder;
    pub use dragonfly_sim::spec::{ExperimentSpec, SweepSpec};
    pub use dragonfly_sim::sweep::{LoadSweep, SweepResult};
    pub use dragonfly_topology::config::DragonflyConfig;
    pub use dragonfly_topology::{
        AnyTopology, Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig, Topology,
        TopologySpec,
    };
    pub use dragonfly_traffic::TrafficSpec;
    pub use qadaptive_core::params::QAdaptiveParams;
}
