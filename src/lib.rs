//! # qadaptive — facade crate
//!
//! A from-scratch Rust reproduction of *"Q-adaptive: A Multi-Agent
//! Reinforcement Learning Based Routing on Dragonfly Network"* (HPDC 2021).
//!
//! This crate re-exports the whole workspace under a single name so that
//! examples, integration tests and downstream users can depend on one
//! crate:
//!
//! * [`topology`] — the Dragonfly topology (groups, routers, ports, minimal
//!   and Valiant paths).
//! * [`engine`] — the flit-level, event-driven network simulator substrate
//!   (routers with virtual channels, credit-based flow control, links).
//! * [`core`] — the paper's contribution: the two-level Q-table, hysteretic
//!   Q-learning, and the Q-adaptive routing agent.
//! * [`routing`] — every routing algorithm evaluated by the paper
//!   (MIN, VALg, VALn, UGALg, UGALn, PAR, Q-routing, Q-adaptive).
//! * [`traffic`] — traffic patterns (UR, ADV+i, 3D Stencil, Many-to-Many,
//!   Random Neighbors) and dynamic load schedules.
//! * [`metrics`] — latency/throughput/hop statistics and time series.
//! * [`sim`] — the experiment harness used to regenerate the paper's tables
//!   and figures.
//!
//! ## Quickstart
//!
//! ```
//! use qadaptive::prelude::*;
//!
//! // A small Dragonfly (p=2, a=4, h=2 → 72 nodes) under uniform-random
//! // traffic, routed by Q-adaptive.
//! let report = SimulationBuilder::new(DragonflyConfig::new(2, 4, 2).unwrap())
//!     .routing(RoutingSpec::QAdaptive(QAdaptiveParams::default()))
//!     .traffic(TrafficSpec::UniformRandom)
//!     .offered_load(0.3)
//!     .warmup_ns(20_000)
//!     .measure_ns(20_000)
//!     .seed(7)
//!     .run();
//! assert!(report.packets_delivered > 0);
//! ```

pub use dragonfly_engine as engine;
pub use dragonfly_metrics as metrics;
pub use dragonfly_routing as routing;
pub use dragonfly_sim as sim;
pub use dragonfly_topology as topology;
pub use dragonfly_traffic as traffic;
pub use qadaptive_core as core;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use dragonfly_engine::config::EngineConfig;
    pub use dragonfly_metrics::latency::LatencyStats;
    pub use dragonfly_metrics::report::SimulationReport;
    pub use dragonfly_routing::RoutingSpec;
    pub use dragonfly_sim::builder::SimulationBuilder;
    pub use dragonfly_sim::sweep::{LoadSweep, SweepResult};
    pub use dragonfly_topology::config::DragonflyConfig;
    pub use dragonfly_topology::Dragonfly;
    pub use dragonfly_traffic::TrafficSpec;
    pub use qadaptive_core::params::QAdaptiveParams;
}
