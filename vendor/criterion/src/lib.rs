//! Vendored stand-in for the slice of the `criterion` API this workspace's
//! benches use. It runs each benchmark for a small, fixed time budget and
//! prints mean per-iteration wall time — enough to compare hot paths on a
//! developer machine, without the statistics machinery of real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// `(total_time, iterations)` of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Run `f` repeatedly for the time budget and record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then measure batches until the budget is used.
        black_box(f());
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < self.budget {
            black_box(f());
            iterations += 1;
        }
        self.result = Some((started.elapsed(), iterations.max(1)));
    }
}

fn run_case(name: &str, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!(
                "bench {name:<50} {:>12.3} µs/iter ({iters} iters)",
                per_iter * 1e6
            );
        }
        None => println!("bench {name:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the vendored harness keys its budget
    /// off wall time rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_case(&format!("{}/{}", self.name, id), self.budget, f);
    }

    /// Benchmark a closure against an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        run_case(&format!("{}/{}", self.name, id), self.budget, |b| {
            f(b, input)
        });
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Keep `cargo bench` fast: the shim is for relative comparisons.
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_case(name, self.budget, f);
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
