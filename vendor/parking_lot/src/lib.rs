//! Vendored stand-in for the `parking_lot` types this workspace uses,
//! implemented over `std::sync` (poisoning is swallowed, matching
//! parking_lot's no-poisoning semantics).

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` returns the guard directly (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire the lock only if it is free right now (parking_lot returns
    /// `Option` where `std` returns a `Result`; poisoning is swallowed).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(5);
        {
            let guard = m.try_lock().expect("uncontended try_lock succeeds");
            assert_eq!(*guard, 5);
            assert!(m.try_lock().is_none(), "held lock refuses a second guard");
        }
        assert!(m.try_lock().is_some(), "released lock is claimable again");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
