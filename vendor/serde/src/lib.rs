//! Vendored, dependency-free stand-in for the parts of `serde` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! serde (trait + proc-macro + per-format crates) we ship a small
//! self-describing data model: a [`Value`] tree plus [`Serialize`] /
//! [`Deserialize`] traits that convert to and from it. The companion
//! `serde_derive` proc-macro generates impls for plain structs (named or
//! newtype), and enums with unit / newtype / struct variants — exactly the
//! shapes appearing in this workspace — honouring `#[serde(skip)]` and
//! `#[serde(default)]` field attributes.
//!
//! The encoding mirrors serde's externally-tagged defaults so scenario
//! files look identical to what the real serde would read:
//!
//! * unit variant          → `"Minimal"`
//! * newtype variant       → `{ "QAdaptive": { ... } }`
//! * struct variant        → `{ "Adversarial": { "shift": 1 } }`
//! * newtype struct        → the inner value (transparent)
//! * `Option::None`        → null / absent field

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Self-describing value tree (the mini data model shared by the JSON and
/// TOML front-ends).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (wide enough for every integer type used in the workspace).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// (De)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Create an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialisation into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialisation from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// A `Value` is trivially its own wire representation, so raw trees can be
/// passed anywhere a `Serialize`/`Deserialize` type is expected.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    // Accept floats with an exact integral value (TOML users
                    // may write `seed = 1.0`).
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        <$t>::try_from(*f as i128).map_err(|_| Error::msg(format!(
                            "float {f} out of range for {}", stringify!($t))))
                    }
                    other => Err(Error::msg(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u128),
            other => Err(Error::msg(format!(
                "expected non-negative integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(Error::msg(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!(
                        "expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected a {expected}-tuple, found {} items",
                                items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected sequence (tuple), found {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Collection impls (used by the fault-injection masks and engine checkpoints)
// ---------------------------------------------------------------------------

/// Sequence-encoded collections: anything that iterates and rebuilds from an
/// item stream serialises as a [`Value::Seq`]. `BTreeSet`/`BTreeMap` iterate
/// in key order, so their wire form is canonical — equal collections always
/// produce byte-identical output, which the checkpoint bit-identity tests
/// rely on.
macro_rules! impl_seq_collection {
    ($(($coll:ident, $($bound:path),+))+) => {$(
        impl<T: Serialize $(+ $bound)+> Serialize for std::collections::$coll<T> {
            fn to_value(&self) -> Value {
                Value::Seq(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize $(+ $bound)+> Deserialize for std::collections::$coll<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => items.iter().map(T::from_value).collect(),
                    other => Err(Error::msg(format!(
                        "expected sequence, found {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_seq_collection! {
    (BTreeSet, Ord)
    (BinaryHeap, Ord)
    (VecDeque, Sized)
}

/// Maps encode as a sequence of `[key, value]` pairs so non-string keys
/// (e.g. `(router, port)` tuples) work without a string codec.
impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|item| match item {
                    Value::Seq(pair) if pair.len() == 2 => {
                        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                    }
                    other => Err(Error::msg(format!(
                        "expected [key, value] pair, found {}",
                        other.kind()
                    ))),
                })
                .collect(),
            other => Err(Error::msg(format!(
                "expected sequence of pairs, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => {
                if items.len() != N {
                    return Err(Error::msg(format!(
                        "expected an array of {N} items, found {}",
                        items.len()
                    )));
                }
                let elems: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                elems
                    .try_into()
                    .map_err(|_| Error::msg("array length changed during conversion"))
            }
            other => Err(Error::msg(format!(
                "expected sequence (array), found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(u64, f64)> = vec![(0, 0.5), (10, 0.9)];
        assert_eq!(Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
        let set: BTreeSet<(u32, u16)> = [(3, 1), (0, 9)].into_iter().collect();
        assert_eq!(BTreeSet::from_value(&set.to_value()).unwrap(), set);
        let map: BTreeMap<u64, u32> = [(7, 2), (1, 5)].into_iter().collect();
        assert_eq!(BTreeMap::from_value(&map.to_value()).unwrap(), map);
        let deque: VecDeque<u32> = [4, 2, 9].into_iter().collect();
        assert_eq!(VecDeque::from_value(&deque.to_value()).unwrap(), deque);
        let heap: BinaryHeap<u64> = [5, 1, 3].into_iter().collect();
        let back = BinaryHeap::<u64>::from_value(&heap.to_value()).unwrap();
        assert_eq!(back.into_sorted_vec(), vec![1, 3, 5]);
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[u64; 4]>::from_value(&Value::Seq(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn errors_name_the_shapes() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
