//! Vendored minimal TOML reader/writer over the mini-serde [`Value`] model
//! (see `vendor/serde`).
//!
//! Supported TOML subset — everything the scenario files and specs need:
//!
//! * `key = value` pairs with bare or `"quoted"` keys,
//! * basic strings with escapes, literal `'...'` strings,
//! * integers, floats, booleans,
//! * (possibly multi-line, mixed-type, nested) arrays,
//! * inline tables `{ a = 1, b = "x" }`,
//! * `[section]` / `[nested.section]` headers,
//! * `[[array.of.tables]]` headers (each appends one element; key lines
//!   and dotted keys land in the most recent element),
//! * comments.
//!
//! The writer renders arrays of tables inline (`key = [{..}, {..}]`),
//! which the parser accepts, so round-trips stay exact.
//!
//! Not supported (not used by this workspace): dates/times, dotted keys
//! on the left-hand side of assignments.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialise a value (whose tree must be map-rooted) to TOML.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    match value.to_value() {
        Value::Map(entries) => {
            let mut out = String::new();
            write_table(&mut out, &entries, &mut Vec::new())?;
            Ok(out)
        }
        other => Err(Error::msg(format!(
            "TOML documents must be maps at the top level, found {}",
            other.kind()
        ))),
    }
}

/// Parse a TOML document into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse a TOML document into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    Parser {
        bytes: s.as_bytes(),
        pos: 0,
        line: 1,
    }
    .document()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Write one table: scalar/array keys first, then sub-tables as
/// `[dotted.path]` sections (TOML requires this order).
fn write_table(
    out: &mut String,
    entries: &[(String, Value)],
    path: &mut Vec<String>,
) -> Result<(), Error> {
    for (key, value) in entries {
        match value {
            Value::Null => {}
            Value::Map(_) => {}
            other => {
                out.push_str(&format!("{} = ", format_key(key)));
                write_inline(out, other)?;
                out.push('\n');
            }
        }
    }
    for (key, value) in entries {
        if let Value::Map(inner) = value {
            path.push(key.clone());
            // A header like `[routing]` is only needed when the table has
            // direct (non-table) entries or no sub-tables at all; a pure
            // wrapper such as an enum tag is implied by `[routing.Variant]`.
            let has_scalars = inner
                .iter()
                .any(|(_, v)| !matches!(v, Value::Map(_) | Value::Null));
            let has_subtables = inner.iter().any(|(_, v)| matches!(v, Value::Map(_)));
            if has_scalars || !has_subtables {
                out.push('\n');
                out.push_str(&format!(
                    "[{}]\n",
                    path.iter()
                        .map(|k| format_key(k))
                        .collect::<Vec<_>>()
                        .join(".")
                ));
            }
            write_table(out, inner, path)?;
            path.pop();
        }
    }
    Ok(())
}

fn format_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        escape_basic_string(key)
    }
}

/// Render a TOML basic string (Rust's `{:?}` is close but emits `\u{N}`
/// escapes TOML cannot parse; TOML wants fixed-width `\uXXXX`).
fn escape_basic_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04X}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_inline(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => return Err(Error::msg("TOML cannot represent null values")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                out.push_str(if f.is_nan() {
                    "nan"
                } else if *f > 0.0 {
                    "inf"
                } else {
                    "-inf"
                });
            } else {
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            }
        }
        Value::Str(s) => out.push_str(&escape_basic_string(s)),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let mut first = true;
            for (k, val) in entries {
                if matches!(val, Value::Null) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("{} = ", format_key(k)));
                write_inline(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::msg(format!("TOML line {}: {}", self.line, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    /// Skip spaces/tabs and comments, not newlines.
    fn skip_inline_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip all whitespace including newlines and comments.
    fn skip_all_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                return;
            }
        }
    }

    fn document(&mut self) -> Result<Value, Error> {
        let mut root: Vec<(String, Value)> = Vec::new();
        let mut path: Vec<String> = Vec::new();
        loop {
            self.skip_all_ws();
            match self.peek() {
                None => return Ok(Value::Map(root)),
                Some(b'[') => {
                    self.bump();
                    if self.peek() == Some(b'[') {
                        // [[array.of.tables]]: append a fresh element; the
                        // following key lines land in it via table_at's
                        // descend-into-last-element rule.
                        self.bump();
                        path = self.key_path()?;
                        self.skip_inline_ws();
                        if self.bump() != Some(b']') || self.bump() != Some(b']') {
                            return Err(self.err("expected `]]` closing an array-of-tables header"));
                        }
                        let line = self.line;
                        let parent = table_at(&mut root, &path[..path.len() - 1], line)?;
                        let key = path.last().unwrap();
                        if !parent.iter().any(|(k, _)| k == key) {
                            parent.push((key.clone(), Value::Seq(Vec::new())));
                        }
                        let index = parent.iter().position(|(k, _)| k == key).unwrap();
                        match &mut parent[index].1 {
                            Value::Seq(items)
                                if items.iter().all(|v| matches!(v, Value::Map(_))) =>
                            {
                                items.push(Value::Map(Vec::new()))
                            }
                            other => {
                                return Err(Error::msg(format!(
                                    "TOML line {line}: key `{key}` is a {}, \
                                     not an array of tables",
                                    other.kind()
                                )))
                            }
                        }
                    } else {
                        path = self.key_path()?;
                        self.skip_inline_ws();
                        if self.bump() != Some(b']') {
                            return Err(self.err("expected `]` closing a table header"));
                        }
                        // Ensure the table exists even if it stays empty.
                        table_at(&mut root, &path, self.line)?;
                    }
                }
                Some(_) => {
                    let keys = self.key_path()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err("expected `=` after key"));
                    }
                    self.skip_inline_ws();
                    let value = self.value()?;
                    self.skip_inline_ws();
                    if !matches!(self.peek(), None | Some(b'\n')) {
                        return Err(self.err("unexpected characters after value"));
                    }
                    let mut full = path.clone();
                    full.extend(keys.iter().take(keys.len() - 1).cloned());
                    let table = table_at(&mut root, &full, self.line)?;
                    let key = keys.last().unwrap().clone();
                    if table.iter().any(|(k, _)| *k == key) {
                        return Err(Error::msg(format!("duplicate key `{key}`")));
                    }
                    table.push((key, value));
                }
            }
        }
    }

    /// A dotted key path (`a`, `a.b`, `"quoted".b`).
    fn key_path(&mut self) -> Result<Vec<String>, Error> {
        let mut keys = Vec::new();
        loop {
            self.skip_inline_ws();
            keys.push(self.key()?);
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.bump();
            } else {
                return Ok(keys);
            }
        }
    }

    fn key(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b'\'') => self.literal_string(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(e))?
                    .to_string())
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'"') => self.basic_string().map(Value::Str),
            Some(b'\'') => self.literal_string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') | Some(b'i') | Some(b'n') => self.keyword(),
            Some(b) if b == b'+' || b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self) -> Result<Value, Error> {
        for (word, value) in [
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("inf", Value::Float(f64::INFINITY)),
            ("nan", Value::Float(f64::NAN)),
        ] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(value);
            }
        }
        Err(self.err("invalid literal"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.bump(); // [
        let mut items = Vec::new();
        loop {
            self.skip_all_ws();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_all_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, Error> {
        self.bump(); // {
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_inline_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_inline_ws();
            let keys = self.key_path()?;
            self.skip_inline_ws();
            if self.bump() != Some(b'=') {
                return Err(self.err("expected `=` in inline table"));
            }
            self.skip_inline_ws();
            let value = self.value()?;
            let table = table_at(&mut entries, &keys[..keys.len() - 1], self.line)?;
            table.push((keys.last().unwrap().clone(), value));
            self.skip_inline_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }

    fn basic_string(&mut self) -> Result<String, Error> {
        self.bump(); // "
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') | Some(b'U') => {
                        let len = if self.bytes[self.pos - 1] == b'u' {
                            4
                        } else {
                            8
                        };
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + len)
                            .ok_or_else(|| self.err("truncated unicode escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| self.err(e))?,
                            16,
                        )
                        .map_err(|e| self.err(e))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        self.pos += len;
                    }
                    other => return Err(self.err(format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 scalar.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| self.err(e))?);
                    self.pos = start + width;
                }
            }
        }
    }

    fn literal_string(&mut self) -> Result<String, Error> {
        self.bump(); // '
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\'' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(e))?
                    .to_string();
                self.bump();
                return Ok(s);
            }
            if b == b'\n' {
                return Err(self.err("unterminated literal string"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated literal string"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        if self.bytes[self.pos..].starts_with(b"inf") {
            self.pos += 3;
            let sign = if self.bytes[start] == b'-' { -1.0 } else { 1.0 };
            return Ok(Value::Float(sign * f64::INFINITY));
        }
        if self.bytes[self.pos..].starts_with(b"nan") {
            self.pos += 3;
            return Ok(Value::Float(f64::NAN));
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| self.err(e))?
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(e))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| self.err(e))
        }
    }
}

/// Navigate (creating as needed) to the table at `path` under `root`.
/// A path component holding an array of tables descends into its most
/// recently appended element (the TOML `[[...]]` scoping rule).
fn table_at<'t>(
    root: &'t mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<&'t mut Vec<(String, Value)>, Error> {
    let mut current = root;
    for key in path {
        if !current.iter().any(|(k, _)| k == key) {
            current.push((key.clone(), Value::Map(Vec::new())));
        }
        let index = current.iter().position(|(k, _)| k == key).unwrap();
        match &mut current[index].1 {
            Value::Map(inner) => current = inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => current = inner,
                _ => {
                    return Err(Error::msg(format!(
                        "TOML line {line}: key `{key}` is an array, not an array of tables"
                    )))
                }
            },
            other => {
                return Err(Error::msg(format!(
                    "TOML line {line}: key `{key}` is a {}, not a table",
                    other.kind()
                )))
            }
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = r#"
# experiment
name = "adv-sweep"
loads = [0.1, 0.2, 0.45]
seeds = [1, 2, 3]
quick = true

[topology]
p = 4
a = 8
h = 4

[routing.QAdaptive]
alpha = 0.2
"#;
        let v = parse_value(doc).unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("adv-sweep".into())));
        assert_eq!(
            v.get("loads"),
            Some(&Value::Seq(vec![
                Value::Float(0.1),
                Value::Float(0.2),
                Value::Float(0.45)
            ]))
        );
        assert_eq!(v.get("topology").unwrap().get("a"), Some(&Value::Int(8)));
        assert_eq!(
            v.get("routing")
                .unwrap()
                .get("QAdaptive")
                .unwrap()
                .get("alpha"),
            Some(&Value::Float(0.2))
        );
    }

    #[test]
    fn inline_tables_and_multiline_arrays() {
        let doc = "routing = { Adversarial = { shift = 4 } }\nsegments = [\n  [0, 0.4],\n  [200000, 0.8], # step\n]\n";
        let v = parse_value(doc).unwrap();
        assert_eq!(
            v.get("routing")
                .unwrap()
                .get("Adversarial")
                .unwrap()
                .get("shift"),
            Some(&Value::Int(4))
        );
        match v.get("segments").unwrap() {
            Value::Seq(items) => assert_eq!(items.len(), 2),
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn writer_output_reparses_to_the_same_tree() {
        // Keys are listed in the order the writer emits them (scalars and
        // arrays before sub-tables); typed deserialisation looks fields up
        // by name, so this reordering is invisible to round-trips.
        let v = Value::Map(vec![
            ("name".into(), Value::Str("x".into())),
            (
                "loads".into(),
                Value::Seq(vec![Value::Float(0.5), Value::Int(1)]),
            ),
            (
                "inline".into(),
                Value::Seq(vec![Value::Map(vec![("k".into(), Value::Int(3))])]),
            ),
            (
                "routing".into(),
                Value::Map(vec![(
                    "QAdaptive".into(),
                    Value::Map(vec![("alpha".into(), Value::Float(0.2))]),
                )]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(v.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn control_characters_round_trip_as_toml_escapes() {
        let original = Value::Map(vec![(
            "name".into(),
            Value::Str("bell\u{7} tab\t quote\" back\\slash μ".into()),
        )]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(original.clone())).unwrap();
        assert!(text.contains("\\u0007"), "got: {text}");
        assert_eq!(parse_value(&text).unwrap(), original);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse_value("a = 1\na = 2\n").is_err());
        // An existing scalar key cannot be reopened as an array of tables.
        assert!(parse_value("points = 3\n[[points]]\nx = 1\n").is_err());
        // An inline array of scalars is not an array of tables.
        assert!(parse_value("p = [1, 2]\n[[p]]\nx = 1\n").is_err());
        assert!(parse_value("[[broken]\nx = 1\n").is_err());
    }

    #[test]
    fn array_of_tables_headers_append_elements() {
        let parsed = parse_value(
            "name = \"exp\"\n\
             [[faults]]\n\
             at_us = 50.0\n\
             kind = \"link_down\"\n\
             [[faults]]\n\
             at_us = 80.0\n\
             kind = \"router_up\"\n\
             router = 3\n",
        )
        .unwrap();
        let Value::Map(root) = parsed else {
            panic!("document is a map")
        };
        assert_eq!(root[0], ("name".to_string(), Value::Str("exp".to_string())));
        let Value::Seq(faults) = &root[1].1 else {
            panic!("[[faults]] builds a sequence")
        };
        assert_eq!(faults.len(), 2);
        let Value::Map(first) = &faults[0] else {
            panic!("each element is a map")
        };
        assert_eq!(first[0], ("at_us".to_string(), Value::Float(50.0)));
        assert_eq!(
            first[1],
            ("kind".to_string(), Value::Str("link_down".to_string()))
        );
        let Value::Map(second) = &faults[1] else {
            panic!("each element is a map")
        };
        assert_eq!(second[2], ("router".to_string(), Value::Int(3)));
    }

    #[test]
    fn tables_after_array_of_tables_scope_to_the_last_element() {
        let parsed = parse_value(
            "[[runs]]\n\
             id = 1\n\
             [runs.extra]\n\
             note = \"a\"\n\
             [[runs]]\n\
             id = 2\n",
        )
        .unwrap();
        let Value::Map(root) = parsed else {
            panic!("document is a map")
        };
        let Value::Seq(runs) = &root[0].1 else {
            panic!("[[runs]] builds a sequence")
        };
        assert_eq!(runs.len(), 2);
        let Value::Map(first) = &runs[0] else {
            panic!("map element")
        };
        assert_eq!(first[0], ("id".to_string(), Value::Int(1)));
        let Value::Map(extra) = &first[1].1 else {
            panic!("[runs.extra] nests inside the first element")
        };
        assert_eq!(extra[0], ("note".to_string(), Value::Str("a".to_string())));
        let Value::Map(second) = &runs[1] else {
            panic!("map element")
        };
        assert_eq!(second[0], ("id".to_string(), Value::Int(2)));
    }

    #[test]
    fn array_of_tables_round_trips_through_the_inline_writer() {
        // The writer emits sequences inline; the parser must read either
        // spelling back into the identical tree.
        let headers = parse_value("[[f]]\nx = 1\n[[f]]\nx = 2\n").unwrap();
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(headers.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), headers);
    }
}
