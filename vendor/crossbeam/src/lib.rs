//! Vendored stand-in for `crossbeam::scope`, implemented on top of
//! `std::thread::scope` (stabilised long after crossbeam introduced the
//! pattern). Only the API surface this workspace uses is provided.

use std::any::Any;

/// Handle allowing spawns inside a [`scope`] (mirrors
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again so it
    /// can spawn nested work, exactly like crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope in which spawned threads may borrow non-`'static` data.
/// All threads are joined before this returns; panics in workers surface as
/// a panic here, so the `Ok` branch is the only one ever observed (kept as
/// a `Result` for crossbeam signature compatibility).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_can_borrow_locals() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn result_value_propagates() {
        let x = scope(|s| s.spawn(|_| 21).join().unwrap() * 2).unwrap();
        assert_eq!(x, 42);
    }
}
