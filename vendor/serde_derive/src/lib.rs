//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's mini-serde (see `vendor/serde`).
//!
//! Written directly against `proc_macro` (no `syn`/`quote`, which are not
//! available offline). Supports exactly the shapes used in this repository:
//!
//! * structs with named fields (honouring `#[serde(skip)]`,
//!   `#[serde(default)]` and `#[serde(default = "path")]`),
//! * newtype structs (`struct Port(pub u16)`) — serialised transparently,
//! * enums with unit, newtype and struct variants, encoded the way real
//!   serde encodes externally-tagged enums.
//!
//! Anything else (generics, unions, multi-field tuple structs) is rejected
//! with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    /// Path given by `#[serde(default = "path")]`, called for absent fields.
    default_path: Option<String>,
}

/// One enum variant.
enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<Field>),
}

/// The parsed derive input.
enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Newtype {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Flags carried by `#[serde(...)]` helper attributes.
#[derive(Default, Clone)]
struct SerdeFlags {
    skip: bool,
    default: bool,
    default_path: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip any leading attributes, folding `#[serde(...)]` flags into the
    /// returned set.
    fn skip_attributes(&mut self) -> SerdeFlags {
        let mut flags = SerdeFlags::default();
        loop {
            let is_hash = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_hash {
                return flags;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            // Supports bare flags (`skip`, `default`) and
                            // `default = "path"` (a quoted function path
                            // called when the field is absent).
                            let toks: Vec<TokenTree> = args.stream().into_iter().collect();
                            let mut j = 0;
                            while j < toks.len() {
                                if let TokenTree::Ident(flag) = &toks[j] {
                                    match flag.to_string().as_str() {
                                        "skip" => flags.skip = true,
                                        "default" => {
                                            flags.default = true;
                                            let eq = matches!(
                                                toks.get(j + 1),
                                                Some(TokenTree::Punct(p)) if p.as_char() == '='
                                            );
                                            if eq {
                                                if let Some(TokenTree::Literal(lit)) =
                                                    toks.get(j + 2)
                                                {
                                                    let path = lit.to_string();
                                                    flags.default_path =
                                                        Some(path.trim_matches('"').to_string());
                                                    j += 2;
                                                }
                                            }
                                        }
                                        _ => {}
                                    }
                                }
                                j += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        let is_pub = matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
        if is_pub {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skip the tokens of one type, stopping before a top-level `,` (angle
    /// brackets tracked manually; (), [] and {} arrive as whole groups).
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident()?;
    let name = c.expect_ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }
    match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Struct {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut inner = Cursor::new(g.stream());
                inner.skip_attributes();
                inner.skip_visibility();
                inner.skip_type();
                if !inner.at_end() {
                    return Err(format!(
                        "tuple struct `{name}` has more than one field; only newtypes are supported"
                    ));
                }
                Ok(Input::Newtype { name })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other} {name}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let flags = c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        c.skip_type();
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
            default_path: flags.default_path,
        });
        // Consume the trailing comma, if any.
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let variant = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut inner = Cursor::new(g.stream());
                inner.skip_type();
                if !inner.at_end() {
                    return Err(format!(
                        "variant `{name}` has multiple tuple fields; only newtype variants are supported"
                    ));
                }
                c.pos += 1;
                Variant::Newtype(name)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                Variant::Struct(name, fields)
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Variant::Newtype(vn) => arms.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(inner))]),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push(({n:?}.to_string(), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Map(inner))])\n\
                             }},\n",
                            b = bindings.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Expression deserialising field `f` of `owner` out of map value `src`.
fn field_expr(owner: &str, src: &str, f: &Field) -> String {
    if f.skip {
        return format!("{n}: ::core::default::Default::default(),\n", n = f.name);
    }
    let missing = if let Some(path) = &f.default_path {
        format!("{path}()")
    } else if f.default {
        "::core::default::Default::default()".to_string()
    } else {
        // Absent fields deserialise from Null so `Option` fields become
        // `None` (mirroring serde); everything else reports a clear error.
        format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
             ::serde::Error(format!(\"{owner}: missing field `{n}`\")))?",
            n = f.name
        )
    };
    format!(
        "{n}: match {src}.get({n:?}) {{\n\
             Some(x) => ::serde::Deserialize::from_value(x).map_err(|e| \
                 ::serde::Error(format!(\"{owner}.{n}: {{}}\", e.0)))?,\n\
             None => {missing},\n\
         }},\n",
        n = f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body: String = fields.iter().map(|f| field_expr(name, "v", f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Map(_) => Ok(Self {{\n{body}}}),\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"{name}: expected map, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok(Self(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        str_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        map_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    Variant::Newtype(vn) => map_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)\
                         .map_err(|e| ::serde::Error(format!(\"{name}::{vn}: {{}}\", e.0)))?)),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let owner = format!("{name}::{vn}");
                        let body: String = fields
                            .iter()
                            .map(|f| field_expr(&owner, "inner", f))
                            .collect();
                        map_arms.push_str(&format!("{vn:?} => Ok({name}::{vn} {{\n{body}}}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {str_arms}\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {map_arms}\
                                     other => Err(::serde::Error(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"{name}: expected variant string or single-key map, found {{}}\",\n\
                                 other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
