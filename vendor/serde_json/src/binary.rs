//! Compact binary encoding of the mini-serde [`Value`] tree — the codec
//! behind `qadaptive-checkpoint-v4` snapshot files.
//!
//! JSON snapshots of the 110k-node scale system spend most of their bytes
//! (and most of their parse time) on two things: decimal `f64` rendering
//! of Q-table values and the same handful of struct field names repeated
//! hundreds of thousands of times. This format attacks both:
//!
//! * **Key dictionary** — every distinct map key is stored once in a
//!   header table; map entries reference keys by varint index.
//! * **Packed float sequences** — a `Seq` whose elements are all `Float`
//!   is written as raw little-endian `f64` words (8 bytes each, no text
//!   round-trip), or run-length encoded when repetition makes that
//!   smaller (two-level Q-table rows repeat one init value per slot
//!   group, so fresh rows collapse to a few bytes).
//! * **Varint integers** — zigzag LEB128, so the small counters and ids
//!   that dominate event/arena state take 1–2 bytes instead of their
//!   decimal width.
//!
//! The stream starts with an 8-byte magic ([`MAGIC`], which embeds a
//! codec version byte) so readers can sniff binary vs JSON from the first
//! bytes of a file. Everything after the magic is length-prefixed; a
//! truncated file fails with an error naming the byte offset rather than
//! panicking or mis-decoding.
//!
//! Unlike the JSON writer (which renders non-finite floats as `null`),
//! this codec round-trips every `f64` bit pattern exactly.

use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashMap;

/// First 8 bytes of every binary stream. The trailing byte is the codec
/// version; bump it on any incompatible layout change so old readers
/// reject new files cleanly instead of mis-decoding them.
pub const MAGIC: &[u8; 8] = b"QADBIN\x00\x01";

// Value tags (one byte each, after the header).
const T_NULL: u8 = 0;
const T_FALSE: u8 = 1;
const T_TRUE: u8 = 2;
const T_INT: u8 = 3; // zigzag varint i128
const T_FLOAT: u8 = 4; // 8-byte LE f64
const T_STR: u8 = 5; // varint byte length + UTF-8 bytes
const T_SEQ: u8 = 6; // varint count + tagged values
const T_MAP: u8 = 7; // varint count + (varint key index, tagged value)*
const T_FSEQ: u8 = 8; // varint count + count × 8-byte LE f64
const T_FSEQ_RLE: u8 = 9; // varint count + (varint run, 8-byte LE f64)*
const T_ISEQ: u8 = 10; // varint count + count × zigzag varint i128

/// Serialise a value to the binary format.
pub fn to_vec<T: Serialize>(value: &T) -> Vec<u8> {
    value_to_vec(&value.to_value())
}

/// Parse binary bytes into any deserialisable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    T::from_value(&slice_to_value(bytes)?)
}

/// Whether `bytes` begin with the binary magic (any codec version). Used
/// by readers that accept both JSON and binary files to pick a parser —
/// JSON documents start with `{`, so the two are never ambiguous.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 7 && bytes[..7] == MAGIC[..7]
}

/// Encode a raw [`Value`] tree.
pub fn value_to_vec(v: &Value) -> Vec<u8> {
    // Pass 1: intern every distinct map key in first-seen order.
    let mut keys: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    collect_keys(v, &mut keys, &mut index);

    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, keys.len() as u128);
    for k in &keys {
        write_varint(&mut out, k.len() as u128);
        out.extend_from_slice(k.as_bytes());
    }
    write_value(&mut out, v, &index);
    out
}

/// Decode a raw [`Value`] tree.
pub fn slice_to_value(bytes: &[u8]) -> Result<Value, Error> {
    if bytes.len() < MAGIC.len() || bytes[..7] != MAGIC[..7] {
        return Err(Error::msg(
            "not a binary checkpoint stream (bad magic; expected a \
             QADBIN header or a JSON document)",
        ));
    }
    if bytes[7] != MAGIC[7] {
        return Err(Error::msg(format!(
            "binary codec version {} is not supported (this build reads version {})",
            bytes[7], MAGIC[7]
        )));
    }
    let mut d = Decoder {
        bytes,
        pos: MAGIC.len(),
    };
    let nkeys = d.varint()? as usize;
    // Sanity bound: each key needs at least its 1-byte length prefix.
    if nkeys > d.bytes.len() - d.pos {
        return Err(d.err("key dictionary larger than the stream"));
    }
    let mut keys = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        let len = d.varint()? as usize;
        let raw = d.take(len)?;
        keys.push(
            std::str::from_utf8(raw)
                .map_err(|_| Error::msg("dictionary key is not UTF-8"))?
                .to_string(),
        );
    }
    let v = d.value(&keys, 0)?;
    if d.pos != d.bytes.len() {
        return Err(d.err("trailing bytes after the value"));
    }
    Ok(v)
}

fn collect_keys<'a>(v: &'a Value, keys: &mut Vec<&'a str>, index: &mut HashMap<&'a str, u32>) {
    match v {
        Value::Map(entries) => {
            for (k, val) in entries {
                index.entry(k.as_str()).or_insert_with(|| {
                    keys.push(k.as_str());
                    (keys.len() - 1) as u32
                });
                collect_keys(val, keys, index);
            }
        }
        Value::Seq(items) => {
            for item in items {
                collect_keys(item, keys, index);
            }
        }
        _ => {}
    }
}

fn write_value(out: &mut Vec<u8>, v: &Value, index: &HashMap<&str, u32>) {
    match v {
        Value::Null => out.push(T_NULL),
        Value::Bool(false) => out.push(T_FALSE),
        Value::Bool(true) => out.push(T_TRUE),
        Value::Int(i) => {
            out.push(T_INT);
            write_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(T_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(T_STR);
            write_varint(out, s.len() as u128);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => write_seq(out, items, index),
        Value::Map(entries) => {
            out.push(T_MAP);
            write_varint(out, entries.len() as u128);
            for (k, val) in entries {
                write_varint(out, index[k.as_str()] as u128);
                write_value(out, val, index);
            }
        }
    }
}

fn write_seq(out: &mut Vec<u8>, items: &[Value], index: &HashMap<&str, u32>) {
    // Homogeneous fast paths. Floats additionally pick run-length
    // encoding when the run structure beats the packed form — fresh
    // two-level Q-table rows repeat one init value per slot group, so
    // they compress from 8 bytes/value to ~9 bytes/run.
    if !items.is_empty() && items.iter().all(|x| matches!(x, Value::Float(_))) {
        let mut runs: usize = 1;
        for w in items.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        if runs * 9 < items.len() * 8 {
            out.push(T_FSEQ_RLE);
            write_varint(out, items.len() as u128);
            let mut i = 0;
            while i < items.len() {
                let mut j = i + 1;
                while j < items.len() && items[j] == items[i] {
                    j += 1;
                }
                write_varint(out, (j - i) as u128);
                if let Value::Float(f) = items[i] {
                    out.extend_from_slice(&f.to_le_bytes());
                }
                i = j;
            }
        } else {
            out.push(T_FSEQ);
            write_varint(out, items.len() as u128);
            for x in items {
                if let Value::Float(f) = x {
                    out.extend_from_slice(&f.to_le_bytes());
                }
            }
        }
        return;
    }
    if !items.is_empty() && items.iter().all(|x| matches!(x, Value::Int(_))) {
        out.push(T_ISEQ);
        write_varint(out, items.len() as u128);
        for x in items {
            if let Value::Int(i) = x {
                write_varint(out, zigzag(*i));
            }
        }
        return;
    }
    out.push(T_SEQ);
    write_varint(out, items.len() as u128);
    for x in items {
        write_value(out, x, index);
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(i: i128) -> u128 {
    ((i << 1) ^ (i >> 127)) as u128
}

fn unzigzag(u: u128) -> i128 {
    ((u >> 1) as i128) ^ -((u & 1) as i128)
}

/// Decode guard: value trees in this workspace are shallow (structs in
/// structs, a few levels), so anything deeper is a corrupted stream, and
/// bounding it keeps the recursive decoder off unbounded stack growth.
const MAX_DEPTH: usize = 64;

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn err(&self, what: &str) -> Error {
        Error::msg(format!(
            "truncated or corrupted binary stream at byte {}: {what}",
            self.pos
        ))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.bytes.len() - self.pos < n {
            return Err(self.err("unexpected end of input"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u128, Error> {
        let mut v: u128 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 128 {
                return Err(self.err("varint overflows 128 bits"));
            }
            v |= ((b & 0x7f) as u128) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn count(&mut self) -> Result<usize, Error> {
        let n = self.varint()? as usize;
        // Every element of every sequence kind occupies at least one byte,
        // so a count beyond the remaining stream is corruption — reject it
        // before any allocation sized by attacker/corruption-controlled data.
        if n > self.bytes.len() - self.pos {
            return Err(self.err("count exceeds the remaining stream"));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, Error> {
        let raw = self.take(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    fn value(&mut self, keys: &[String], depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nesting too deep"));
        }
        match self.byte()? {
            T_NULL => Ok(Value::Null),
            T_FALSE => Ok(Value::Bool(false)),
            T_TRUE => Ok(Value::Bool(true)),
            T_INT => Ok(Value::Int(unzigzag(self.varint()?))),
            T_FLOAT => Ok(Value::Float(self.f64()?)),
            T_STR => {
                let len = self.count()?;
                let raw = self.take(len)?;
                Ok(Value::Str(
                    std::str::from_utf8(raw)
                        .map_err(|_| self.err("string is not UTF-8"))?
                        .to_string(),
                ))
            }
            T_SEQ => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(keys, depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            T_MAP => {
                let n = self.count()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let ki = self.varint()? as usize;
                    let key = keys
                        .get(ki)
                        .ok_or_else(|| self.err("map key index out of range"))?
                        .clone();
                    entries.push((key, self.value(keys, depth + 1)?));
                }
                Ok(Value::Map(entries))
            }
            T_FSEQ => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Value::Float(self.f64()?));
                }
                Ok(Value::Seq(items))
            }
            T_FSEQ_RLE => {
                // No `count()` byte-bound here: one 9-byte run may expand
                // to arbitrarily many elements, that being the point of
                // RLE. Capacity is clamped so a corrupted count cannot
                // trigger a giant up-front allocation; growth beyond the
                // clamp is paid only as real runs actually decode.
                let total = self.varint()? as usize;
                let mut items = Vec::with_capacity(total.min(1 << 16));
                while items.len() < total {
                    let run = self.varint()? as usize;
                    if run == 0 || run > total - items.len() {
                        return Err(self.err("bad run length"));
                    }
                    let f = self.f64()?;
                    items.extend(std::iter::repeat_n(Value::Float(f), run));
                }
                Ok(Value::Seq(items))
            }
            T_ISEQ => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Value::Int(unzigzag(self.varint()?)));
                }
                Ok(Value::Seq(items))
            }
            tag => Err(self.err(&format!("unknown value tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Map(vec![
            ("version".into(), Value::Str("v4".into())),
            (
                "rows".into(),
                Value::Seq(vec![
                    // Repetitive floats → RLE.
                    Value::Seq(vec![Value::Float(1.5); 32]),
                    // Distinct floats → packed.
                    Value::Seq((0..8).map(|i| Value::Float(i as f64 * 0.1)).collect()),
                    // Ints → varint sequence.
                    Value::Seq(vec![Value::Int(-3), Value::Int(0), Value::Int(1 << 40)]),
                    // Mixed → generic.
                    Value::Seq(vec![Value::Int(1), Value::Null, Value::Bool(true)]),
                ]),
            ),
            (
                "nested".into(),
                Value::Map(vec![
                    ("version".into(), Value::Int(4)), // repeated key
                    ("empty_seq".into(), Value::Seq(vec![])),
                    ("empty_map".into(), Value::Map(vec![])),
                    ("nan".into(), Value::Float(f64::NAN)),
                    ("neg".into(), Value::Int(i128::MIN + 1)),
                ]),
            ),
        ])
    }

    /// Structural equality that treats NaN == NaN (Value's PartialEq is
    /// bitwise-f64 so NaN != NaN there).
    fn eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Seq(x), Value::Seq(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| eq(p, q))
            }
            (Value::Map(x), Value::Map(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|((ka, va), (kb, vb))| ka == kb && eq(va, vb))
            }
            _ => a == b,
        }
    }

    #[test]
    fn round_trips_every_shape() {
        let v = sample();
        let bytes = value_to_vec(&v);
        assert!(looks_binary(&bytes));
        let back = slice_to_value(&bytes).unwrap();
        assert!(eq(&v, &back), "decode must reproduce the tree");
    }

    #[test]
    fn rle_beats_packed_on_repetitive_rows() {
        let repetitive = Value::Seq(vec![Value::Float(0.25); 1024]);
        let distinct = Value::Seq((0..1024).map(|i| Value::Float(i as f64)).collect());
        let rle = value_to_vec(&repetitive);
        let packed = value_to_vec(&distinct);
        assert!(
            rle.len() < 64,
            "1024 identical floats must collapse to a handful of bytes, got {}",
            rle.len()
        );
        assert!(packed.len() > 8 * 1024, "distinct floats stay packed");
        assert!(eq(&slice_to_value(&rle).unwrap(), &repetitive));
        assert!(eq(&slice_to_value(&packed).unwrap(), &distinct));
    }

    #[test]
    fn json_is_never_mistaken_for_binary() {
        assert!(!looks_binary(b"{\"version\":\"qadaptive-checkpoint-v3\"}"));
        assert!(!looks_binary(b""));
        assert!(!looks_binary(b"QADBIN")); // too short for the version byte
    }

    #[test]
    fn truncation_is_a_clean_error_everywhere() {
        let bytes = value_to_vec(&sample());
        // Chop at every prefix length; each must error, never panic or
        // silently succeed (except the full length).
        for cut in 0..bytes.len() {
            assert!(
                slice_to_value(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(slice_to_value(&bytes).is_ok());
    }

    #[test]
    fn corrupted_streams_are_clean_errors() {
        let good = value_to_vec(&sample());
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(slice_to_value(&bad).unwrap_err().0.contains("magic"));
        // Future codec version.
        let mut bad = good.clone();
        bad[7] = 99;
        let err = slice_to_value(&bad).unwrap_err();
        assert!(err.0.contains("version 99"), "{err}");
        // Flip every single byte after the header; none may panic, and the
        // decoder must either error or produce some tree — never UB/OOM.
        for i in 8..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let _ = slice_to_value(&bad);
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(slice_to_value(&bad).unwrap_err().0.contains("trailing"));
    }

    #[test]
    fn huge_claimed_counts_do_not_allocate() {
        // A corrupted count must be rejected by the remaining-bytes bound,
        // not fed to Vec::with_capacity.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(0); // empty dictionary
        bytes.push(T_SEQ);
        write_varint(&mut bytes, u64::MAX as u128);
        let err = slice_to_value(&bytes).unwrap_err();
        assert!(err.0.contains("count exceeds"), "{err}");
    }

    #[test]
    fn varints_cover_the_integer_range() {
        for i in [
            0i128,
            1,
            -1,
            127,
            -128,
            i128::from(u64::MAX),
            -i128::from(u64::MAX),
            i128::MAX,
            i128::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(i)), i, "zigzag round trip of {i}");
            let v = Value::Int(i);
            let back = slice_to_value(&value_to_vec(&v)).unwrap();
            assert_eq!(back, v);
        }
    }
}
