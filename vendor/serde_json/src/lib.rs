//! Vendored minimal JSON reader/writer over the mini-serde [`Value`] model
//! (see `vendor/serde`). Supports the full JSON grammar except exotic
//! number forms; maps preserve key order.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

pub mod binary;

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse a JSON string into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_items(out, items.iter(), indent, level, ('[', ']'), |o, x, l| {
                write_value(o, x, indent, l)
            })
        }
        Value::Map(entries) => write_items(
            out,
            entries.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, x), l| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, l);
            },
        ),
    }
}

fn write_items<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_one: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_one(out, item, level + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep floats recognisable as floats on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one go. The input
                    // arrived as `&str`, and the run is delimited by ASCII
                    // bytes (`"` / `\`), so the slice sits on character
                    // boundaries and validates in a single linear pass —
                    // re-validating from `pos` to the end of the input for
                    // every character would make large documents quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::msg)
        } else {
            text.parse::<i128>().map(Value::Int).map_err(Error::msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fig5".into())),
            (
                "loads".into(),
                Value::Seq(vec![Value::Float(0.1), Value::Float(0.5)]),
            ),
            ("seed".into(), Value::Int(7)),
            ("quick".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::Str("a\"b\\c\nd\tμ".into());
        let mut s = String::new();
        write_value(&mut s, &v, None, 0);
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
