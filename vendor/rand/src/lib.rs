//! Vendored, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: `StdRng` + `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range` (integer and float ranges, half-open and
//! inclusive), `gen::<f64>()` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but the workspace only relies
//! on *reproducibility for a fixed seed*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(0.0..1.0)` or `rng.gen_range(6..=20)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A sample of a standard-distribution value (`f64` in `[0, 1)`,
    /// integers over their whole domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their full domain / unit interval.
pub trait Standard: Sized {
    /// Draw one sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased integer sampling from `[0, bound)` (Lemire-style rejection).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + sample_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + f64::standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty float range in gen_range");
        start + f64::standard(rng) * (end - start)
    }
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for engine checkpointing. Restoring
        /// via [`StdRng::from_state`] resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured with
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(6usize..=20);
            assert!((6..=20).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn u32_range_sampling_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(0u32..264);
            assert!(x < 264);
        }
    }
}
