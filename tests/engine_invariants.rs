//! Property-style integration tests: the simulator's conservation and
//! boundedness invariants must hold for arbitrary (small) workloads and all
//! routing algorithms. The offline build has no proptest, so the old
//! random strategies are replaced by a deterministic sample: every routing
//! algorithm is paired with a rotating traffic pattern, load and seed.

use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec;
use qadaptive::traffic::TrafficSpec;

fn all_routings() -> Vec<RoutingSpec> {
    vec![
        RoutingSpec::Minimal,
        RoutingSpec::ValiantGlobal,
        RoutingSpec::ValiantNode,
        RoutingSpec::UgalG,
        RoutingSpec::UgalN,
        RoutingSpec::Par,
        RoutingSpec::QRouting { max_q: 2 },
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
    ]
}

fn all_traffics() -> Vec<TrafficSpec> {
    vec![
        TrafficSpec::UniformRandom,
        TrafficSpec::Adversarial { shift: 1 },
        TrafficSpec::Adversarial { shift: 4 },
        TrafficSpec::Stencil3D,
        TrafficSpec::ManyToMany,
        TrafficSpec::RandomNeighbors,
    ]
}

/// For any routing algorithm, traffic pattern, load and seed:
/// * some packets are delivered,
/// * throughput never exceeds the offered load (by more than rounding),
/// * hop counts stay within the largest legal budget (PAR's 7),
/// * latency percentiles are ordered.
#[test]
fn simulation_invariants() {
    let traffics = all_traffics();
    for (i, routing) in all_routings().into_iter().enumerate() {
        // Rotate patterns/loads/seeds so that each algorithm sees a
        // different-but-deterministic workload, covering the same space the
        // old 12-case proptest run sampled from.
        let traffic = traffics[i % traffics.len()];
        let load = 0.10 + 0.05 * (i % 8) as f64;
        let seed = 1 + 97 * i as u64;
        let report = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(routing)
            .traffic(traffic)
            .offered_load(load)
            .warmup_ns(10_000)
            .measure_ns(15_000)
            .seed(seed)
            .run();
        let context = format!("routing={routing:?} traffic={traffic:?} load={load} seed={seed}");
        assert!(report.packets_delivered > 0, "{context}");
        assert!(report.throughput <= load + 0.05, "{context}");
        assert!(report.mean_hops <= 8.0, "{context}");
        assert!(
            report.q1_latency_us <= report.median_latency_us + 1e-9,
            "{context}"
        );
        assert!(
            report.median_latency_us <= report.q3_latency_us + 1e-9,
            "{context}"
        );
        assert!(
            report.q3_latency_us <= report.p99_latency_us + 1e-9,
            "{context}"
        );
        assert!(
            report.p99_latency_us <= report.max_latency_us + 1e-9,
            "{context}"
        );
        assert!(report.mean_latency_us > 0.0, "{context}");
    }
}
