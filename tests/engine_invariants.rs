//! Property-based integration tests: the simulator's conservation and
//! boundedness invariants must hold for arbitrary (small) workloads and all
//! routing algorithms.

use proptest::prelude::*;
use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec;
use qadaptive::traffic::TrafficSpec;

fn routing_strategy() -> impl Strategy<Value = RoutingSpec> {
    prop_oneof![
        Just(RoutingSpec::Minimal),
        Just(RoutingSpec::ValiantGlobal),
        Just(RoutingSpec::ValiantNode),
        Just(RoutingSpec::UgalG),
        Just(RoutingSpec::UgalN),
        Just(RoutingSpec::Par),
        Just(RoutingSpec::QRouting { max_q: 2 }),
        Just(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056())),
    ]
}

fn traffic_strategy() -> impl Strategy<Value = TrafficSpec> {
    prop_oneof![
        Just(TrafficSpec::UniformRandom),
        Just(TrafficSpec::Adversarial { shift: 1 }),
        Just(TrafficSpec::Adversarial { shift: 4 }),
        Just(TrafficSpec::Stencil3D),
        Just(TrafficSpec::ManyToMany),
        Just(TrafficSpec::RandomNeighbors),
    ]
}

proptest! {
    // Each case runs a real (small) simulation, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any routing algorithm, traffic pattern, load and seed:
    /// * some packets are delivered,
    /// * throughput never exceeds the offered load (by more than rounding),
    /// * hop counts stay within the largest legal budget (PAR's 7),
    /// * latency percentiles are ordered.
    #[test]
    fn simulation_invariants(
        routing in routing_strategy(),
        traffic in traffic_strategy(),
        load_pct in 10u32..50,
        seed in 0u64..1_000,
    ) {
        let load = load_pct as f64 / 100.0;
        let report = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(routing)
            .traffic(traffic)
            .offered_load(load)
            .warmup_ns(10_000)
            .measure_ns(15_000)
            .seed(seed)
            .run();
        prop_assert!(report.packets_delivered > 0);
        prop_assert!(report.throughput <= load + 0.05);
        prop_assert!(report.mean_hops <= 8.0);
        prop_assert!(report.q1_latency_us <= report.median_latency_us + 1e-9);
        prop_assert!(report.median_latency_us <= report.q3_latency_us + 1e-9);
        prop_assert!(report.q3_latency_us <= report.p99_latency_us + 1e-9);
        prop_assert!(report.p99_latency_us <= report.max_latency_us + 1e-9);
        prop_assert!(report.mean_latency_us > 0.0);
    }
}
