//! Tests pinning the paper's structural (non-simulation) claims.

use qadaptive::core::table::QValueTable;
use qadaptive::core::{QAdaptiveParams, QTable, TwoLevelQTable};
use qadaptive::routing::RoutingSpec;
use qadaptive::topology::config::DragonflyConfig;
use qadaptive::topology::Dragonfly;

#[test]
fn table1_configurations_match_the_paper() {
    let c1 = DragonflyConfig::paper_1056();
    assert_eq!(
        (
            c1.p,
            c1.a,
            c1.h,
            c1.radix(),
            c1.groups(),
            c1.routers(),
            c1.nodes()
        ),
        (4, 8, 4, 15, 33, 264, 1056)
    );
    let c2 = DragonflyConfig::paper_2550();
    assert_eq!(
        (
            c2.p,
            c2.a,
            c2.h,
            c2.radix(),
            c2.groups(),
            c2.routers(),
            c2.nodes()
        ),
        (5, 10, 5, 19, 51, 510, 2550)
    );
}

#[test]
fn two_level_table_halves_the_memory_on_balanced_systems() {
    for cfg in [DragonflyConfig::paper_1056(), DragonflyConfig::paper_2550()] {
        let original = QTable::new(cfg.routers(), cfg.fabric_ports(), 0.0);
        let two_level = TwoLevelQTable::new(cfg.groups(), cfg.p, cfg.fabric_ports(), 0.0);
        assert_eq!(
            two_level.memory_bytes() * 2,
            original.memory_bytes(),
            "the 50% memory claim of Section 4"
        );
    }
}

#[test]
fn virtual_channel_budgets_match_section_2_2() {
    assert_eq!(RoutingSpec::Minimal.num_vcs(), 2);
    assert_eq!(RoutingSpec::ValiantGlobal.num_vcs(), 3);
    // VALn/UGALn use one VC more than the paper quotes because this engine
    // assigns VCs per hop rather than per path segment (see DESIGN.md).
    assert_eq!(RoutingSpec::ValiantNode.num_vcs(), 5);
    assert_eq!(RoutingSpec::UgalN.num_vcs(), 5);
    assert_eq!(RoutingSpec::Par.num_vcs(), 5);
    assert_eq!(
        RoutingSpec::QAdaptive(QAdaptiveParams::default()).num_vcs(),
        5,
        "Q-adaptive delivers within five hops and uses five VCs"
    );
}

#[test]
fn dragonfly_diameter_is_three() {
    let topo = Dragonfly::new(DragonflyConfig::paper_1056());
    // Exhaustive check is O(m^2); sample a full group crossed with a stride
    // of routers to keep the test fast while covering all hop classes.
    for src in topo.routers_of_group(qadaptive::topology::ids::GroupId(0)) {
        for dst in topo.routers().step_by(7) {
            assert!(topo.minimal_hops(src, dst) <= 3);
        }
    }
}

#[test]
fn minimal_paths_use_one_local_one_global_one_local() {
    use qadaptive::topology::paths::HopKind;
    let topo = Dragonfly::new(DragonflyConfig::paper_1056());
    let src = qadaptive::topology::ids::RouterId(0);
    let dst = qadaptive::topology::ids::RouterId(263);
    let kinds = topo.minimal_hop_kinds(src, dst);
    assert!(kinds.len() <= 3);
    assert_eq!(
        kinds.iter().filter(|k| **k == HopKind::Global).count(),
        1,
        "cross-group minimal paths cross exactly one global link"
    );
}

#[test]
fn paper_hyperparameters_are_the_defaults() {
    let p = QAdaptiveParams::default();
    assert_eq!(
        (p.alpha, p.beta, p.epsilon, p.q_thld1, p.q_thld2),
        (0.2, 0.04, 0.001, 0.2, 0.35)
    );
    let p = QAdaptiveParams::paper_2550();
    assert_eq!((p.q_thld1, p.q_thld2), (0.05, 0.4));
}

#[test]
fn adversarial_pattern_shifts_whole_groups() {
    use qadaptive::traffic::TrafficSpec;
    use rand::SeedableRng;
    let topo = Dragonfly::new(DragonflyConfig::paper_1056());
    let any = qadaptive::topology::AnyTopology::from(topo.clone());
    let mut pattern = TrafficSpec::Adversarial { shift: 4 }.build(&any, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for node in topo.nodes().step_by(13) {
        let dst = pattern.destination(node, &mut rng);
        let src_group = topo.group_of_node(node).index();
        let dst_group = topo.group_of_node(dst).index();
        assert_eq!(dst_group, (src_group + 4) % topo.num_groups());
    }
}
