//! Cross-crate integration tests: full simulations on small Dragonfly
//! systems exercising the public API end to end.

use qadaptive::prelude::*;
use qadaptive::routing::RoutingSpec;
use qadaptive::traffic::TrafficSpec;

fn run(
    routing: RoutingSpec,
    traffic: TrafficSpec,
    load: f64,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SimulationReport {
    SimulationBuilder::new(DragonflyConfig::tiny())
        .routing(routing)
        .traffic(traffic)
        .offered_load(load)
        .warmup_ns(warmup)
        .measure_ns(measure)
        .seed(seed)
        .run()
}

#[test]
fn every_algorithm_delivers_uniform_traffic() {
    let mut specs = RoutingSpec::paper_lineup();
    specs.push(RoutingSpec::ValiantGlobal);
    specs.push(RoutingSpec::QRouting { max_q: 2 });
    for spec in specs {
        let report = run(spec, TrafficSpec::UniformRandom, 0.3, 20_000, 30_000, 3);
        assert!(
            report.packets_delivered > 500,
            "{}: only {} packets delivered",
            report.routing,
            report.packets_delivered
        );
        assert!(
            report.throughput > 0.2,
            "{}: throughput {}",
            report.routing,
            report.throughput
        );
        assert!(report.mean_latency_us > 0.0);
        assert!(report.mean_hops <= 7.0);
    }
}

#[test]
fn minimal_routing_is_optimal_under_light_uniform_traffic() {
    let min = run(
        RoutingSpec::Minimal,
        TrafficSpec::UniformRandom,
        0.2,
        20_000,
        30_000,
        5,
    );
    let valn = run(
        RoutingSpec::ValiantNode,
        TrafficSpec::UniformRandom,
        0.2,
        20_000,
        30_000,
        5,
    );
    // Valiant wastes bandwidth on detours: longer paths and higher latency.
    assert!(min.mean_hops < valn.mean_hops);
    assert!(min.mean_latency_us < valn.mean_latency_us);
}

#[test]
fn minimal_routing_collapses_under_adversarial_traffic() {
    let min = run(
        RoutingSpec::Minimal,
        TrafficSpec::Adversarial { shift: 1 },
        0.4,
        30_000,
        30_000,
        7,
    );
    let valn = run(
        RoutingSpec::ValiantNode,
        TrafficSpec::Adversarial { shift: 1 },
        0.4,
        30_000,
        30_000,
        7,
    );
    // The single global link between the two groups caps MIN throughput at
    // roughly 1 / (a*p) of the injection bandwidth; Valiant spreads it.
    assert!(
        valn.throughput > 2.0 * min.throughput,
        "VALn {} vs MIN {}",
        valn.throughput,
        min.throughput
    );
    assert!(min.mean_latency_us > valn.mean_latency_us);
}

#[test]
fn qadaptive_beats_minimal_under_adversarial_traffic() {
    let min = run(
        RoutingSpec::Minimal,
        TrafficSpec::Adversarial { shift: 1 },
        0.35,
        120_000,
        40_000,
        11,
    );
    let qadp = run(
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        TrafficSpec::Adversarial { shift: 1 },
        0.35,
        120_000,
        40_000,
        11,
    );
    assert!(
        qadp.throughput > 1.5 * min.throughput,
        "Q-adaptive {} vs MIN {}",
        qadp.throughput,
        min.throughput
    );
}

#[test]
fn qadaptive_stays_near_minimal_under_uniform_traffic() {
    let min = run(
        RoutingSpec::Minimal,
        TrafficSpec::UniformRandom,
        0.4,
        40_000,
        40_000,
        13,
    );
    let qadp = run(
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        TrafficSpec::UniformRandom,
        0.4,
        40_000,
        40_000,
        13,
    );
    // Under benign traffic Q-adaptive learns to route (close to) minimally:
    // throughput matches the offered load and the hop count stays minimal-ish.
    assert!((qadp.throughput - min.throughput).abs() < 0.05);
    assert!(qadp.mean_hops < min.mean_hops + 0.5);
    assert!(qadp.mean_latency_us < 3.0 * min.mean_latency_us);
}

#[test]
fn hpc_patterns_run_end_to_end() {
    for traffic in [
        TrafficSpec::Stencil3D,
        TrafficSpec::ManyToMany,
        TrafficSpec::RandomNeighbors,
    ] {
        let report = run(
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_2550()),
            traffic,
            0.3,
            20_000,
            30_000,
            17,
        );
        assert!(report.packets_delivered > 200, "{}", report.traffic);
        assert!(report.throughput > 0.1, "{}", report.traffic);
    }
}

#[test]
fn throughput_never_exceeds_offered_load() {
    for spec in RoutingSpec::paper_lineup() {
        let report = run(spec, TrafficSpec::UniformRandom, 0.5, 20_000, 30_000, 19);
        assert!(
            report.throughput <= 0.5 + 0.03,
            "{}: throughput {} exceeds offered load",
            report.routing,
            report.throughput
        );
    }
}

#[test]
fn reports_are_reproducible_across_identical_runs() {
    let a = run(
        RoutingSpec::Par,
        TrafficSpec::Adversarial { shift: 2 },
        0.3,
        20_000,
        20_000,
        23,
    );
    let b = run(
        RoutingSpec::Par,
        TrafficSpec::Adversarial { shift: 2 },
        0.3,
        20_000,
        20_000,
        23,
    );
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.mean_latency_us, b.mean_latency_us);
    assert_eq!(a.p99_latency_us, b.p99_latency_us);
    assert_eq!(a.mean_hops, b.mean_hops);
}
