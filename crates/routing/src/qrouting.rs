//! The original Q-routing baseline (Boyan & Littman, 1993), adapted to the
//! Dragonfly with the "naive" maxQ hop threshold discussed in
//! Section 2.3.2 of the paper.
//!
//! Every router keeps the full destination-router-indexed Q-table
//! (`m × (k−p)` entries). While a packet has taken fewer than `maxQ` hops,
//! the router forwards it through the port with the smallest Q-value
//! (with ε-greedy exploration); once the threshold is reached the packet is
//! forced onto the minimal path, which bounds the path length to
//! `maxQ + 3` hops and therefore prevents livelock and bounds the number of
//! virtual channels needed.
//!
//! The paper uses this scheme to show why vanilla Q-routing does not work
//! well on Dragonfly: no single `maxQ` suits both uniform and adversarial
//! traffic, and the huge table suffers from stale values. The
//! `ablation_maxq` bench binary reproduces that study.

use dragonfly_engine::checkpoint::AgentCheckpoint;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::Packet;
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm,
    DEAD_PORT_PENALTY_NS,
};
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use qadaptive_core::hysteretic::HystereticLearner;
use qadaptive_core::init::{init_qtable, init_qtable_paged};
use qadaptive_core::paged::PagedQTable;
use qadaptive_core::policy::epsilon_greedy;
use qadaptive_core::qtable::QTable;
use qadaptive_core::table::QValueTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Q-routing baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QRoutingConfig {
    /// Hop threshold after which packets are forced onto the minimal path.
    pub max_q: usize,
    /// Q-learning rate (Equation 1 of the paper).
    pub alpha: f64,
    /// ε-greedy exploration probability.
    pub epsilon: f64,
}

impl Default for QRoutingConfig {
    fn default() -> Self {
        Self {
            max_q: 2,
            alpha: 0.2,
            epsilon: 0.001,
        }
    }
}

/// Factory for Q-routing agents.
#[derive(Debug, Clone, Copy, Default)]
pub struct QRoutingMaxQ {
    /// Baseline configuration.
    pub config: QRoutingConfig,
}

impl QRoutingMaxQ {
    /// Q-routing with a specific hop threshold and default learning
    /// parameters.
    pub fn with_max_q(max_q: usize) -> Self {
        Self {
            config: QRoutingConfig {
                max_q,
                ..QRoutingConfig::default()
            },
        }
    }
}

impl RoutingAlgorithm for QRoutingMaxQ {
    fn name(&self) -> String {
        format!("Q-routing(maxQ={})", self.config.max_q)
    }

    fn num_vcs(&self) -> usize {
        // A packet takes at most maxQ free hops plus a 3-hop minimal tail.
        self.config.max_q + 3
    }

    fn make_agent(
        &self,
        topology: &AnyTopology,
        config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        // The destination-router-indexed table is the memory hog the paper
        // criticises (one row per router in the system); above the paging
        // threshold it switches to the lazily materialised representation.
        let table = if topology.num_routers() > config.qtable_page_rows_threshold {
            QStorage::Paged(init_qtable_paged(topology, config, router))
        } else {
            QStorage::Dense(init_qtable(topology, config, router))
        };
        Box::new(QRoutingAgent {
            router,
            cfg: self.config,
            learner: HystereticLearner::plain(self.config.alpha),
            table,
            exploration_ports: topology.exploration_ports(router, None),
            host_ports: topology.host_ports(router),
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// Q-routing's table storage: dense below the paging threshold, paged
/// above it. Both answer bit-identical values (same deterministic init),
/// so the choice never changes routing results.
enum QStorage {
    Dense(QTable),
    Paged(PagedQTable),
}

impl QStorage {
    /// The row holding estimates towards `dest` (mirrors [`QTable::row`]).
    fn row(&self, dest: RouterId) -> usize {
        match self {
            Self::Dense(t) => t.row(dest),
            Self::Paged(_) => dest.index(),
        }
    }

    fn best_for(&self, dest: RouterId) -> (usize, f64) {
        let row = self.row(dest);
        match self {
            Self::Dense(t) => t.best_in_row(row),
            Self::Paged(t) => t.best_in_row(row),
        }
    }

    fn value(&self, dest: RouterId, col: usize) -> f64 {
        self.get(self.row(dest), col)
    }

    fn get(&self, row: usize, col: usize) -> f64 {
        match self {
            Self::Dense(t) => t.get(row, col),
            Self::Paged(t) => t.get(row, col),
        }
    }

    fn set(&mut self, row: usize, col: usize, value: f64) {
        match self {
            Self::Dense(t) => t.set(row, col, value),
            Self::Paged(t) => t.set(row, col, value),
        }
    }

    fn as_table(&self) -> &dyn QValueTable {
        match self {
            Self::Dense(t) => t,
            Self::Paged(t) => t,
        }
    }

    fn as_table_mut(&mut self) -> &mut dyn QValueTable {
        match self {
            Self::Dense(t) => t,
            Self::Paged(t) => t,
        }
    }
}

/// The per-router Q-routing agent.
pub struct QRoutingAgent {
    router: RouterId,
    cfg: QRoutingConfig,
    learner: HystereticLearner,
    table: QStorage,
    exploration_ports: Vec<Port>,
    host_ports: usize,
    rng: StdRng,
}

impl QRoutingAgent {
    /// Read-only access to the learned table (for tests / analyses).
    pub fn table(&self) -> &dyn QValueTable {
        self.table.as_table()
    }

    /// Fault handling: when the chosen port is dead, penalise its Q-entry
    /// (so the table learns to avoid it without waiting for feedback that
    /// will never arrive) and deterministically re-route onto a live port.
    /// Consumes no RNG, keeping faulted and un-faulted streams aligned.
    fn resilient(&mut self, ctx: &RouterCtx<'_>, packet: &Packet, decision: Decision) -> Decision {
        if ctx.port_up(decision.port) {
            return decision;
        }
        let row = self.table.row(packet.dst_router);
        let col = decision.port.index() - self.host_ports;
        let current = self.table.get(row, col);
        let updated = self.learner.update(current, DEAD_PORT_PENALTY_NS, 0.0);
        self.table.set(row, col, updated);
        match ctx.live_fallback_port(packet) {
            Some(port) => Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
            None => decision,
        }
    }
}

impl RouterAgent for QRoutingAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;
        let port = if (packet.hops as usize) >= self.cfg.max_q {
            // Hop budget exhausted: force the minimal path.
            topo.minimal_port(self.router, packet.dst_router)
                .expect("decide() is never called at the destination router")
        } else {
            let (best_col, _) = self.table.best_for(packet.dst_router);
            let best_port = topo.port_for_column(self.router, best_col);
            epsilon_greedy(
                &mut self.rng,
                self.cfg.epsilon,
                best_port,
                &self.exploration_ports,
            )
        };
        let decision = Decision {
            port,
            vc: vc_for_next_hop(packet, ctx.num_vcs()),
        };
        self.resilient(ctx, packet, decision)
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, packet: &Packet) -> f64 {
        self.table.best_for(packet.dst_router).1
    }

    fn estimate_after_decision(
        &self,
        ctx: &RouterCtx<'_>,
        packet: &Packet,
        decision: Decision,
    ) -> f64 {
        // On-policy bootstrap: once the maxQ hop budget forces a packet onto
        // the minimal path, the row minimum no longer reflects the action
        // taken, so report the value of the chosen port instead.
        match ctx.topology.qtable_column(self.router, decision.port) {
            Some(col) => self.table.value(packet.dst_router, col),
            None => self.table.best_for(packet.dst_router).1,
        }
    }

    fn feedback(&mut self, msg: &FeedbackMsg) {
        let row = self.table.row(msg.dst_router);
        let col = msg.port.index() - self.host_ports;
        let current = self.table.get(row, col);
        let updated = self
            .learner
            .update(current, msg.reward_ns, msg.downstream_estimate_ns);
        self.table.set(row, col, updated);
    }

    fn save_state(&self) -> AgentCheckpoint {
        let (q_values, q_rows) = match &self.table {
            QStorage::Dense(t) => (t.values(), Vec::new()),
            QStorage::Paged(t) => {
                let rows = t.occupied_rows();
                (t.sparse_values(&rows), rows)
            }
        };
        AgentCheckpoint {
            rng: Some(self.rng.state()),
            q_values,
            counters: Vec::new(),
            q_rows,
        }
    }

    fn load_state(&mut self, state: &AgentCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
        qadaptive_core::table::load_checkpoint_values(
            self.table.as_table_mut(),
            &state.q_rows,
            &state.q_values,
        );
    }

    fn memory_bytes(&self) -> usize {
        self.table.as_table().memory_bytes()
            + self.exploration_ports.capacity() * std::mem::size_of::<Port>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    #[test]
    fn vc_budget_grows_with_max_q() {
        assert_eq!(QRoutingMaxQ::with_max_q(0).num_vcs(), 3);
        assert_eq!(QRoutingMaxQ::with_max_q(2).num_vcs(), 5);
        assert_eq!(QRoutingMaxQ::with_max_q(4).num_vcs(), 7);
        assert!(QRoutingMaxQ::with_max_q(3).name().contains("maxQ=3"));
    }

    #[test]
    fn hop_count_is_bounded_by_max_q_plus_three() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..500u64)
            .map(|i| Injection {
                time: i * 50,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 41) + 13) % n) as u32),
            })
            .collect();
        let algo = QRoutingMaxQ::with_max_q(2);
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            31,
        );
        engine.run_to_drain(200_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 500);
        assert!(obs.mean_hops() <= (2 + 3) as f64);
    }

    #[test]
    fn untrained_table_follows_minimal_paths() {
        // With the theoretical initialisation and epsilon = 0, Q-routing
        // starts out identical to minimal routing.
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..200u64)
            .map(|i| Injection {
                time: i * 500,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 41) + 13) % n) as u32),
            })
            .collect();
        let algo = QRoutingMaxQ {
            config: QRoutingConfig {
                max_q: 3,
                alpha: 0.0,
                epsilon: 0.0,
            },
        };
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            37,
        );
        engine.run_to_drain(100_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 200);
        assert!(obs.mean_hops() <= 3.0 + 1e-9);
    }
}
