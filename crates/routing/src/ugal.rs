//! UGAL — Universal Globally-Adaptive Load-balanced routing.
//!
//! The source router chooses between the (unique) minimal path and the
//! least-congested of a few random non-minimal candidates, using only local
//! congestion information: output-queue occupancy plus used credits. The
//! paper's rule is applied literally: forward minimally when the minimal
//! candidate's congestion is at most twice the non-minimal candidate's
//! congestion (plus an optional bias, zero in the paper's experiments).
//!
//! * **UGALg** compares against VALg-style paths (random intermediate
//!   group) and needs 3 VCs.
//! * **UGALn** compares against VALn-style paths (random intermediate
//!   router, rerouted inside the intermediate group) and needs 5 VCs in
//!   this engine (the paper quotes 4 with a phase-based VC assignment; see
//!   [`crate::valiant::VALN_VCS`]).

use crate::common::{
    commit_valiant_domain, commit_valiant_router, fallback_if_dead, live_congestion,
    prefer_minimal, valiant_port, AdaptiveConfig,
};
use dragonfly_engine::checkpoint::AgentCheckpoint;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::{Packet, RouteMode};
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm,
};
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// VCs required by UGALg (same as VALg).
pub const UGALG_VCS: usize = 3;
/// VCs required by UGALn (same as VALn; one more than the paper quotes —
/// see [`crate::valiant::VALN_VCS`]).
pub const UGALN_VCS: usize = 5;

/// Whether the non-minimal candidates are group-level (VALg) or node-level
/// (VALn) detours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UgalMode {
    /// Compare against Valiant-global candidates.
    Global,
    /// Compare against Valiant-node candidates.
    Node,
}

/// UGAL with Valiant-global non-minimal candidates.
#[derive(Debug, Clone, Copy, Default)]
pub struct UgalG {
    /// Bias / candidate-count configuration.
    pub config: AdaptiveConfig,
}

impl RoutingAlgorithm for UgalG {
    fn name(&self) -> String {
        "UGALg".to_string()
    }

    fn num_vcs(&self) -> usize {
        UGALG_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(UgalAgent {
            router,
            mode: UgalMode::Global,
            cfg: self.config,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// UGAL with Valiant-node non-minimal candidates.
#[derive(Debug, Clone, Copy, Default)]
pub struct UgalN {
    /// Bias / candidate-count configuration.
    pub config: AdaptiveConfig,
}

impl RoutingAlgorithm for UgalN {
    fn name(&self) -> String {
        "UGALn".to_string()
    }

    fn num_vcs(&self) -> usize {
        UGALN_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(UgalAgent {
            router,
            mode: UgalMode::Node,
            cfg: self.config,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// A non-minimal candidate under consideration at the source router.
pub(crate) struct NonMinimalCandidate {
    pub first_port: Port,
    pub congestion: usize,
    pub domain: Option<dragonfly_topology::ids::GroupId>,
    pub router: Option<RouterId>,
}

/// Sample `count` random non-minimal candidates and return the least
/// congested one, or `None` when the topology has no intermediate domain.
pub(crate) fn best_nonminimal_candidate(
    ctx: &RouterCtx<'_>,
    rng: &mut StdRng,
    router: RouterId,
    packet: &Packet,
    mode: UgalMode,
    count: usize,
) -> Option<NonMinimalCandidate> {
    let topo = ctx.topology;
    if topo.num_domains() <= 2 || packet.src_group == packet.dst_group {
        return None;
    }
    let mut best: Option<NonMinimalCandidate> = None;
    for _ in 0..count.max(1) {
        let candidate = match mode {
            UgalMode::Global => {
                let ig = topo.random_intermediate_domain(rng, packet.src_group, packet.dst_group);
                let first_port = topo.port_toward_domain(router, ig);
                NonMinimalCandidate {
                    first_port,
                    congestion: live_congestion(ctx, first_port),
                    domain: Some(ig),
                    router: None,
                }
            }
            UgalMode::Node => {
                let ir = topo.random_intermediate_router(rng, packet.src_group, packet.dst_group);
                let first_port = topo
                    .minimal_port(router, ir)
                    .expect("intermediate router is never the current router");
                NonMinimalCandidate {
                    first_port,
                    congestion: live_congestion(ctx, first_port),
                    domain: None,
                    router: Some(ir),
                }
            }
        };
        match &best {
            Some(b) if b.congestion <= candidate.congestion => {}
            _ => best = Some(candidate),
        }
    }
    best
}

/// The per-router UGAL agent (used for both flavours).
pub struct UgalAgent {
    router: RouterId,
    mode: UgalMode,
    cfg: AdaptiveConfig,
    rng: StdRng,
}

impl RouterAgent for UgalAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;

        if packet.at_source_router(self.router) && packet.route.mode == RouteMode::Minimal {
            let min_port = topo
                .minimal_port(self.router, packet.dst_router)
                .expect("source router differs from the destination router");
            let min_congestion = live_congestion(ctx, min_port);
            if let Some(candidate) = best_nonminimal_candidate(
                ctx,
                &mut self.rng,
                self.router,
                packet,
                self.mode,
                self.cfg.nonminimal_candidates,
            ) {
                if !prefer_minimal(min_congestion, candidate.congestion, self.cfg.minimal_bias) {
                    match (candidate.domain, candidate.router) {
                        (Some(d), _) => commit_valiant_domain(packet, d),
                        (_, Some(r)) => commit_valiant_router(packet, r),
                        _ => unreachable!("candidate always carries a target"),
                    }
                    return fallback_if_dead(
                        ctx,
                        packet,
                        Decision {
                            port: candidate.first_port,
                            vc: vc_for_next_hop(packet, ctx.num_vcs()),
                        },
                    );
                }
            }
            return fallback_if_dead(
                ctx,
                packet,
                Decision {
                    port: min_port,
                    vc: vc_for_next_hop(packet, ctx.num_vcs()),
                },
            );
        }

        let port = match packet.route.mode {
            RouteMode::Minimal => topo
                .minimal_port(self.router, packet.dst_router)
                .expect("decide() is never called at the destination router"),
            RouteMode::Valiant => valiant_port(ctx, self.router, packet),
        };
        fallback_if_dead(
            ctx,
            packet,
            Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
        )
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, _packet: &Packet) -> f64 {
        0.0
    }

    fn save_state(&self) -> AgentCheckpoint {
        AgentCheckpoint {
            rng: Some(self.rng.state()),
            ..Default::default()
        }
    }

    fn load_state(&mut self, state: &AgentCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    fn run_uniform(algo: &dyn RoutingAlgorithm, interval: u64) -> CountingObserver {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..600u64)
            .map(|i| Injection {
                time: i * interval,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 37) + 11) % n) as u32),
            })
            .collect();
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            17,
        );
        engine.run_to_drain(200_000_000);
        *engine.observer()
    }

    #[test]
    fn vc_budgets() {
        assert_eq!(UgalG::default().num_vcs(), 3);
        assert_eq!(UgalN::default().num_vcs(), 5);
    }

    #[test]
    fn ugal_behaves_minimally_on_an_idle_network() {
        // With large inter-arrival gaps there is never queueing, so UGAL
        // should follow minimal paths almost always.
        let obs = run_uniform(&UgalG::default(), 2_000);
        assert_eq!(obs.delivered, 600);
        assert!(
            obs.mean_hops() <= 3.05,
            "idle UGAL should look minimal, got {} hops",
            obs.mean_hops()
        );
        let obs = run_uniform(&UgalN::default(), 2_000);
        assert_eq!(obs.delivered, 600);
        assert!(obs.mean_hops() <= 3.05);
    }

    #[test]
    fn ugal_delivers_under_pressure() {
        let obs = run_uniform(&UgalG::default(), 16);
        assert_eq!(obs.delivered, 600);
        let obs = run_uniform(&UgalN::default(), 16);
        assert_eq!(obs.delivered, 600);
    }
}
