//! A serialisable description of "which routing algorithm to run", used by
//! the experiment harness, the examples and the figure-reproduction
//! binaries to parameterise simulations.

use crate::minimal::MinRouting;
use crate::par::ParRouting;
use crate::qrouting::{QRoutingConfig, QRoutingMaxQ};
use crate::ugal::{UgalG, UgalN};
use crate::valiant::{ValiantGlobal, ValiantNode};
use dragonfly_engine::routing::RoutingAlgorithm;
use qadaptive_core::{QAdaptiveParams, QAdaptiveRouting};
use serde::{Deserialize, Serialize};

/// Every routing algorithm evaluated in the paper, with its tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingSpec {
    /// Minimal routing.
    Minimal,
    /// Valiant-global non-minimal routing.
    ValiantGlobal,
    /// Valiant-node non-minimal routing.
    ValiantNode,
    /// UGAL with Valiant-global candidates.
    UgalG,
    /// UGAL with Valiant-node candidates.
    UgalN,
    /// Progressive Adaptive Routing.
    Par,
    /// The naive Q-routing baseline with a maxQ hop threshold.
    QRouting {
        /// Hop threshold after which the packet is forced minimal.
        max_q: usize,
    },
    /// The paper's Q-adaptive routing.
    QAdaptive(QAdaptiveParams),
}

impl RoutingSpec {
    /// The six algorithms compared in Figures 5, 6 and 9 of the paper, in
    /// plot order.
    pub fn paper_lineup() -> Vec<RoutingSpec> {
        vec![
            RoutingSpec::Minimal,
            RoutingSpec::ValiantNode,
            RoutingSpec::UgalG,
            RoutingSpec::UgalN,
            RoutingSpec::Par,
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        ]
    }

    /// Same lineup, but with the 2,550-node Q-adaptive hyper-parameters
    /// (used by Figure 9).
    pub fn paper_lineup_2550() -> Vec<RoutingSpec> {
        let mut lineup = Self::paper_lineup();
        *lineup.last_mut().unwrap() = RoutingSpec::QAdaptive(QAdaptiveParams::paper_2550());
        lineup
    }

    /// Instantiate the routing algorithm.
    pub fn build(&self) -> Box<dyn RoutingAlgorithm> {
        match *self {
            RoutingSpec::Minimal => Box::new(MinRouting),
            RoutingSpec::ValiantGlobal => Box::new(ValiantGlobal),
            RoutingSpec::ValiantNode => Box::new(ValiantNode),
            RoutingSpec::UgalG => Box::new(UgalG::default()),
            RoutingSpec::UgalN => Box::new(UgalN::default()),
            RoutingSpec::Par => Box::new(ParRouting::default()),
            RoutingSpec::QRouting { max_q } => Box::new(QRoutingMaxQ {
                config: QRoutingConfig {
                    max_q,
                    ..QRoutingConfig::default()
                },
            }),
            RoutingSpec::QAdaptive(params) => Box::new(QAdaptiveRouting::new(params)),
        }
    }

    /// The short label used in tables and plots (matches the paper's
    /// legends).
    pub fn label(&self) -> String {
        match self {
            RoutingSpec::Minimal => "MIN".to_string(),
            RoutingSpec::ValiantGlobal => "VALg".to_string(),
            RoutingSpec::ValiantNode => "VALn".to_string(),
            RoutingSpec::UgalG => "UGALg".to_string(),
            RoutingSpec::UgalN => "UGALn".to_string(),
            RoutingSpec::Par => "PAR".to_string(),
            RoutingSpec::QRouting { max_q } => format!("Q-routing(maxQ={max_q})"),
            RoutingSpec::QAdaptive(_) => "Q-adp".to_string(),
        }
    }

    /// Number of virtual channels the algorithm requires.
    ///
    /// A direct match on the per-algorithm constants — boxing a full
    /// routing algorithm just to read this would be wasteful, and the
    /// experiment specs call it for every point of a sweep. The
    /// `build_produces_consistent_vc_counts` test pins these to the values
    /// reported by the instantiated algorithms.
    pub fn num_vcs(&self) -> usize {
        match *self {
            RoutingSpec::Minimal => crate::minimal::MIN_VCS,
            RoutingSpec::ValiantGlobal => crate::valiant::VALG_VCS,
            RoutingSpec::ValiantNode => crate::valiant::VALN_VCS,
            RoutingSpec::UgalG => crate::ugal::UGALG_VCS,
            RoutingSpec::UgalN => crate::ugal::UGALN_VCS,
            RoutingSpec::Par => crate::par::PAR_VCS,
            // A packet takes at most maxQ free hops plus a 3-hop minimal
            // tail (see `QRoutingMaxQ::num_vcs`).
            RoutingSpec::QRouting { max_q } => max_q + 3,
            RoutingSpec::QAdaptive(_) => qadaptive_core::agent::QADAPTIVE_VCS,
        }
    }
}

/// The default algorithm is plain minimal routing (used when an experiment
/// spec omits the `routing` field).
impl Default for RoutingSpec {
    fn default() -> Self {
        RoutingSpec::Minimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lineup_matches_the_figures() {
        let labels: Vec<String> = RoutingSpec::paper_lineup()
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(
            labels,
            vec!["MIN", "VALn", "UGALg", "UGALn", "PAR", "Q-adp"]
        );
    }

    #[test]
    fn num_vcs_matches_the_built_algorithms() {
        let mut specs = RoutingSpec::paper_lineup();
        specs.push(RoutingSpec::ValiantGlobal);
        for max_q in 0..=4 {
            specs.push(RoutingSpec::QRouting { max_q });
        }
        for spec in specs {
            assert_eq!(
                spec.num_vcs(),
                spec.build().num_vcs(),
                "num_vcs out of sync for {spec:?}"
            );
        }
    }

    #[test]
    fn build_produces_consistent_vc_counts() {
        assert_eq!(RoutingSpec::Minimal.num_vcs(), 2);
        assert_eq!(RoutingSpec::ValiantGlobal.num_vcs(), 3);
        assert_eq!(RoutingSpec::ValiantNode.num_vcs(), 5);
        assert_eq!(RoutingSpec::UgalG.num_vcs(), 3);
        assert_eq!(RoutingSpec::UgalN.num_vcs(), 5);
        assert_eq!(RoutingSpec::Par.num_vcs(), 5);
        assert_eq!(RoutingSpec::QRouting { max_q: 2 }.num_vcs(), 5);
        assert_eq!(
            RoutingSpec::QAdaptive(QAdaptiveParams::default()).num_vcs(),
            5
        );
    }

    #[test]
    fn labels_and_names_agree() {
        for spec in RoutingSpec::paper_lineup() {
            let algo = spec.build();
            // The algorithm self-description should contain the label root
            // (e.g. "UGALg" / "Q-adaptive" vs "Q-adp").
            let label = spec.label();
            let root = label.trim_end_matches("-adp");
            assert!(
                algo.name().starts_with(root) || algo.name().starts_with("Q-adaptive"),
                "label {} vs name {}",
                label,
                algo.name()
            );
        }
    }

    #[test]
    fn spec_equality_and_copy_semantics() {
        let a = RoutingSpec::QAdaptive(QAdaptiveParams::paper_2550());
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()));
        assert_ne!(RoutingSpec::UgalG, RoutingSpec::UgalN);
    }
}
