//! PAR — Progressive Adaptive Routing.
//!
//! PAR extends UGALn: the source router makes the usual adaptive choice, but
//! while a packet is still being routed *minimally inside its source group*,
//! the next source-group router is allowed to re-evaluate that decision
//! against the congestion it observes locally (which the source router could
//! not see). Switching to a non-minimal path at that point costs one extra
//! local hop, which is why PAR needs five virtual channels (up to seven
//! hops).

use crate::common::{
    commit_valiant_router, fallback_if_dead, live_congestion, prefer_minimal, valiant_port,
    AdaptiveConfig,
};
use crate::ugal::{best_nonminimal_candidate, UgalMode};
use dragonfly_engine::checkpoint::AgentCheckpoint;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::{Packet, RouteMode};
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm,
};
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// VCs required by PAR (paper Section 2.2).
pub const PAR_VCS: usize = 5;

/// Factory for PAR agents.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParRouting {
    /// Bias / candidate-count configuration shared with UGAL.
    pub config: AdaptiveConfig,
}

impl RoutingAlgorithm for ParRouting {
    fn name(&self) -> String {
        "PAR".to_string()
    }

    fn num_vcs(&self) -> usize {
        PAR_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(ParAgent {
            router,
            cfg: self.config,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// The per-router PAR agent.
pub struct ParAgent {
    router: RouterId,
    cfg: AdaptiveConfig,
    rng: StdRng,
}

impl ParAgent {
    /// The UGALn-style adaptive choice, shared by the source-router decision
    /// and the in-source-group re-evaluation.
    fn adaptive_choice(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;
        let min_port = topo
            .minimal_port(self.router, packet.dst_router)
            .expect("adaptive choice is never made at the destination router");
        let min_congestion = live_congestion(ctx, min_port);
        if let Some(candidate) = best_nonminimal_candidate(
            ctx,
            &mut self.rng,
            self.router,
            packet,
            UgalMode::Node,
            self.cfg.nonminimal_candidates,
        ) {
            if !prefer_minimal(min_congestion, candidate.congestion, self.cfg.minimal_bias) {
                let target = candidate
                    .router
                    .expect("node-level candidates always carry a router");
                commit_valiant_router(packet, target);
                return fallback_if_dead(
                    ctx,
                    packet,
                    Decision {
                        port: candidate.first_port,
                        vc: vc_for_next_hop(packet, ctx.num_vcs()),
                    },
                );
            }
        }
        fallback_if_dead(
            ctx,
            packet,
            Decision {
                port: min_port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
        )
    }
}

impl RouterAgent for ParAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;
        let my_domain = topo.domain_of_router(self.router);

        // Source router: the ordinary UGALn decision.
        if packet.at_source_router(self.router) && packet.route.mode == RouteMode::Minimal {
            return self.adaptive_choice(ctx, packet);
        }

        // Progressive re-evaluation: a *source-domain* router that receives
        // a packet still marked minimal may overturn the decision once.
        if packet.route.mode == RouteMode::Minimal
            && my_domain == packet.src_group
            && my_domain != packet.dst_group
            && !packet.route.par_reevaluated
        {
            packet.route.par_reevaluated = true;
            return self.adaptive_choice(ctx, packet);
        }

        let port = match packet.route.mode {
            RouteMode::Minimal => topo
                .minimal_port(self.router, packet.dst_router)
                .expect("decide() is never called at the destination router"),
            RouteMode::Valiant => valiant_port(ctx, self.router, packet),
        };
        fallback_if_dead(
            ctx,
            packet,
            Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
        )
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, _packet: &Packet) -> f64 {
        0.0
    }

    fn save_state(&self) -> AgentCheckpoint {
        AgentCheckpoint {
            rng: Some(self.rng.state()),
            ..Default::default()
        }
    }

    fn load_state(&mut self, state: &AgentCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    #[test]
    fn par_uses_five_vcs() {
        assert_eq!(ParRouting::default().num_vcs(), 5);
        assert_eq!(ParRouting::default().name(), "PAR");
    }

    #[test]
    fn par_delivers_uniform_traffic_with_reasonable_paths() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..800u64)
            .map(|i| Injection {
                time: i * 40,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 29) + 7) % n) as u32),
            })
            .collect();
        let algo = ParRouting::default();
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            23,
        );
        engine.run_to_drain(200_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 800);
        assert!(obs.mean_hops() <= 7.0);
    }

    #[test]
    fn par_behaves_minimally_on_an_idle_network() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..200u64)
            .map(|i| Injection {
                time: i * 3_000,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 29) + 7) % n) as u32),
            })
            .collect();
        let algo = ParRouting::default();
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            29,
        );
        engine.run_to_drain(200_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 200);
        assert!(obs.mean_hops() <= 3.05, "got {}", obs.mean_hops());
    }
}
