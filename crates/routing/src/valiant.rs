//! Valiant non-minimal routing.
//!
//! * **VALg** (Valiant-global): route minimally to a uniformly random
//!   intermediate *group*, then minimally to the destination. Up to five
//!   hops, three VCs.
//! * **VALn** (Valiant-node): route minimally to a uniformly random
//!   intermediate *router* outside the source and destination groups, then
//!   minimally to the destination. The extra intra-group hop in the
//!   intermediate group sidesteps the local-link congestion that VALg
//!   suffers under patterns like ADV+4 (paper Figure 3). Up to six hops;
//!   this engine gives it five VCs (see [`VALN_VCS`]).
//!
//! Both are optimal (up to ~50 % throughput) under adversarial traffic and
//! waste half the bandwidth under uniform traffic.

use crate::common::{commit_valiant_domain, commit_valiant_router, fallback_if_dead, valiant_port};
use dragonfly_engine::checkpoint::AgentCheckpoint;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::{Packet, RouteMode};
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm,
};
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// VCs required by VALg.
pub const VALG_VCS: usize = 3;
/// VCs required by VALn.
///
/// The paper quotes 4 VCs for VALn with a phase-based VC assignment (one VC
/// per path segment). This engine uses the simpler hop-indexed VC
/// assignment, which needs one extra VC to keep the channel-dependency
/// graph acyclic on 6-hop VALn paths; see DESIGN.md.
pub const VALN_VCS: usize = 5;

/// Factory for Valiant-global agents.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValiantGlobal;

impl RoutingAlgorithm for ValiantGlobal {
    fn name(&self) -> String {
        "VALg".to_string()
    }

    fn num_vcs(&self) -> usize {
        VALG_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(ValiantAgent {
            router,
            node_level: false,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// Factory for Valiant-node agents.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValiantNode;

impl RoutingAlgorithm for ValiantNode {
    fn name(&self) -> String {
        "VALn".to_string()
    }

    fn num_vcs(&self) -> usize {
        VALN_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(ValiantAgent {
            router,
            node_level: true,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// Shared agent for both Valiant flavours.
pub struct ValiantAgent {
    router: RouterId,
    /// `true` → VALn (intermediate router), `false` → VALg (intermediate
    /// group).
    node_level: bool,
    rng: StdRng,
}

impl RouterAgent for ValiantAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let topo = ctx.topology;

        // The source router commits the packet to its Valiant leg (unless
        // the destination is in the same domain, where the direct
        // intra-domain hop is already congestion-free by construction of
        // the pattern).
        if packet.at_source_router(self.router)
            && packet.route.mode == RouteMode::Minimal
            && packet.src_group != packet.dst_group
            && topo.num_domains() > 2
        {
            if self.node_level {
                let ir = topo.random_intermediate_router(
                    &mut self.rng,
                    packet.src_group,
                    packet.dst_group,
                );
                commit_valiant_router(packet, ir);
            } else {
                let ig = topo.random_intermediate_domain(
                    &mut self.rng,
                    packet.src_group,
                    packet.dst_group,
                );
                commit_valiant_domain(packet, ig);
            }
        }

        let port = match packet.route.mode {
            RouteMode::Minimal => topo
                .minimal_port(self.router, packet.dst_router)
                .expect("decide() is never called at the destination router"),
            RouteMode::Valiant => valiant_port(ctx, self.router, packet),
        };
        fallback_if_dead(
            ctx,
            packet,
            Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
        )
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, _packet: &Packet) -> f64 {
        0.0
    }

    fn save_state(&self) -> AgentCheckpoint {
        AgentCheckpoint {
            rng: Some(self.rng.state()),
            ..Default::default()
        }
    }

    fn load_state(&mut self, state: &AgentCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    fn run(algo: &dyn RoutingAlgorithm, packets: u64) -> CountingObserver {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..packets)
            .map(|i| Injection {
                time: i * 64,
                src: NodeId((i % n) as u32),
                dst: NodeId((((i * 37) + 11) % n) as u32),
            })
            .collect();
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            13,
        );
        engine.run_to_drain(100_000_000);
        *engine.observer()
    }

    #[test]
    fn vc_budgets() {
        assert_eq!(ValiantGlobal.num_vcs(), 3);
        // One more than the paper's 4: the hop-indexed VC assignment needs
        // it for deadlock freedom (see the VALN_VCS docs).
        assert_eq!(ValiantNode.num_vcs(), 5);
    }

    #[test]
    fn valg_delivers_everything_and_uses_longer_paths_than_min() {
        let obs = run(&ValiantGlobal, 400);
        assert_eq!(obs.delivered, 400);
        // Valiant paths average clearly more hops than the minimal <= 3.
        assert!(obs.mean_hops() > 3.0, "mean hops = {}", obs.mean_hops());
        assert!(obs.mean_hops() <= 5.0 + 1e-9);
    }

    #[test]
    fn valn_delivers_everything_within_six_hops() {
        let obs = run(&ValiantNode, 400);
        assert_eq!(obs.delivered, 400);
        assert!(obs.mean_hops() > 3.0);
        assert!(obs.mean_hops() <= 6.0 + 1e-9);
    }
}
