//! # dragonfly-routing
//!
//! Every routing algorithm evaluated by the Q-adaptive paper:
//!
//! | Algorithm | Kind | VCs | Module |
//! |---|---|---|---|
//! | MIN | minimal, non-adaptive | 2 | [`minimal`] |
//! | VALg | Valiant-global, non-adaptive | 3 | [`valiant`] |
//! | VALn | Valiant-node, non-adaptive | 4 | [`valiant`] |
//! | UGALg | adaptive (source router) | 3 | [`ugal`] |
//! | UGALn | adaptive (source router) | 4 | [`ugal`] |
//! | PAR | progressive adaptive | 5 | [`par`] |
//! | Q-routing (maxQ) | MARL baseline (Section 2.3.2) | maxQ+3 | [`qrouting`] |
//! | Q-adaptive | the paper's contribution | 5 | re-exported from `qadaptive-core` |
//!
//! All adaptive baselines estimate path congestion from local information
//! only — output-queue occupancy plus used credits — exactly as described in
//! Section 5.1 of the paper, and use a zero bias towards minimal paths by
//! default.

pub mod common;
pub mod minimal;
pub mod par;
pub mod qrouting;
pub mod spec;
pub mod ugal;
pub mod valiant;

pub use common::AdaptiveConfig;
pub use minimal::MinRouting;
pub use par::ParRouting;
pub use qadaptive_core::{QAdaptiveParams, QAdaptiveRouting};
pub use qrouting::QRoutingMaxQ;
pub use spec::RoutingSpec;
pub use ugal::{UgalG, UgalN};
pub use valiant::{ValiantGlobal, ValiantNode};
