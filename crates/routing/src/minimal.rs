//! Minimal (MIN) routing: every packet follows the unique shortest path,
//! at most local → global → local. Optimal under uniform random traffic,
//! pathological under adversarial patterns (the single global link between
//! the two groups becomes the bottleneck).

use crate::common::fallback_if_dead;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::Packet;
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm,
};
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::{AnyTopology, Topology};

/// Number of virtual channels MIN requires (paper Section 2.2).
pub const MIN_VCS: usize = 2;

/// Factory for minimal-routing agents.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinRouting;

impl RoutingAlgorithm for MinRouting {
    fn name(&self) -> String {
        "MIN".to_string()
    }

    fn num_vcs(&self) -> usize {
        MIN_VCS
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        _seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(MinAgent { router })
    }
}

/// The per-router minimal-routing agent.
#[derive(Debug, Clone, Copy)]
pub struct MinAgent {
    router: RouterId,
}

impl RouterAgent for MinAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let port = ctx
            .topology
            .minimal_port(self.router, packet.dst_router)
            .expect("decide() is never called at the destination router");
        // MIN has no alternative path of its own; when a fault kills the
        // minimal port the packet escapes onto a live port (a VAL-style
        // detour) instead of being dropped.
        fallback_if_dead(
            ctx,
            packet,
            Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            },
        )
    }

    fn estimate(&self, ctx: &RouterCtx<'_>, packet: &Packet) -> f64 {
        let kinds = ctx
            .topology
            .minimal_hop_kinds(self.router, packet.dst_router);
        ctx.config.theoretical_delivery_ns(&kinds) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    #[test]
    fn min_uses_two_vcs() {
        assert_eq!(MinRouting.num_vcs(), 2);
        assert_eq!(MinRouting.name(), "MIN");
    }

    #[test]
    fn all_paths_are_at_most_three_hops() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let script: Vec<Injection> = (0..300u64)
            .map(|i| Injection {
                time: i * 64,
                src: NodeId((i % 72) as u32),
                dst: NodeId(((i * 31 + 5) % 72) as u32),
            })
            .collect();
        let algo = MinRouting;
        let mut engine = Engine::new(
            topo,
            EngineConfig::paper(algo.num_vcs()),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            5,
        );
        engine.run_to_drain(50_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 300);
        assert!(obs.mean_hops() <= 3.0 + 1e-9);
    }
}
