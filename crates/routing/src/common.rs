//! Helpers shared by the baseline routing algorithms: the Valiant-leg
//! state machine and the UGAL congestion comparison.
//!
//! Everything here is expressed against the [`Topology`] trait —
//! "intermediate domain" instead of "intermediate group" — so the same
//! state machine drives Valiant/UGAL on the Dragonfly, the fat-tree and
//! the HyperX.

use dragonfly_engine::packet::{Packet, RouteMode};
use dragonfly_engine::routing::{vc_for_next_hop, Decision, RouterCtx};
use dragonfly_topology::ids::{GroupId, Port, RouterId};
use dragonfly_topology::Topology;
use serde::{Deserialize, Serialize};

/// The congestion value reported for a dead port in adaptive comparisons:
/// large enough to lose against every live alternative, small enough that
/// `2 * congestion + bias` cannot overflow.
pub const DEAD_CONGESTION: usize = usize::MAX / 4;

/// [`RouterCtx::congestion`] with fault awareness: a dead port reports
/// [`DEAD_CONGESTION`] so adaptive rules never pick it on purpose.
#[inline]
pub fn live_congestion(ctx: &RouterCtx<'_>, port: Port) -> usize {
    if ctx.port_up(port) {
        ctx.congestion(port)
    } else {
        DEAD_CONGESTION
    }
}

/// Keep `preferred` when its output port is alive; otherwise re-route the
/// packet onto a deterministically chosen live fabric port
/// ([`RouterCtx::live_fallback_port`] — no agent RNG is consumed, so the
/// RNG streams of faulted and un-faulted runs stay aligned until a fault
/// actually bites). During a total blackout (`None`) the preferred
/// decision is returned unchanged and the engine drops the packet.
pub fn fallback_if_dead(ctx: &RouterCtx<'_>, packet: &Packet, preferred: Decision) -> Decision {
    if ctx.port_up(preferred.port) {
        return preferred;
    }
    match ctx.live_fallback_port(packet) {
        Some(port) => Decision {
            port,
            vc: vc_for_next_hop(packet, ctx.num_vcs()),
        },
        None => preferred,
    }
}

/// Configuration of the adaptive (UGAL/PAR) decision rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Additive bias (in queue-occupancy units) in favour of the minimal
    /// path. The paper's experiments use 0.
    pub minimal_bias: usize,
    /// Number of random non-minimal candidates sampled per decision
    /// (the Cray-style implementation the paper cites samples two).
    pub nonminimal_candidates: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            minimal_bias: 0,
            nonminimal_candidates: 2,
        }
    }
}

/// The UGAL rule quoted in Section 2.2 of the paper: forward minimally when
/// the congestion of the minimal candidate is at most twice the congestion
/// of the non-minimal candidate (plus an optional bias). The `<=` keeps an
/// idle network on minimal paths.
#[inline]
pub fn prefer_minimal(
    minimal_congestion: usize,
    nonminimal_congestion: usize,
    bias: usize,
) -> bool {
    minimal_congestion <= 2 * nonminimal_congestion + bias
}

/// Advance the Valiant state machine of a packet at `router` and return the
/// next output port:
///
/// * while the intermediate target (router or domain) has not been reached,
///   forward minimally towards it;
/// * once reached, clear the Valiant leg and forward minimally towards the
///   destination.
pub fn valiant_port(ctx: &RouterCtx<'_>, router: RouterId, packet: &mut Packet) -> Port {
    let topo = ctx.topology;
    debug_assert_eq!(packet.route.mode, RouteMode::Valiant);

    if !packet.route.reached_intermediate {
        let reached = match (
            packet.route.intermediate_router,
            packet.route.intermediate_group,
        ) {
            (Some(ir), _) => router == ir,
            (None, Some(ig)) => topo.domain_of_router(router) == ig,
            (None, None) => true,
        };
        if reached {
            packet.route.reached_intermediate = true;
        }
    }

    if packet.route.reached_intermediate {
        return topo
            .minimal_port(router, packet.dst_router)
            .expect("valiant_port is never called at the destination router");
    }

    if let Some(ir) = packet.route.intermediate_router {
        return topo
            .minimal_port(router, ir)
            .expect("intermediate router differs from the current router");
    }
    let ig = packet
        .route
        .intermediate_group
        .expect("a Valiant packet must carry an intermediate target");
    topo.port_toward_domain(router, ig)
}

/// Commit a packet to a Valiant leg through an intermediate *domain*.
pub fn commit_valiant_domain(packet: &mut Packet, domain: GroupId) {
    packet.route.mode = RouteMode::Valiant;
    packet.route.intermediate_group = Some(domain);
    packet.route.intermediate_router = None;
    packet.route.reached_intermediate = false;
}

/// Commit a packet to a Valiant leg through an intermediate *router*.
pub fn commit_valiant_router(packet: &mut Packet, router: RouterId) {
    packet.route.mode = RouteMode::Valiant;
    packet.route.intermediate_router = Some(router);
    packet.route.intermediate_group = None;
    packet.route.reached_intermediate = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ports::PortKind;
    use dragonfly_topology::{
        AnyTopology, Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig,
    };

    #[test]
    fn ugal_rule_matches_the_paper_description() {
        // Idle network: stay minimal.
        assert!(prefer_minimal(0, 0, 0));
        // Minimal slightly congested but still under twice the non-minimal.
        assert!(prefer_minimal(4, 2, 0));
        // Minimal clearly worse than twice the alternative: go non-minimal.
        assert!(!prefer_minimal(9, 4, 0));
        // A bias keeps traffic on the minimal path longer.
        assert!(prefer_minimal(9, 4, 1));
    }

    #[test]
    fn port_toward_domain_uses_direct_links_when_available_on_the_dragonfly() {
        let df = Dragonfly::new(DragonflyConfig::tiny());
        let topo = AnyTopology::from(df.clone());
        for router in df.routers() {
            let my_group = df.group_of_router(router);
            for group in df.groups() {
                if group == my_group {
                    continue;
                }
                let port = topo.port_toward_domain(router, group);
                match df.port_kind(port) {
                    PortKind::Global => {
                        assert_eq!(df.global_neighbor_group(router, port), group);
                    }
                    PortKind::Local => {
                        let (gateway, _) = df.gateway(my_group, group);
                        assert_eq!(df.local_neighbor(router, port), gateway);
                    }
                    PortKind::Host => panic!("host port can never lead to another group"),
                }
            }
        }
    }

    #[test]
    fn port_toward_domain_makes_progress_on_every_topology() {
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        for topo in topologies {
            for router in topo.routers() {
                for domain in topo.domains() {
                    if topo.domain_of_router(router) == domain {
                        continue;
                    }
                    let mut current = router;
                    let mut hops = 0;
                    while topo.domain_of_router(current) != domain {
                        let port = topo.port_toward_domain(current, domain);
                        current = topo.neighbor_router(current, port);
                        hops += 1;
                        assert!(
                            hops <= topo.diameter(),
                            "{}: {router} never reached domain {domain}",
                            topo.kind_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn commit_helpers_set_the_expected_targets() {
        let mut p = dummy_packet();
        commit_valiant_domain(&mut p, GroupId(5));
        assert_eq!(p.route.mode, RouteMode::Valiant);
        assert_eq!(p.route.intermediate_group, Some(GroupId(5)));
        assert_eq!(p.route.intermediate_router, None);
        commit_valiant_router(&mut p, RouterId(17));
        assert_eq!(p.route.intermediate_router, Some(RouterId(17)));
        assert_eq!(p.route.intermediate_group, None);
    }

    fn dummy_packet() -> Packet {
        use dragonfly_topology::ids::NodeId;
        Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(40),
            src_router: RouterId(0),
            dst_router: RouterId(20),
            dst_group: GroupId(5),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: 0,
            injected_ns: 0,
            hops: 0,
            vc: 0,
            route: Default::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }
}
