//! PR 7 acceptance: every routing algorithm survives killing 5 % of the
//! global links mid-run.
//!
//! For each algorithm the same faulted scenario is executed single-shard
//! and sharded; the test asserts packet conservation
//! (`generated == delivered + dropped + outstanding`) and bit-for-bit
//! shard invariance of every count — faults, drops and fallback reroutes
//! included.

use dragonfly_engine::fault::{CompiledFault, FaultOp, FaultSchedule};
use dragonfly_engine::injector::{Injection, ScriptedInjector};
use dragonfly_engine::observer::CountingObserver;
use dragonfly_engine::{Engine, EngineConfig, RoutingAlgorithm, ShardKind};
use dragonfly_routing::minimal::MinRouting;
use dragonfly_routing::par::ParRouting;
use dragonfly_routing::qrouting::QRoutingMaxQ;
use dragonfly_routing::ugal::{UgalG, UgalN};
use dragonfly_routing::valiant::{ValiantGlobal, ValiantNode};
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::{NodeId, Port};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::{Dragonfly, Topology};
use qadaptive_core::agent::QAdaptiveRouting;

/// Enumerate every global link once (canonical endpoint order) and build a
/// schedule that kills every `stride`-th link at `at_ns`, downing both
/// endpoint ports so liveness queries stay shard-local.
fn kill_global_links(topo: &Dragonfly, fraction: f64, at_ns: u64) -> (FaultSchedule, usize) {
    let mut links = Vec::new();
    for r in topo.routers() {
        for p in 0..Topology::radix(topo, r) {
            let port = Port::from_index(p);
            if Topology::port_kind(topo, r, port) != PortKind::Global {
                continue;
            }
            match Topology::neighbor(topo, r, port) {
                Neighbor::Router {
                    router: peer,
                    port: peer_port,
                } => {
                    if (r.index(), p) < (peer.index(), peer_port.index()) {
                        links.push((r, port, peer, peer_port));
                    }
                }
                Neighbor::Node(_) => unreachable!("global port leads to a router"),
            }
        }
    }
    assert!(!links.is_empty(), "tiny Dragonfly has global links");
    let kill = ((links.len() as f64 * fraction).ceil() as usize).max(1);
    let stride = (links.len() / kill).max(1);
    let mut ops = Vec::new();
    for (r, p, peer, peer_port) in links.iter().step_by(stride).take(kill) {
        ops.push(FaultOp::PortDown {
            router: *r,
            port: *p,
        });
        ops.push(FaultOp::PortDown {
            router: *peer,
            port: *peer_port,
        });
    }
    (
        FaultSchedule {
            events: vec![CompiledFault { at_ns, ops }],
        },
        kill,
    )
}

fn run_faulted(algo: &dyn RoutingAlgorithm, shards: ShardKind) -> (u64, u64, u64, u64, u64) {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes() as u64;
    let (schedule, killed) = kill_global_links(&topo, 0.05, 50_000);
    assert!(killed >= 2, "5 % of tiny's global links is at least two");
    let script: Vec<Injection> = (0..900u64)
        .map(|i| Injection {
            time: i * 120,
            src: NodeId((i % n) as u32),
            dst: NodeId((((i * 37) + 11) % n) as u32),
        })
        .collect();
    let mut cfg = EngineConfig::paper(algo.num_vcs());
    cfg.shards = shards;
    let mut engine = Engine::new(
        topo,
        cfg,
        algo,
        Box::new(ScriptedInjector::new(script)),
        CountingObserver::default(),
        97,
    );
    engine.install_faults(&schedule);
    engine.run_to_drain(400_000_000);
    let stats = engine.stats();
    let obs = engine.merged_observer();
    (
        stats.generated,
        stats.delivered,
        stats.dropped,
        stats.events,
        obs.total_hops,
    )
}

#[test]
fn all_algorithms_survive_five_percent_global_link_loss() {
    let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(MinRouting),
        Box::new(ValiantGlobal),
        Box::new(ValiantNode),
        Box::new(UgalG::default()),
        Box::new(UgalN::default()),
        Box::new(ParRouting::default()),
        Box::new(QRoutingMaxQ::with_max_q(2)),
        Box::new(QAdaptiveRouting::default()),
    ];
    for algo in &algorithms {
        let name = algo.name();
        let (gen1, del1, drop1, ev1, hops1) = run_faulted(algo.as_ref(), ShardKind::Single);
        assert_eq!(gen1, 900, "{name}: every scripted packet is generated");
        assert_eq!(
            gen1,
            del1 + drop1,
            "{name}: conservation — open-loop traffic is delivered or dropped"
        );
        assert!(
            del1 >= 800,
            "{name}: the overwhelming majority must still be delivered, got {del1}"
        );
        let (gen3, del3, drop3, ev3, hops3) = run_faulted(algo.as_ref(), ShardKind::Fixed(3));
        assert_eq!(
            (gen1, del1, drop1, ev1, hops1),
            (gen3, del3, drop3, ev3, hops3),
            "{name}: faulted runs are bit-for-bit shard invariant"
        );
    }
}
