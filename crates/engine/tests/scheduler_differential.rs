//! Differential determinism test: the calendar-queue scheduler must be
//! event-order-equivalent to the reference binary-heap scheduler.
//!
//! Both schedulers promise to pop the exact same `(time, seq)` total
//! order, which makes every downstream observable — engine counters,
//! delivered packets, latency and hop totals — bit-for-bit identical.
//! This test drives the same seeded random workloads through both and
//! asserts exactly that.

use dragonfly_engine::config::{EngineConfig, SchedulerKind};
use dragonfly_engine::engine::EngineStats;
use dragonfly_engine::injector::{Injection, ScriptedInjector};
use dragonfly_engine::observer::CountingObserver;
use dragonfly_engine::testing::MinimalTestRouting;
use dragonfly_engine::time::SimTime;
use dragonfly_engine::Engine;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::Dragonfly;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a seeded random injection script: `count` packets between random
/// distinct nodes with mean inter-arrival `gap_ns`.
fn random_script(seed: u64, count: u64, gap_ns: u64, num_nodes: usize) -> Vec<Injection> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let src = NodeId::from_index(rng.gen_range(0..num_nodes));
            let mut dst = NodeId::from_index(rng.gen_range(0..num_nodes));
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..num_nodes));
            }
            Injection {
                time: i * gap_ns,
                src,
                dst,
            }
        })
        .collect()
}

fn run_with(
    scheduler: SchedulerKind,
    script: Vec<Injection>,
    t_end: SimTime,
) -> (EngineStats, CountingObserver, usize, u64) {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let algo = MinimalTestRouting;
    let mut cfg = EngineConfig::paper(3);
    cfg.scheduler = scheduler;
    let mut engine = Engine::new(
        topo,
        cfg,
        &algo,
        Box::new(ScriptedInjector::new(script)),
        CountingObserver::default(),
        42,
    );
    let (_, processed) = engine.run_to_drain(t_end);
    let live = engine.arena().live_count();
    (engine.stats(), *engine.observer(), live, processed)
}

#[test]
fn calendar_and_heap_produce_identical_results() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes();
    // Several load levels: light (uncontended), heavy (blocked packets,
    // waiter lists, credit stalls) and bursty same-tick injections.
    for (seed, count, gap) in [(3u64, 2_000u64, 80u64), (7, 3_000, 20), (11, 1_000, 0)] {
        let script = random_script(seed, count, gap, n);
        let (heap_stats, heap_obs, heap_live, heap_events) =
            run_with(SchedulerKind::BinaryHeap, script.clone(), 500_000_000);
        let (cal_stats, cal_obs, cal_live, cal_events) =
            run_with(SchedulerKind::Calendar, script, 500_000_000);

        assert_eq!(
            heap_stats, cal_stats,
            "EngineStats diverged for seed {seed} gap {gap}"
        );
        assert_eq!(heap_events, cal_events, "processed counts diverged");
        assert_eq!(heap_obs.delivered, cal_obs.delivered);
        assert_eq!(
            heap_obs.total_latency_ns, cal_obs.total_latency_ns,
            "latency totals diverged for seed {seed} gap {gap}"
        );
        assert_eq!(heap_obs.total_hops, cal_obs.total_hops);
        // The workload drains completely: every packet was delivered and
        // every arena slot was recycled, under both schedulers.
        assert_eq!(heap_stats.delivered, count);
        assert_eq!((heap_live, cal_live), (0, 0), "arena leaked packets");
    }
}

#[test]
fn run_until_and_run_to_drain_agree_on_event_accounting() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes();
    let script = random_script(5, 500, 60, n);

    // One engine stepped in two run_until windows...
    let make = |script: Vec<Injection>| {
        let algo = MinimalTestRouting;
        Engine::new(
            Dragonfly::new(DragonflyConfig::tiny()),
            EngineConfig::paper(3),
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            42,
        )
    };
    let mut stepped = make(script.clone());
    let a = stepped.run_until(20_000);
    let b = stepped.run_until(100_000_000);

    // ...must process the same events as one engine drained in one call.
    let mut drained = make(script);
    let (_, c) = drained.run_to_drain(100_000_000);
    assert_eq!(a + b, c, "split run_until windows vs run_to_drain");
    assert_eq!(stepped.stats(), drained.stats());
    assert_eq!(stepped.stats().events, c, "stats.events counts all pops");
}
