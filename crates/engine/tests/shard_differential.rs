//! Differential determinism test for the conservative-parallel engine:
//! `shards = N` must be bit-for-bit identical to `shards = 1`.
//!
//! The content-derived event key (see `dragonfly_engine::event::event_key`)
//! makes the same-nanosecond processing order independent of which queue
//! an event was pushed into, so partitioning the routers into shards —
//! with cross-shard events travelling through mailboxes — cannot change
//! any observable: engine counters, processed event counts, delivered
//! packets, latency and hop totals all match exactly. This file drives the
//! same seeded random workloads through 1, 2 and 4 shards (and through
//! both scheduler implementations while sharded) and asserts exactly that.
//!
//! It also pins the arena-segment contract: packets cross shard
//! boundaries **by value**, so `PacketRef` handles never leave the arena
//! that issued them, and per-shard arena residency plus mailbox transit
//! always accounts for every outstanding packet.

use dragonfly_engine::config::{EngineConfig, SchedulerKind, ShardKind};
use dragonfly_engine::engine::EngineStats;
use dragonfly_engine::injector::{Injection, ScriptedInjector};
use dragonfly_engine::observer::CountingObserver;
use dragonfly_engine::testing::MinimalTestRouting;
use dragonfly_engine::time::SimTime;
use dragonfly_engine::Engine;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::Dragonfly;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a seeded random injection script: `count` packets between random
/// distinct nodes with inter-arrival `gap_ns`.
fn random_script(seed: u64, count: u64, gap_ns: u64, num_nodes: usize) -> Vec<Injection> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let src = NodeId::from_index(rng.gen_range(0..num_nodes));
            let mut dst = NodeId::from_index(rng.gen_range(0..num_nodes));
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..num_nodes));
            }
            Injection {
                time: i * gap_ns,
                src,
                dst,
            }
        })
        .collect()
}

fn make_engine(
    shards: ShardKind,
    scheduler: SchedulerKind,
    script: Vec<Injection>,
) -> Engine<CountingObserver> {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let algo = MinimalTestRouting;
    let mut cfg = EngineConfig::paper(3);
    cfg.shards = shards;
    cfg.scheduler = scheduler;
    Engine::new(
        topo,
        cfg,
        &algo,
        Box::new(ScriptedInjector::new(script)),
        CountingObserver::default(),
        42,
    )
}

fn run_with(
    shards: ShardKind,
    scheduler: SchedulerKind,
    script: Vec<Injection>,
    t_end: SimTime,
) -> (EngineStats, CountingObserver, Vec<usize>, u64) {
    let mut engine = make_engine(shards, scheduler, script);
    let (_, processed) = engine.run_to_drain(t_end);
    let live = engine.arena_live_counts();
    (engine.stats(), engine.merged_observer(), live, processed)
}

#[test]
fn sharded_runs_are_bit_identical_to_single_shard() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes();
    // Several load levels: light (uncontended), heavy (blocked packets,
    // waiter lists, credit stalls) and bursty same-tick injections.
    for (seed, count, gap) in [(3u64, 2_000u64, 80u64), (7, 3_000, 20), (11, 1_000, 0)] {
        let script = random_script(seed, count, gap, n);
        let (base_stats, base_obs, base_live, base_events) = run_with(
            ShardKind::Single,
            SchedulerKind::Calendar,
            script.clone(),
            500_000_000,
        );
        for shard_count in [2usize, 4] {
            let (stats, obs, live, events) = run_with(
                ShardKind::Fixed(shard_count),
                SchedulerKind::Calendar,
                script.clone(),
                500_000_000,
            );
            assert_eq!(
                (stats.generated, stats.injected, stats.delivered),
                (
                    base_stats.generated,
                    base_stats.injected,
                    base_stats.delivered
                ),
                "counters diverged for seed {seed} gap {gap} shards {shard_count}"
            );
            assert_eq!(
                stats.events, base_stats.events,
                "event totals diverged for seed {seed} gap {gap} shards {shard_count}"
            );
            assert_eq!(events, base_events, "processed counts diverged");
            assert_eq!(obs.delivered, base_obs.delivered);
            assert_eq!(
                obs.total_latency_ns, base_obs.total_latency_ns,
                "latency totals diverged for seed {seed} gap {gap} shards {shard_count}"
            );
            assert_eq!(obs.total_hops, base_obs.total_hops);
            // The workload drains completely on every shard count.
            assert_eq!(stats.delivered, count);
            assert!(
                live.iter().all(|l| *l == 0),
                "arena leaked packets: {live:?}"
            );
            assert_eq!(stats.shards.len(), shard_count);
        }
        assert_eq!(base_stats.delivered, count);
        assert_eq!(base_live, vec![0]);
    }
}

#[test]
fn sharded_runs_are_bit_identical_on_fattree_and_hyperx() {
    // The differential contract is topology-generic: partitioning by
    // fat-tree pod or HyperX row must be exactly as invisible as
    // partitioning by Dragonfly group.
    use dragonfly_topology::{AnyTopology, FatTree, FatTreeConfig, HyperX, HyperXConfig, Topology};
    let topologies: Vec<AnyTopology> = vec![
        FatTree::new(FatTreeConfig::tiny()).into(),
        HyperX::new(HyperXConfig::tiny()).into(),
    ];
    for topo in &topologies {
        let script = random_script(19, 1_500, 40, topo.num_nodes());
        let run = |shards: ShardKind| {
            let algo = MinimalTestRouting;
            let mut cfg = EngineConfig::paper(3);
            cfg.shards = shards;
            let mut engine = Engine::new(
                topo.clone(),
                cfg,
                &algo,
                Box::new(ScriptedInjector::new(script.clone())),
                CountingObserver::default(),
                42,
            );
            let (_, processed) = engine.run_to_drain(500_000_000);
            let live = engine.arena_live_counts();
            (engine.stats(), engine.merged_observer(), live, processed)
        };
        let (base_stats, base_obs, base_live, base_events) = run(ShardKind::Single);
        assert_eq!(base_stats.delivered, 1_500, "{}", topo.kind_name());
        assert_eq!(base_live, vec![0]);
        for shard_count in [2usize, 4] {
            let (stats, obs, live, events) = run(ShardKind::Fixed(shard_count));
            assert_eq!(stats.shards.len(), shard_count);
            assert_eq!(
                stats.aggregate_fields(),
                base_stats.aggregate_fields(),
                "{}: engine stats diverged at {shard_count} shards",
                topo.kind_name()
            );
            assert_eq!(events, base_events, "{}", topo.kind_name());
            assert_eq!(obs.total_latency_ns, base_obs.total_latency_ns);
            assert_eq!(obs.total_hops, base_obs.total_hops);
            assert!(live.iter().all(|l| *l == 0), "arena leak: {live:?}");
        }
    }
}

/// Compare [`EngineStats`] across shard counts: the per-shard drain view
/// necessarily differs in shape, so compare the aggregate fields only.
trait AggregateFields {
    fn aggregate_fields(&self) -> (u64, u64, u64, u64);
}

impl AggregateFields for EngineStats {
    fn aggregate_fields(&self) -> (u64, u64, u64, u64) {
        (self.generated, self.injected, self.delivered, self.events)
    }
}

#[test]
fn closed_loop_task_programs_are_shard_and_scheduler_invariant() {
    // Hand-rolled task programs (no workload crate: the engine contract is
    // pinned at the Op level): a ring exchange, a phase marker, a pairwise
    // barrier exchange and trailing compute. TaskWake/TaskRecv events must
    // commit in the same order on every shard count and scheduler.
    use dragonfly_engine::injector::EmptyInjector;
    use dragonfly_engine::{NodeProgram, Op};
    let n = Dragonfly::new(DragonflyConfig::tiny()).num_nodes();
    let programs: Vec<NodeProgram> = (0..n)
        .map(|i| {
            let next = NodeId::from_index((i + 1) % n);
            let prev = NodeId::from_index((i + n - 1) % n);
            let pair = NodeId::from_index((i + n / 2) % n);
            vec![
                Op::Compute {
                    delay_ns: 50 + (i as u64 % 7) * 10,
                },
                Op::Send {
                    dst: next,
                    messages: 2,
                },
                Op::Recv {
                    from: prev,
                    messages: 2,
                    barrier: false,
                },
                Op::Phase { index: 0 },
                Op::Send {
                    dst: pair,
                    messages: 1,
                },
                Op::Recv {
                    from: pair,
                    messages: 1,
                    barrier: true,
                },
                Op::Compute { delay_ns: 25 },
                Op::Phase { index: 1 },
            ]
        })
        .collect();
    let run = |shards: ShardKind, scheduler: SchedulerKind| {
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(3);
        cfg.shards = shards;
        cfg.scheduler = scheduler;
        let mut engine = Engine::new(
            Dragonfly::new(DragonflyConfig::tiny()),
            cfg,
            &algo,
            Box::new(EmptyInjector),
            CountingObserver::default(),
            42,
        );
        engine.install_workload(programs.clone());
        let (_, processed) = engine.run_to_drain(500_000_000);
        assert_eq!(engine.tasks_finished(), n as u64, "program must drain");
        assert!(engine.arena_live_counts().iter().all(|l| *l == 0));
        (
            engine.stats().aggregate_fields(),
            engine.merged_observer(),
            processed,
        )
    };
    let (base_stats, base_obs, base_events) = run(ShardKind::Single, SchedulerKind::Calendar);
    // 2 ring + 1 pairwise message per node.
    assert_eq!(base_stats.2, 3 * n as u64, "delivered count");
    for shard_count in [2usize, 4] {
        for scheduler in [SchedulerKind::Calendar, SchedulerKind::BinaryHeap] {
            let (stats, obs, events) = run(ShardKind::Fixed(shard_count), scheduler);
            let label = format!("shards={shard_count} scheduler={scheduler:?}");
            assert_eq!(stats, base_stats, "{label}");
            assert_eq!(events, base_events, "{label}");
            assert_eq!(obs.delivered, base_obs.delivered, "{label}");
            assert_eq!(obs.total_latency_ns, base_obs.total_latency_ns, "{label}");
            assert_eq!(obs.total_hops, base_obs.total_hops, "{label}");
        }
    }
}

#[test]
fn sharded_heap_scheduler_matches_sharded_calendar() {
    // Scheduler choice and shard count are orthogonal determinism axes:
    // both must pop the same (time, key, seq) order per shard.
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let script = random_script(5, 1_500, 40, topo.num_nodes());
    let (cal_stats, cal_obs, _, _) = run_with(
        ShardKind::Fixed(3),
        SchedulerKind::Calendar,
        script.clone(),
        500_000_000,
    );
    let (heap_stats, heap_obs, _, _) = run_with(
        ShardKind::Fixed(3),
        SchedulerKind::BinaryHeap,
        script,
        500_000_000,
    );
    assert_eq!(cal_stats, heap_stats);
    assert_eq!(cal_obs.total_latency_ns, heap_obs.total_latency_ns);
    assert_eq!(cal_obs.total_hops, heap_obs.total_hops);
}

#[test]
fn split_run_until_windows_match_one_drain_across_shards() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let script = random_script(9, 800, 60, topo.num_nodes());
    let mut stepped = make_engine(ShardKind::Fixed(2), SchedulerKind::Calendar, script.clone());
    let a = stepped.run_until(20_000);
    let b = stepped.run_until(100_000_000);
    let mut drained = make_engine(ShardKind::Fixed(2), SchedulerKind::Calendar, script);
    let (_, c) = drained.run_to_drain(100_000_000);
    assert_eq!(a + b, c, "split run_until windows vs run_to_drain");
    assert_eq!(stepped.stats(), drained.stats());
    assert_eq!(stepped.stats().events, c, "stats.events counts all pops");
}

/// The arena-segment contract: a packet lives in exactly one shard's arena
/// at a time (or in a mailbox between windows), so per-shard residency +
/// mailbox transit always equals the outstanding packet count — which is
/// only possible if `PacketRef` handles are translated (re-allocated) at
/// every shard crossing rather than smuggled across.
#[test]
fn arena_segments_account_for_every_packet_mid_run() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let n = topo.num_nodes();
    let script = random_script(13, 2_000, 15, n); // hot enough to queue up
    let mut engine = make_engine(ShardKind::Fixed(4), SchedulerKind::Calendar, script);
    // Observe mid-flight at several cut points, including ones that leave
    // packets parked inside cross-shard mailboxes.
    for t_end in [500u64, 2_000, 5_000, 11_111, 20_000] {
        engine.run_until(t_end);
        let stats = engine.stats();
        let live: u64 = engine.arena_live_counts().iter().map(|l| *l as u64).sum();
        assert_eq!(
            live + stats.in_mailboxes(),
            stats.outstanding(),
            "at t={t_end}: residency + transit must equal outstanding"
        );
        // The per-shard drain view decomposes the same totals.
        let per_shard_resident: u64 = stats.shards.iter().map(|s| s.resident).sum();
        let per_shard_delivered: u64 = stats.shards.iter().map(|s| s.delivered).sum();
        assert_eq!(per_shard_resident, live);
        assert_eq!(per_shard_delivered, stats.delivered);
    }
    // Packets do cross shards in this workload (otherwise the test is
    // vacuous): with 4 shards of the 9-group tiny system, most traffic is
    // cross-shard.
    let (_, _) = engine.run_to_drain(500_000_000);
    let stats = engine.stats();
    assert_eq!(stats.delivered, 2_000);
    let final_live: u64 = engine.arena_live_counts().iter().map(|l| *l as u64).sum();
    assert_eq!(final_live, 0, "every arena slot recycled after drain");
    assert_eq!(stats.in_mailboxes(), 0, "no mailbox residue after drain");
    // Every shard both delivered something and processed events.
    for (i, shard) in stats.shards.iter().enumerate() {
        assert!(shard.events > 0, "shard {i} never ran");
        assert!(shard.delivered > 0, "shard {i} never delivered");
    }
}
