//! Property-based determinism stress tests for the overlapped-window
//! pipelined engine: for *randomly generated* workload tuples
//! `(topology size, traffic pattern, load, seed, shards ∈ {1,2,4},
//! pipeline on/off)`, every execution mode must be bit-for-bit identical
//! to the sequential single-shard reference.
//!
//! The harness is a deterministic `proptest`-style generator (the offline
//! build has no proptest crate): a master seed drives a `StdRng` that
//! draws each case, the case tuple is printed in every assertion message
//! (the "minimal counterexample" you would get from a real proptest run
//! is the tuple itself — no shrinking is needed because cases are small),
//! and the whole suite is reproducible bit for bit.
//!
//! It also pins the `ShardDrain` accounting contract under pipelining:
//! mid-run, `sum(resident) + sum(inbound_mail) == outstanding` even while
//! packets sit in double-buffered parity mailboxes between windows.

use dragonfly_engine::config::{EngineConfig, SchedulerKind, ShardKind};
use dragonfly_engine::engine::EngineStats;
use dragonfly_engine::injector::{Injection, ScriptedInjector};
use dragonfly_engine::observer::CountingObserver;
use dragonfly_engine::testing::MinimalTestRouting;
use dragonfly_engine::time::SimTime;
use dragonfly_engine::Engine;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::Dragonfly;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The traffic shapes the generator can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// Random distinct src/dst pairs.
    Uniform,
    /// Every node targets a node `shift` groups away (the paper's ADV+i,
    /// the imbalanced case work stealing exists for).
    Adversarial(usize),
    /// 20 % of packets converge on one hot node.
    Hotspot,
}

/// One generated stress case.
#[derive(Debug, Clone, Copy)]
struct Case {
    /// Dragonfly `(p, a, h)`.
    topo: (usize, usize, usize),
    pattern: Pattern,
    /// Packet count.
    count: u64,
    /// Mean inter-injection gap in ns (0 = same-tick bursts).
    gap_ns: u64,
    /// Script RNG seed.
    seed: u64,
}

/// Draw one case from the generator RNG.
fn draw_case(rng: &mut StdRng) -> Case {
    let topo = [(2usize, 4usize, 2usize), (3, 4, 2), (2, 6, 3)][rng.gen_range(0..3usize)];
    let groups = topo.1 * topo.2 + 1;
    let pattern = match rng.gen_range(0..4) {
        0 | 1 => Pattern::Uniform,
        2 => Pattern::Adversarial(1 + rng.gen_range(0..groups - 1)),
        _ => Pattern::Hotspot,
    };
    Case {
        topo,
        pattern,
        count: rng.gen_range(400..1_200),
        gap_ns: [0u64, 15, 40, 90][rng.gen_range(0..4usize)],
        seed: rng.gen(),
    }
}

/// Expand a case into a concrete injection script.
fn script_for(case: &Case, topo: &Dragonfly) -> Vec<Injection> {
    let mut rng = StdRng::seed_from_u64(case.seed);
    let n = topo.num_nodes();
    let groups = topo.num_groups();
    let nodes_per_group = n / groups;
    let hot = NodeId::from_index(rng.gen_range(0..n));
    (0..case.count)
        .map(|i| {
            let src = NodeId::from_index(rng.gen_range(0..n));
            let mut dst = match case.pattern {
                Pattern::Uniform => NodeId::from_index(rng.gen_range(0..n)),
                Pattern::Adversarial(shift) => {
                    // A node in the group `shift` groups ahead.
                    let src_group = src.index() / nodes_per_group;
                    let dst_group = (src_group + shift) % groups;
                    NodeId::from_index(
                        dst_group * nodes_per_group + rng.gen_range(0..nodes_per_group),
                    )
                }
                Pattern::Hotspot => {
                    if rng.gen_range(0..5) == 0 {
                        hot
                    } else {
                        NodeId::from_index(rng.gen_range(0..n))
                    }
                }
            };
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..n));
            }
            Injection {
                time: i * case.gap_ns,
                src,
                dst,
            }
        })
        .collect()
}

fn make_engine(
    case: &Case,
    shards: ShardKind,
    pipeline: bool,
    scheduler: SchedulerKind,
) -> Engine<CountingObserver> {
    let (p, a, h) = case.topo;
    let topo = Dragonfly::new(DragonflyConfig::new(p, a, h).expect("generator draws valid sizes"));
    let script = script_for(case, &topo);
    let algo = MinimalTestRouting;
    let mut cfg = EngineConfig::paper(3);
    cfg.shards = shards;
    cfg.pipeline = pipeline;
    cfg.scheduler = scheduler;
    Engine::new(
        topo,
        cfg,
        &algo,
        Box::new(ScriptedInjector::new(script)),
        CountingObserver::default(),
        42,
    )
}

fn run_case(
    case: &Case,
    shards: ShardKind,
    pipeline: bool,
) -> (EngineStats, CountingObserver, Vec<usize>, u64) {
    let mut engine = make_engine(case, shards, pipeline, SchedulerKind::Calendar);
    let (_, processed) = engine.run_to_drain(500_000_000);
    let live = engine.arena_live_counts();
    (engine.stats(), engine.merged_observer(), live, processed)
}

/// The property: for any generated case, every `(shards, pipeline)`
/// combination reproduces the single-shard reference exactly.
#[test]
fn random_workloads_are_invariant_across_shards_and_pipelining() {
    const MASTER_SEED: u64 = 0xD1FF_E4E7;
    const CASES: usize = 8;
    let mut gen_rng = StdRng::seed_from_u64(MASTER_SEED);
    for case_no in 0..CASES {
        let case = draw_case(&mut gen_rng);
        let (ref_stats, ref_obs, ref_live, ref_events) = run_case(&case, ShardKind::Single, false);
        assert_eq!(ref_stats.delivered, case.count, "case {case_no} {case:?}");
        assert!(ref_live.iter().all(|l| *l == 0));
        for shard_count in [1usize, 2, 4] {
            for pipeline in [false, true] {
                let shards = if shard_count == 1 {
                    ShardKind::Single
                } else {
                    ShardKind::Fixed(shard_count)
                };
                let (stats, obs, live, events) = run_case(&case, shards, pipeline);
                let label =
                    format!("case {case_no} {case:?} shards={shard_count} pipeline={pipeline}");
                assert_eq!(
                    (stats.generated, stats.injected, stats.delivered),
                    (ref_stats.generated, ref_stats.injected, ref_stats.delivered),
                    "counters diverged: {label}"
                );
                assert_eq!(stats.events, ref_stats.events, "event totals: {label}");
                assert_eq!(events, ref_events, "processed counts: {label}");
                assert_eq!(obs.delivered, ref_obs.delivered, "{label}");
                assert_eq!(
                    obs.total_latency_ns, ref_obs.total_latency_ns,
                    "latency totals diverged: {label}"
                );
                assert_eq!(obs.total_hops, ref_obs.total_hops, "hop totals: {label}");
                assert!(live.iter().all(|l| *l == 0), "arena leak: {label} {live:?}");
            }
        }
    }
}

/// Closed-loop task programs under the overlapped-window pipeline: task
/// wakeups scheduled near window edges must commit identically whether
/// windows overlap or run in lockstep, for every shard count.
#[test]
fn closed_loop_task_programs_are_pipeline_invariant() {
    use dragonfly_engine::injector::EmptyInjector;
    use dragonfly_engine::{NodeProgram, Op};
    let n = Dragonfly::new(DragonflyConfig::tiny()).num_nodes();
    // A two-round neighbour exchange with per-node compute skew so wakeups
    // land at many different offsets inside the 150 ns pipeline windows.
    let programs: Vec<NodeProgram> = (0..n)
        .map(|i| {
            let next = NodeId::from_index((i + 1) % n);
            let prev = NodeId::from_index((i + n - 1) % n);
            vec![
                Op::Compute {
                    delay_ns: (i as u64 % 11) * 37,
                },
                Op::Send {
                    dst: next,
                    messages: 2,
                },
                Op::Recv {
                    from: prev,
                    messages: 2,
                    barrier: false,
                },
                Op::Phase { index: 0 },
                Op::Send {
                    dst: prev,
                    messages: 1,
                },
                Op::Recv {
                    from: next,
                    messages: 1,
                    barrier: true,
                },
                Op::Phase { index: 1 },
            ]
        })
        .collect();
    let run = |shards: ShardKind, pipeline: bool| {
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(3);
        cfg.shards = shards;
        cfg.pipeline = pipeline;
        let mut engine = Engine::new(
            Dragonfly::new(DragonflyConfig::tiny()),
            cfg,
            &algo,
            Box::new(EmptyInjector),
            CountingObserver::default(),
            42,
        );
        engine.install_workload(programs.clone());
        let (_, processed) = engine.run_to_drain(500_000_000);
        assert_eq!(engine.tasks_finished(), n as u64, "program must drain");
        assert!(engine.arena_live_counts().iter().all(|l| *l == 0));
        (
            (
                engine.stats().generated,
                engine.stats().injected,
                engine.stats().delivered,
                engine.stats().events,
            ),
            engine.merged_observer(),
            processed,
        )
    };
    let (ref_stats, ref_obs, ref_events) = run(ShardKind::Single, false);
    assert_eq!(ref_stats.2, 3 * n as u64, "delivered count");
    for shard_count in [1usize, 2, 4] {
        for pipeline in [false, true] {
            let shards = if shard_count == 1 {
                ShardKind::Single
            } else {
                ShardKind::Fixed(shard_count)
            };
            let (stats, obs, events) = run(shards, pipeline);
            let label = format!("shards={shard_count} pipeline={pipeline}");
            assert_eq!(stats, ref_stats, "{label}");
            assert_eq!(events, ref_events, "{label}");
            assert_eq!(obs.delivered, ref_obs.delivered, "{label}");
            assert_eq!(obs.total_latency_ns, ref_obs.total_latency_ns, "{label}");
            assert_eq!(obs.total_hops, ref_obs.total_hops, "{label}");
        }
    }
}

/// Pipelined and barrier executions must also agree with each other under
/// the reference binary-heap scheduler (three orthogonal determinism
/// axes: shard count, pipelining, scheduler).
#[test]
fn pipelined_heap_scheduler_matches_barrier_calendar() {
    let case = Case {
        topo: (2, 4, 2),
        pattern: Pattern::Adversarial(1),
        count: 1_200,
        gap_ns: 25,
        seed: 99,
    };
    let mut barrier = make_engine(&case, ShardKind::Fixed(3), false, SchedulerKind::Calendar);
    let mut pipelined = make_engine(&case, ShardKind::Fixed(3), true, SchedulerKind::BinaryHeap);
    barrier.run_to_drain(500_000_000);
    pipelined.run_to_drain(500_000_000);
    assert_eq!(barrier.stats(), pipelined.stats());
    let (a, b) = (barrier.merged_observer(), pipelined.merged_observer());
    assert_eq!(a.total_latency_ns, b.total_latency_ns);
    assert_eq!(a.total_hops, b.total_hops);
}

/// Capped `run_until` windows cut the pipelined epochs at arbitrary
/// points (mail parked in parity mailboxes, epochs re-origined); the
/// stitched-together run must equal one uninterrupted drain.
#[test]
fn split_run_until_windows_match_one_drain_under_pipelining() {
    let case = Case {
        topo: (2, 4, 2),
        pattern: Pattern::Uniform,
        count: 900,
        gap_ns: 55,
        seed: 7,
    };
    let mut stepped = make_engine(&case, ShardKind::Fixed(4), true, SchedulerKind::Calendar);
    let mut processed = 0;
    // Deliberately awkward cut points: mid-window, on a window boundary
    // (300 ns lookahead → 150 ns windows), and far beyond the traffic.
    for t in [137u64, 150, 4_650, 20_000, 100_000_000] {
        processed += stepped.run_until(t);
    }
    let mut drained = make_engine(&case, ShardKind::Fixed(4), true, SchedulerKind::Calendar);
    let (_, one_shot) = drained.run_to_drain(100_000_000);
    assert_eq!(processed, one_shot, "split windows vs one drain");
    assert_eq!(stepped.stats(), drained.stats());
    let (a, b) = (stepped.merged_observer(), drained.merged_observer());
    assert_eq!(a.total_latency_ns, b.total_latency_ns);
    assert_eq!(a.total_hops, b.total_hops);
}

/// `ShardDrain` accounting under pipelining:
/// `sum(resident) + sum(inbound_mail) == outstanding` at every stop, in
/// both execution modes — which park in-flight mail differently.
///
/// The barrier mode exits `run_until` with the final window's mail still
/// inside the grid (`inbound_mail > 0` at hot cut points), while the
/// pipelined epoch loop always recovers grid mail into the owning queues
/// before returning, so a pipelined stop must report `inbound_mail == 0`
/// with every outstanding packet resident in some arena. Both are
/// asserted exactly, so the transit leg of the accounting is genuinely
/// exercised (by the barrier stops) and the pipelined drain-on-exit
/// contract is pinned rather than silently assumed.
#[test]
fn shard_drain_accounting_holds_under_pipelining() {
    let case = Case {
        topo: (2, 4, 2),
        pattern: Pattern::Adversarial(4),
        count: 2_000,
        gap_ns: 12, // hot: plenty of cross-shard transit at any cut
        seed: 31,
    };
    let cuts = [400u64, 1_500, 3_000, 7_777, 15_000, 24_000];
    for pipeline in [false, true] {
        let mut engine = make_engine(
            &case,
            ShardKind::Fixed(4),
            pipeline,
            SchedulerKind::Calendar,
        );
        let mut saw_mailbox_transit = false;
        for &t_end in &cuts {
            engine.run_until(t_end);
            let stats = engine.stats();
            let resident: u64 = stats.shards.iter().map(|s| s.resident).sum();
            assert_eq!(
                resident + stats.in_mailboxes(),
                stats.outstanding(),
                "pipeline={pipeline} t={t_end}: residency + mailbox transit must equal outstanding"
            );
            let live: u64 = engine.arena_live_counts().iter().map(|l| *l as u64).sum();
            assert_eq!(resident, live, "per-shard resident mirrors the arenas");
            if pipeline {
                assert_eq!(
                    stats.in_mailboxes(),
                    0,
                    "t={t_end}: the pipelined epoch loop recovers all grid mail before returning"
                );
            }
            saw_mailbox_transit |= stats.in_mailboxes() > 0;
        }
        let (_, _) = engine.run_to_drain(500_000_000);
        let stats = engine.stats();
        assert_eq!(stats.delivered, case.count, "pipeline={pipeline}");
        assert_eq!(stats.in_mailboxes(), 0, "no parity-buffer residue");
        assert_eq!(stats.outstanding(), 0);
        if !pipeline {
            // The transit term of the accounting must have been non-zero
            // at least once, or the barrier leg of this test is vacuous.
            assert!(
                saw_mailbox_transit,
                "no barrier-mode cut ever caught a packet inside a mailbox — \
                 retune the cut times or the workload"
            );
        }
    }
}

/// A zero global-link latency leaves no conservative lookahead at all:
/// the engine must fall back to a single sequential shard (pipelining
/// included) rather than running an unsound window loop.
#[test]
fn zero_lookahead_degrades_to_sequential_even_with_pipeline_on() {
    let topo = Dragonfly::new(DragonflyConfig::tiny());
    let algo = MinimalTestRouting;
    let mut cfg = EngineConfig::paper(3);
    cfg.global_latency_ns = 0;
    cfg.shards = ShardKind::Fixed(4);
    cfg.pipeline = true;
    let script = vec![Injection {
        time: 0,
        src: NodeId(0),
        dst: NodeId(40),
    }];
    let mut engine = Engine::new(
        topo,
        cfg,
        &algo,
        Box::new(ScriptedInjector::new(script)),
        CountingObserver::default(),
        1,
    );
    assert_eq!(engine.num_shards(), 1, "no lookahead → one shard");
    let (_, processed) = engine.run_to_drain(10_000_000);
    assert!(processed > 0);
    assert_eq!(engine.stats().delivered, 1);
}

/// A 1 ns lookahead supports sharding but not window-halving; the engine
/// must fall back to the lockstep barrier (pipeline is "ignored when the
/// lookahead is under 2 ns") and still match the sequential reference.
#[test]
fn sub_two_ns_lookahead_falls_back_to_the_barrier_mode() {
    let run = |shards: ShardKind| -> (EngineStats, SimTime) {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(3);
        cfg.global_latency_ns = 1;
        cfg.shards = shards;
        cfg.pipeline = true;
        let script = script_for(
            &Case {
                topo: (2, 4, 2),
                pattern: Pattern::Uniform,
                count: 300,
                gap_ns: 50,
                seed: 3,
            },
            &topo,
        );
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            1,
        );
        let (t, _) = engine.run_to_drain(500_000_000);
        (engine.stats(), t)
    };
    let (single, t1) = run(ShardKind::Single);
    let (sharded, t2) = run(ShardKind::Fixed(2));
    assert_eq!(single.generated, sharded.generated);
    assert_eq!(single.delivered, sharded.delivered);
    assert_eq!(single.events, sharded.events);
    assert_eq!(t1, t2);
}
