//! Packets (single-flit messages) and their in-flight routing state.

use crate::time::SimTime;
use dragonfly_topology::ids::{GroupId, NodeId, Port, RouterId};
use serde::{Deserialize, Serialize};

/// Which routing mode a packet is currently committed to.
///
/// Minimal/non-minimal selection happens at the source router (and, for
/// PAR and Q-adaptive, possibly at one more router); afterwards the mode is
/// recorded here so downstream routers know how to forward the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteMode {
    /// Forward along the unique minimal path to the destination.
    Minimal,
    /// Valiant-style non-minimal: first reach an intermediate group (and
    /// optionally a specific intermediate router), then route minimally.
    Valiant,
}

/// Adaptive/Valiant routing bookkeeping carried by each packet.
///
/// Routing agents read and update this state; the engine itself never
/// interprets it (except for debug assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Minimal or Valiant.
    pub mode: RouteMode,
    /// Valiant intermediate group (for VALg/UGALg-style paths and
    /// Q-adaptive packets that left their source group non-minimally).
    pub intermediate_group: Option<GroupId>,
    /// Valiant intermediate router (for VALn/UGALn/PAR-style paths).
    pub intermediate_router: Option<RouterId>,
    /// Set once the packet has reached its intermediate group/router and
    /// switched to the minimal leg.
    pub reached_intermediate: bool,
    /// Q-adaptive: the first router visited in an intermediate group has
    /// already made its (possibly rerouting) decision.
    pub int_group_decision_done: bool,
    /// PAR: a source-group router has already re-evaluated the minimal
    /// decision (PAR only allows one such re-evaluation).
    pub par_reevaluated: bool,
}

impl Default for RouteInfo {
    fn default() -> Self {
        Self {
            mode: RouteMode::Minimal,
            intermediate_group: None,
            intermediate_router: None,
            reached_intermediate: false,
            int_group_decision_done: false,
            par_reevaluated: false,
        }
    }
}

/// A single-flit packet travelling through the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Packet {
    /// Unique, monotonically increasing id.
    pub id: u64,
    /// Generating compute node.
    pub src: NodeId,
    /// Destination compute node.
    pub dst: NodeId,
    /// Router the source node is attached to.
    pub src_router: RouterId,
    /// Router the destination node is attached to.
    pub dst_router: RouterId,
    /// Group of the destination node (first index of the two-level Q-table).
    pub dst_group: GroupId,
    /// Group of the source node.
    pub src_group: GroupId,
    /// Host-port slot of the source node on its router, in `0..p`
    /// (second index of the two-level Q-table).
    pub src_slot: u8,
    /// Packet size in bytes.
    pub size_bytes: u32,
    /// Time the message was generated at the node.
    pub created_ns: SimTime,
    /// Time the packet left the NIC and entered the router fabric.
    pub injected_ns: SimTime,
    /// Router-to-router hops taken so far.
    pub hops: u8,
    /// Current virtual channel.
    pub vc: u8,
    /// Adaptive/Valiant routing state.
    pub route: RouteInfo,
    /// The previous router on the path (None while at the source router).
    pub last_router: Option<RouterId>,
    /// The output port the previous router used to forward this packet
    /// (i.e. the Q-table column the feedback should update).
    pub last_out_port: Option<Port>,
    /// The time the previous router made its forwarding decision; the
    /// per-hop RL reward is `now - last_decision_ns`.
    pub last_decision_ns: SimTime,
    /// Routing decision cached at the current router so that a blocked
    /// packet retries the same output port instead of re-rolling.
    pub pending_decision: Option<(Port, u8)>,
}

impl Packet {
    /// End-to-end latency if the packet is delivered at `now`.
    #[inline]
    pub fn latency_ns(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.created_ns)
    }

    /// Whether the packet is still at its source router (no fabric hop yet).
    #[inline]
    pub fn at_source_router(&self, current: RouterId) -> bool {
        self.hops == 0 && current == self.src_router
    }

    /// Whether `group` is neither the packet's source nor destination group
    /// (i.e. an intermediate group).
    #[inline]
    pub fn is_intermediate_group(&self, group: GroupId) -> bool {
        group != self.src_group && group != self.dst_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Packet {
        Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(10),
            src_router: RouterId(0),
            dst_router: RouterId(5),
            dst_group: GroupId(1),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: 100,
            injected_ns: 150,
            hops: 0,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }

    #[test]
    fn latency_is_measured_from_generation() {
        let p = packet();
        assert_eq!(p.latency_ns(600), 500);
        assert_eq!(p.latency_ns(50), 0, "saturates instead of underflowing");
    }

    #[test]
    fn source_router_detection() {
        let mut p = packet();
        assert!(p.at_source_router(RouterId(0)));
        assert!(!p.at_source_router(RouterId(1)));
        p.hops = 1;
        assert!(!p.at_source_router(RouterId(0)));
    }

    #[test]
    fn intermediate_group_detection() {
        let p = packet();
        assert!(!p.is_intermediate_group(GroupId(0)));
        assert!(!p.is_intermediate_group(GroupId(1)));
        assert!(p.is_intermediate_group(GroupId(2)));
    }

    #[test]
    fn default_route_info_is_minimal() {
        let r = RouteInfo::default();
        assert_eq!(r.mode, RouteMode::Minimal);
        assert!(r.intermediate_group.is_none());
        assert!(!r.reached_intermediate);
    }
}
