//! The interface between the engine and routing algorithms.
//!
//! Every router in the simulated system owns one [`RouterAgent`]. The engine
//! consults the agent whenever a packet needs an output port, and delivers
//! per-hop reinforcement-learning feedback to it. The agent only ever sees
//! *local* information — its own router's output-queue occupancy and credit
//! counters, exposed through [`RouterCtx`] — which mirrors the paper's fully
//! distributed setting (no shared state between routers).

use crate::config::EngineConfig;
use crate::packet::Packet;
use crate::router::RouterState;
use crate::time::SimTime;
use dragonfly_topology::ids::{GroupId, NodeId, Port, RouterId};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::{AnyTopology, Topology};
use serde::{Deserialize, Serialize};

/// The outcome of a routing decision: which output port to use and which
/// virtual channel the packet should occupy on the next link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Output port of the current router.
    pub port: Port,
    /// Virtual channel for the next hop.
    pub vc: u8,
}

/// Per-hop reinforcement-learning feedback, sent from a router back to the
/// upstream router that forwarded the packet to it.
///
/// In hardware this information would be piggy-backed on credit/flow-control
/// flits; in the simulator it is delivered as an event after one link
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackMsg {
    /// Id of the packet the feedback refers to. Identifies the feedback
    /// uniquely among same-tick deliveries to one router, which is what
    /// gives feedback events a deterministic processing order (Q-table
    /// updates do not commute) — see [`crate::event::event_key`].
    pub packet_id: u64,
    /// Source node of the packet the feedback refers to.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Destination router of the packet (row of the original Q-table).
    pub dst_router: RouterId,
    /// Destination group (first index of the two-level Q-table row).
    pub dst_group: GroupId,
    /// Source-node slot in `0..p` (second index of the two-level Q-table
    /// row).
    pub src_slot: u8,
    /// The output port the *upstream* router used for this packet — the
    /// Q-table column to update.
    pub port: Port,
    /// The reward: packet travelling time between the two routers
    /// (decision-to-decision), in ns.
    pub reward_ns: f64,
    /// The downstream router's own estimate of the remaining delivery time
    /// (its minimum Q-value for this packet, or the ejection time if the
    /// downstream router is the destination), in ns.
    pub downstream_estimate_ns: f64,
}

/// Read-only view of a router's local state, handed to agents when they
/// make decisions.
pub struct RouterCtx<'a> {
    /// The router this context describes.
    pub router: RouterId,
    /// The topology (shared, immutable).
    pub topology: &'a AnyTopology,
    /// Engine configuration (timing constants, buffer sizes).
    pub config: &'a EngineConfig,
    /// Current simulation time.
    pub now: SimTime,
    pub(crate) state: &'a RouterState,
}

impl<'a> RouterCtx<'a> {
    /// Total output-queue occupancy (packets) of a port, summed over VCs.
    pub fn output_queue_len(&self, port: Port) -> usize {
        self.state.output_queue_len(port)
    }

    /// Credits currently held for `(port, vc)` — i.e. free slots in the
    /// downstream input buffer.
    pub fn credits(&self, port: Port, vc: u8) -> usize {
        self.state.credits(port, vc)
    }

    /// Credits already consumed on a port (summed over VCs): the number of
    /// packets in flight to, or buffered at, the downstream router.
    pub fn used_credits(&self, port: Port) -> usize {
        self.state.used_credits(port, self.config)
    }

    /// The congestion estimate the paper's adaptive baselines use: local
    /// output-queue occupancy plus used credit count.
    pub fn congestion(&self, port: Port) -> usize {
        if self.topology.port_kind(self.router, port) == PortKind::Host {
            return self.output_queue_len(port);
        }
        self.output_queue_len(port) + self.used_credits(port)
    }

    /// Input-buffer occupancy of `(port, vc)` (mostly useful for tests and
    /// debugging; the paper's algorithms only use output-side state).
    pub fn input_buffer_len(&self, port: Port, vc: u8) -> usize {
        self.state.input_buffer_len(port, vc)
    }

    /// Locality domain of this router (a Dragonfly group, fat-tree pod
    /// or HyperX row).
    pub fn domain(&self) -> GroupId {
        self.topology.domain_of_router(self.router)
    }

    /// Number of virtual channels available.
    pub fn num_vcs(&self) -> usize {
        self.config.num_vcs
    }

    /// Whether an output port of this router is currently alive (fault
    /// injection can kill links and routers mid-run). Algorithms must not
    /// route onto dead ports; see [`live_fallback_port`].
    pub fn port_up(&self, port: Port) -> bool {
        self.topology.port_up(self.router, port)
    }

    /// Deterministic hash-fallback among the *live* fabric ports of this
    /// router, for when an algorithm's preferred port is dead: spreads
    /// stranded traffic without consuming any agent RNG (so the RNG
    /// streams of faulted and un-faulted runs stay aligned until the
    /// fault actually bites). Returns `None` during a total blackout —
    /// the engine then drops the packet.
    pub fn live_fallback_port(&self, packet: &Packet) -> Option<Port> {
        let host_ports = self.topology.host_ports(self.router);
        let radix = self.topology.radix(self.router);
        let live: Vec<Port> = (host_ports..radix)
            .map(Port::from_index)
            .filter(|&p| self.port_up(p))
            .collect();
        if live.is_empty() {
            return None;
        }
        let pick = (packet.id as usize).wrapping_add(packet.hops as usize) % live.len();
        Some(live[pick])
    }
}

/// The penalty (in ns) a learning agent applies to a Q-table entry whose
/// port turned out to be dead: large enough to steer future decisions away
/// immediately, small enough not to destroy the table's scale.
pub const DEAD_PORT_PENALTY_NS: f64 = 1.0e7;

/// The default virtual-channel assignment used by all algorithms in this
/// repository: the VC index equals the number of hops already taken, capped
/// at the algorithm's VC budget. Incrementing the VC every hop breaks
/// channel-dependency cycles for the bounded-length paths all implemented
/// algorithms produce.
#[inline]
pub fn vc_for_next_hop(packet: &Packet, num_vcs: usize) -> u8 {
    (packet.hops as usize).min(num_vcs.saturating_sub(1)) as u8
}

/// A per-router routing agent.
///
/// Agents are created once per router by a [`RoutingAlgorithm`] and live for
/// the whole simulation. They may keep arbitrary private state (Q-tables,
/// RNGs, counters) but must not share state with other agents.
pub trait RouterAgent: Send {
    /// Choose an output port (and next-hop VC) for `packet`, currently at
    /// the head of an input buffer of this router. The engine only calls
    /// this when the packet's destination router is *not* this router
    /// (ejection is handled by the engine).
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision;

    /// This router's own estimate (in ns) of the remaining delivery time of
    /// `packet` from here, used as the bootstrap value in the feedback sent
    /// to the upstream router. Non-learning algorithms may return 0.
    fn estimate(&self, ctx: &RouterCtx<'_>, packet: &Packet) -> f64;

    /// Like [`RouterAgent::estimate`], but called right after this router
    /// has chosen `decision` for the packet. Learning agents should return
    /// the value of the action they are actually taking (a SARSA-style
    /// on-policy bootstrap): downstream routers are usually *forced* to
    /// forward minimally, so reporting the row minimum would overestimate
    /// their options and hide congestion from upstream routers.
    fn estimate_after_decision(
        &self,
        ctx: &RouterCtx<'_>,
        packet: &Packet,
        decision: Decision,
    ) -> f64 {
        let _ = decision;
        self.estimate(ctx, packet)
    }

    /// Reinforcement-learning feedback from a downstream router about a
    /// packet this router forwarded earlier. Non-learning algorithms ignore
    /// it.
    fn feedback(&mut self, msg: &FeedbackMsg) {
        let _ = msg;
    }

    /// Capture the agent's mutable state (RNG stream, Q-tables, counters)
    /// for a checkpoint (see [`crate::checkpoint`]). Everything rebuilt by
    /// the algorithm factory from `(topology, config, seed)` must be left
    /// out; stateless agents keep the default.
    fn save_state(&self) -> crate::checkpoint::AgentCheckpoint {
        crate::checkpoint::AgentCheckpoint::default()
    }

    /// Restore state captured by [`RouterAgent::save_state`] on an agent
    /// freshly built by the same factory for the same router and seed.
    fn load_state(&mut self, _state: &crate::checkpoint::AgentCheckpoint) {}

    /// Approximate heap footprint of this agent's learned state in bytes
    /// (Q-tables, caches). Rolled up by `Engine::memory_bytes` into the
    /// bounded-memory accounting of the scale benches; stateless agents
    /// keep the default.
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Factory for router agents — one implementation per routing algorithm.
pub trait RoutingAlgorithm: Send + Sync {
    /// Human-readable algorithm name (used in reports and plots).
    fn name(&self) -> String;

    /// The number of virtual channels the algorithm requires
    /// (MIN 2, VALg 3, VALn/UGALn 4, PAR 5, Q-adaptive 5, ...).
    fn num_vcs(&self) -> usize;

    /// Create the agent for one router.
    fn make_agent(
        &self,
        topology: &AnyTopology,
        config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteInfo;

    fn dummy_packet(hops: u8) -> Packet {
        Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(4),
            src_router: RouterId(0),
            dst_router: RouterId(2),
            dst_group: GroupId(0),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: 0,
            injected_ns: 0,
            hops,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }

    #[test]
    fn vc_assignment_increments_and_caps() {
        assert_eq!(vc_for_next_hop(&dummy_packet(0), 5), 0);
        assert_eq!(vc_for_next_hop(&dummy_packet(3), 5), 3);
        assert_eq!(vc_for_next_hop(&dummy_packet(9), 5), 4);
        assert_eq!(vc_for_next_hop(&dummy_packet(9), 2), 1);
        assert_eq!(vc_for_next_hop(&dummy_packet(0), 1), 0);
    }
}
