//! The discrete-event schedulers.
//!
//! Events are ordered by `(time, key, seq)`:
//!
//! * `time` — the firing time in ns.
//! * `key` — a **content-derived priority** computed by [`event_key`] from
//!   the event kind and the entity it targets (event class, router/node,
//!   port, VC, packet id). Two *different* events scheduled for the same
//!   nanosecond therefore have a total order that does not depend on when
//!   or where they were pushed.
//! * `seq` — a per-queue push counter breaking ties between *identical*
//!   events (same time, same key ⇒ byte-identical payload up to the packet
//!   handle), whose relative order cannot affect simulation results.
//!
//! The content-derived key is what makes the sharded engine deterministic:
//! a cross-shard event arrives through a mailbox and is pushed into the
//! destination shard's queue long after the locally generated events it
//! races with, yet it sorts into exactly the same position the global
//! single-queue engine would have given it. `shards = 1` and `shards = N`
//! therefore pop identical per-shard event sequences — see
//! `tests/shard_differential.rs`.
//!
//! Two [`Scheduler`] implementations share the contract:
//!
//! * [`BinaryHeapScheduler`] — the classic `BinaryHeap<Event>` min-queue
//!   (O(log n) per operation). Kept as the reference implementation for
//!   differential tests and selectable via
//!   [`crate::config::SchedulerKind::BinaryHeap`].
//! * [`CalendarQueue`] — a two-level calendar/bucket queue: a power-of-two
//!   wheel of 1 ns buckets for near-future events plus a binary-heap
//!   overflow level for the rare far-future event. Every bucket holds
//!   events of exactly one nanosecond; buckets are sorted by `(key, seq)`
//!   lazily when first popped from, so pushes stay O(1) amortised.
//!
//! Both schedulers pop the exact same `(time, key, seq)` total order, so
//! pinned simulation outputs are bit-for-bit identical whichever one runs —
//! see the `scheduler_differential` integration test.

use crate::arena::PacketRef;
use crate::config::{EngineConfig, SchedulerKind};
use crate::routing::FeedbackMsg;
use crate::time::SimTime;
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
///
/// All variants are small and `Copy`: packets are not carried by value but
/// as 4-byte [`PacketRef`] handles into the owning shard's
/// [`crate::arena::PacketArena`], so moving an event never allocates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum EventKind {
    /// The next queued traffic injection of this shard is due: materialise
    /// the packet at its source NIC. The injection itself (src, dst,
    /// pre-assigned packet id) waits in the shard's FIFO injection queue;
    /// this event is just the timed marker that pops it.
    TrafficArrival,
    /// A NIC should (re)try pushing the head of its source queue into its
    /// router's host input buffer.
    NicTryInject { node: NodeId },
    /// A credit for the host input buffer came back to the NIC.
    NicCredit { node: NodeId },
    /// A packet finished traversing a link and lands in the input buffer
    /// `(port, vc)` of `router`.
    RouterArrive {
        router: RouterId,
        port: Port,
        vc: u8,
        packet: PacketRef,
    },
    /// The head packet of input buffer `(port, vc)` of `router` attempts
    /// switch traversal (routing decision + move to an output queue).
    SwitchAttempt {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Output port `port` of `router` attempts to serialise a packet onto
    /// its outgoing link.
    OutputAttempt { router: RouterId, port: Port },
    /// A credit for `(port, vc)` returned to `router` from its downstream
    /// neighbour.
    CreditArrive {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Reinforcement-learning feedback delivered to the agent of `router`.
    RlFeedback { router: RouterId, msg: FeedbackMsg },
    /// A closed-loop task program of `node` should (re)evaluate its
    /// current op: fired at `t = 0` to start the program and at the end
    /// of every `Compute` delay.
    TaskWake { node: NodeId },
    /// One workload message from `src` was delivered to `node`'s NIC:
    /// bump the per-source receive counter and re-evaluate a blocked
    /// `Recv`. Delivery always happens in the shard that owns `node`
    /// (host ports never cross shards), so this event is always local.
    TaskRecv { node: NodeId, src: NodeId },
    /// A fault dropped the in-flight workload packet `id` (destination
    /// `dst`); delivered to the shard owning source `node` one lookahead
    /// after the drop so it may cross shard boundaries. The NIC decides
    /// whether to retransmit or give up.
    DropNotice { node: NodeId, dst: NodeId, id: u64 },
    /// A scheduled retransmission: materialise a fresh packet (same
    /// workload id, destination `dst`) in `node`'s NIC source queue.
    NicResend { node: NodeId, dst: NodeId, id: u64 },
}

// Event classes, most-urgent-first within a nanosecond. The relative order
// is arbitrary but frozen: changing it changes (deterministically) which
// same-tick event wins contended resources.
const CLASS_TRAFFIC: u64 = 0;
const CLASS_NIC_CREDIT: u64 = 1;
const CLASS_NIC_TRY: u64 = 2;
const CLASS_ROUTER_ARRIVE: u64 = 3;
const CLASS_SWITCH: u64 = 4;
const CLASS_OUTPUT: u64 = 5;
const CLASS_CREDIT: u64 = 6;
const CLASS_FEEDBACK: u64 = 7;
const CLASS_TASK_WAKE: u64 = 8;
const CLASS_TASK_RECV: u64 = 9;
const CLASS_DROP_NOTICE: u64 = 10;
const CLASS_NIC_RESEND: u64 = 11;

/// The content-derived priority of an event (see the module docs).
///
/// Layout: `class` in the top 4 bits, then the targeted entity. Within one
/// nanosecond the key uniquely identifies every event whose processing
/// order can matter:
///
/// * per-entity events (`NicCredit`, `RouterArrive`, ...) are keyed by the
///   entity, and two *distinct* same-key events at the same time are
///   necessarily byte-identical (e.g. two `NicCredit { node }` — their
///   mutual order is irrelevant);
/// * `RlFeedback` additionally keys on the packet id (a router can receive
///   feedback about several packets in the same nanosecond, and Q-table
///   updates do not commute).
pub fn event_key(kind: &EventKind) -> u64 {
    #[inline]
    fn entity(router: RouterId, port: Port, vc: u8) -> u64 {
        ((router.0 as u64) << 24) | ((port.0 as u64) << 8) | vc as u64
    }
    match *kind {
        EventKind::TrafficArrival => CLASS_TRAFFIC << 60,
        EventKind::NicCredit { node } => (CLASS_NIC_CREDIT << 60) | node.0 as u64,
        EventKind::NicTryInject { node } => (CLASS_NIC_TRY << 60) | node.0 as u64,
        EventKind::RouterArrive {
            router, port, vc, ..
        } => (CLASS_ROUTER_ARRIVE << 60) | entity(router, port, vc),
        EventKind::SwitchAttempt { router, port, vc } => {
            (CLASS_SWITCH << 60) | entity(router, port, vc)
        }
        EventKind::OutputAttempt { router, port } => (CLASS_OUTPUT << 60) | entity(router, port, 0),
        EventKind::CreditArrive { router, port, vc } => {
            (CLASS_CREDIT << 60) | entity(router, port, vc)
        }
        EventKind::RlFeedback { router, ref msg } => {
            (CLASS_FEEDBACK << 60)
                | (((router.0 as u64) & 0xFF_FFFF) << 36)
                | (msg.packet_id & 0xF_FFFF_FFFF)
        }
        EventKind::TaskWake { node } => (CLASS_TASK_WAKE << 60) | node.0 as u64,
        // Keyed by `(node, src)`: a node can receive messages from many
        // sources in the same nanosecond. Two same-key `TaskRecv`s are
        // identical commutative "+1" counter bumps, so `seq` may break
        // their tie.
        EventKind::TaskRecv { node, src } => {
            (CLASS_TASK_RECV << 60) | ((node.0 as u64) << 28) | src.0 as u64
        }
        // Keyed by `(source node, packet id)`: a packet id is dropped at
        // most once per flight, so the key is unique within a nanosecond.
        EventKind::DropNotice { node, id, .. } => {
            (CLASS_DROP_NOTICE << 60) | (((node.0 as u64) & 0x0FFF_FFFF) << 32) | (id & 0xFFFF_FFFF)
        }
        EventKind::NicResend { node, id, .. } => {
            (CLASS_NIC_RESEND << 60) | (((node.0 as u64) & 0x0FFF_FFFF) << 32) | (id & 0xFFFF_FFFF)
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Event {
    /// Firing time in ns.
    pub time: SimTime,
    /// Content-derived priority (see [`event_key`]).
    pub key: u64,
    /// Push-order tie-break between identical events.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    #[inline]
    fn order(&self) -> (SimTime, u64, u64) {
        (self.time, self.key, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.order().cmp(&self.order())
    }
}

/// A deterministic min-queue of events keyed on `(time, key, seq)`.
///
/// Implementations must pop events in strictly increasing
/// `(time, key, seq)` order, assign `seq` in push order, and may assume
/// pushes never schedule earlier than the last popped time (the engine's
/// arrow of time).
pub trait Scheduler {
    /// Schedule `kind` to fire at `time`.
    fn push(&mut self, time: SimTime, kind: EventKind);

    /// Remove and return the earliest event, if any.
    fn pop(&mut self) -> Option<Event>;

    /// Remove and return the earliest event if its time is `<= t_end`;
    /// leave the queue untouched otherwise. The single-scan primitive the
    /// engine's run loop is built on.
    fn pop_before(&mut self, t_end: SimTime) -> Option<Event>;

    /// Time of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (for performance reporting).
    fn processed(&self) -> u64;
}

// ---------------------------------------------------------------------
// Reference implementation: binary heap
// ---------------------------------------------------------------------

/// The classic `BinaryHeap<Event>` scheduler (the pre-calendar design).
#[derive(Debug, Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    popped: u64,
}

impl BinaryHeapScheduler {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            key: event_key(&kind),
            seq,
            kind,
        });
    }

    fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.time <= t_end) {
            self.pop()
        } else {
            None
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn processed(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------

/// Default wheel horizon (buckets × 1 ns) when no engine config is at hand.
const DEFAULT_HORIZON: SimTime = 2048;

/// Hard cap on the wheel size so pathological configs cannot demand
/// gigabytes of buckets.
const MAX_HORIZON: SimTime = 1 << 22;

/// Two-level calendar queue: a circular wheel of 1 ns buckets for the near
/// future plus a heap for far-future overflow.
///
/// Invariants:
///
/// * `cursor` is the time of the last popped event (or 0); all wheel events
///   have `time` in `[cursor, cursor + horizon)`, so the bucket at slot
///   `time % horizon` holds events of exactly one time value.
/// * A bucket is either *unsorted* (its dirty bit is set; events were
///   appended in push order) or sorted **descending** by `(key, seq)` so
///   the next event to fire is at the back and pops are O(1). Buckets are
///   sorted lazily the first time a pop targets them; pushes at exactly
///   the cursor time (same-tick events generated while the tick is being
///   drained) go to the `current` min-heap instead of the bucket.
/// * `overflow` may hold events of any time; [`CalendarQueue::pop`] always
///   compares the wheel front against the overflow top, so ordering never
///   depends on migrating overflow events into the wheel.
/// * `current` holds only events firing at exactly `cursor` — same-tick
///   events generated while that tick is being drained. They pop before
///   anything later-timed, so the heap is always empty again by the time
///   the cursor advances.
#[derive(Debug)]
pub struct CalendarQueue {
    /// `horizon` buckets; bucket `t % horizon` holds events firing at `t`
    /// for the unique `t` in the current window congruent to the slot.
    buckets: Vec<Vec<Event>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: Vec<u64>,
    /// One bit per bucket: set iff the bucket needs sorting before popping.
    dirty: Vec<u64>,
    /// Wheel width in ns (power of two).
    horizon: SimTime,
    /// `horizon - 1`, for masking times into slots.
    mask: SimTime,
    /// Events currently stored in wheel buckets.
    wheel_len: usize,
    /// Lower bound of the wheel window = time of the last popped event.
    cursor: SimTime,
    /// Same-tick late arrivals: events pushed at exactly `cursor` while
    /// that tick is being drained. A positional insert into the sorted
    /// bucket would cost O(bucket_len) per push — quadratic per tick once
    /// thousands of events share a nanosecond at high entity counts; the
    /// min-heap makes it O(log same-tick-arrivals).
    current: BinaryHeap<Event>,
    /// Far-future events (and, defensively, any push outside the window).
    overflow: BinaryHeap<Event>,
    next_seq: u64,
    popped: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::with_horizon(DEFAULT_HORIZON)
    }
}

/// Where the next event to pop currently lives.
#[derive(Clone, Copy)]
enum NextEvent {
    Wheel(usize),
    Current,
    Overflow,
}

impl CalendarQueue {
    /// A calendar queue whose wheel spans `horizon` nanoseconds (rounded up
    /// to a power of two, clamped to a sane range).
    pub fn with_horizon(horizon: SimTime) -> Self {
        let horizon = horizon.next_power_of_two().clamp(64, MAX_HORIZON);
        Self {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            occupancy: vec![0u64; (horizon as usize) / 64],
            dirty: vec![0u64; (horizon as usize) / 64],
            horizon,
            mask: horizon - 1,
            wheel_len: 0,
            cursor: 0,
            current: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// A wheel sized to the engine's timing constants: four times the
    /// worst-case scheduling distance of any fabric event (serialisation +
    /// slowest link + router pipeline + host link), so everything except
    /// far-future traffic injections lands in the wheel.
    pub fn for_config(cfg: &EngineConfig) -> Self {
        let span = cfg.serialization_ns()
            + cfg.local_latency_ns.max(cfg.global_latency_ns)
            + cfg.router_latency_ns
            + cfg.host_latency_ns;
        Self::with_horizon((span * 4).max(DEFAULT_HORIZON))
    }

    /// [`CalendarQueue::for_config`] with bucket storage pre-sized for the
    /// event density of an `entities`-entity shard (routers + nodes). At
    /// high entity counts thousands of events share each wheel tick;
    /// seeding the buckets and the same-tick heap with a fraction of that
    /// skips the early reallocation ramp every bucket would otherwise go
    /// through. A no-op for shards smaller than the wheel.
    pub fn for_config_with_entities(cfg: &EngineConfig, entities: usize) -> Self {
        let mut q = Self::for_config(cfg);
        if entities > q.horizon as usize {
            let per_bucket = (entities / q.horizon as usize)
                .clamp(1, 64)
                .next_power_of_two();
            for bucket in &mut q.buckets {
                bucket.reserve(per_bucket);
            }
            q.current = BinaryHeap::with_capacity(4 * per_bucket);
        }
        q
    }

    #[inline]
    fn is_dirty(&self, slot: usize) -> bool {
        self.dirty[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline]
    fn set_dirty(&mut self, slot: usize, dirty: bool) {
        if dirty {
            self.dirty[slot >> 6] |= 1u64 << (slot & 63);
        } else {
            self.dirty[slot >> 6] &= !(1u64 << (slot & 63));
        }
    }

    /// Sort `slot` descending by `(key, seq)` if it is marked dirty, so its
    /// last element is the next to fire.
    fn ensure_sorted(&mut self, slot: usize) {
        if self.is_dirty(slot) {
            self.buckets[slot].sort_unstable_by_key(|e| std::cmp::Reverse((e.key, e.seq)));
            self.set_dirty(slot, false);
        }
    }

    /// Slot of the earliest non-empty wheel bucket, scanning the occupancy
    /// bitmap circularly from the cursor's slot. Because all wheel events
    /// live within one `horizon`-wide window starting at the cursor,
    /// circular slot order equals time order.
    fn earliest_slot(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & self.mask) as usize;
        let words = self.occupancy.len();
        let start_word = start >> 6;
        let start_bit = start & 63;
        let first = self.occupancy[start_word] & (!0u64 << start_bit);
        if first != 0 {
            return Some((start_word << 6) + first.trailing_zeros() as usize);
        }
        for i in 1..=words {
            let w = (start_word + i) % words;
            let word = if i == words {
                // Wrapped all the way around: only the bits before `start`
                // in the starting word remain unchecked.
                self.occupancy[w] & !(!0u64 << start_bit)
            } else {
                self.occupancy[w]
            };
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        debug_assert!(false, "wheel_len > 0 but no occupied bucket found");
        None
    }

    /// Location of the next event to pop, if its time is `<= t_end`.
    /// Does everything in one pass: the wheel bitmap is scanned once, and
    /// the candidate bucket is only sorted when its tick actually holds
    /// the minimum time (sorting is pointless when the same-tick heap or
    /// the overflow wins on time alone, or the bound rejects the tick).
    fn next_event_before(&mut self, t_end: SimTime) -> Option<NextEvent> {
        let slot = self.earliest_slot();
        // All events of a bucket share one time, so time-only candidates
        // need no sorting.
        let wheel_t = slot.map(|s| {
            self.buckets[s]
                .last()
                .expect("occupancy bit set on empty bucket")
                .time
        });
        let current = self.current.peek().map(|e| (e.time, e.key, e.seq));
        let overflow = self.overflow.peek().map(|e| (e.time, e.key, e.seq));
        let mut min_t = SimTime::MAX;
        for t in [wheel_t, current.map(|c| c.0), overflow.map(|o| o.0)]
            .into_iter()
            .flatten()
        {
            min_t = min_t.min(t);
        }
        if min_t == SimTime::MAX || min_t > t_end {
            return None;
        }
        // Only sources holding the minimum time compete on (key, seq).
        let wheel = match (slot, wheel_t) {
            (Some(s), Some(t)) if t == min_t => {
                self.ensure_sorted(s);
                let front = self.buckets[s].last().expect("occupied bucket");
                Some((front.key, front.seq, NextEvent::Wheel(s)))
            }
            _ => None,
        };
        let current = current
            .filter(|c| c.0 == min_t)
            .map(|c| (c.1, c.2, NextEvent::Current));
        let overflow = overflow
            .filter(|o| o.0 == min_t)
            .map(|o| (o.1, o.2, NextEvent::Overflow));
        [wheel, current, overflow]
            .into_iter()
            .flatten()
            .min_by_key(|&(key, seq, _)| (key, seq))
            .map(|(_, _, location)| location)
    }

    fn pop_from(&mut self, location: NextEvent) -> Event {
        let event = match location {
            NextEvent::Wheel(slot) => {
                let event = self.buckets[slot]
                    .pop()
                    .expect("next_event located an event here");
                self.wheel_len -= 1;
                if self.buckets[slot].is_empty() {
                    self.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
                }
                event
            }
            NextEvent::Current => self
                .current
                .pop()
                .expect("next_event located an event here"),
            NextEvent::Overflow => self
                .overflow
                .pop()
                .expect("next_event located an event here"),
        };
        // Advancing the cursor keeps the wheel window anchored at the last
        // popped time; `max` guards against defensive out-of-window pushes
        // that went to the overflow heap with times behind the cursor.
        self.cursor = self.cursor.max(event.time);
        self.popped += 1;
        event
    }
}

impl CalendarQueue {
    /// File an already-sequenced event into the wheel or the overflow heap
    /// (the shared tail of [`Scheduler::push`] and checkpoint restore).
    fn insert(&mut self, event: Event) {
        let time = event.time;
        debug_assert!(
            time >= self.cursor,
            "push at {time} behind the scheduler cursor {}",
            self.cursor
        );
        if time == self.cursor {
            // The tick being drained right now: a heap push keeps the
            // event's ordered place among the remaining same-tick events
            // at O(log n) instead of a positional insert's O(n) memmove.
            self.current.push(event);
        } else if time > self.cursor && time - self.cursor < self.horizon {
            let slot = (time & self.mask) as usize;
            debug_assert!(
                self.buckets[slot].last().is_none_or(|e| e.time == time),
                "bucket {slot} mixes times: held {:?}, pushing {time}",
                self.buckets[slot].last().map(|e| e.time),
            );
            let bucket = &mut self.buckets[slot];
            if bucket.is_empty() {
                bucket.push(event);
                self.set_dirty(slot, false);
            } else {
                // Future tick: O(1) append now, one sort when a pop first
                // targets the bucket (see `ensure_sorted`).
                bucket.push(event);
                self.set_dirty(slot, true);
            }
            self.occupancy[slot >> 6] |= 1u64 << (slot & 63);
            self.wheel_len += 1;
        } else {
            // Far future (or, defensively, behind the cursor): the heap
            // level handles any time correctly, just more slowly.
            self.overflow.push(event);
        }
    }
}

impl Scheduler for CalendarQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Event {
            time,
            key: event_key(&kind),
            seq,
            kind,
        });
    }

    fn pop(&mut self) -> Option<Event> {
        let location = self.next_event_before(SimTime::MAX)?;
        Some(self.pop_from(location))
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        let location = self.next_event_before(t_end)?;
        Some(self.pop_from(location))
    }

    fn peek_time(&self) -> Option<SimTime> {
        // Same-tick events fire at the cursor — nothing can be earlier.
        if let Some(e) = self.current.peek() {
            return Some(e.time);
        }
        // All events in a bucket share one time, so no sorting is needed to
        // answer time-only queries.
        let wheel = self
            .earliest_slot()
            .map(|slot| self.buckets[slot].last().expect("occupied bucket").time);
        let overflow = self.overflow.peek().map(|e| e.time);
        match (wheel, overflow) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (Some(w), Some(o)) => Some(w.min(o)),
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.current.len() + self.overflow.len()
    }

    fn processed(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------
// The engine-facing queue: runtime-selectable scheduler
// ---------------------------------------------------------------------

/// A deterministic min-queue of events, dispatching to the scheduler
/// selected by [`SchedulerKind`] (enum dispatch keeps the hot path free of
/// virtual calls).
#[derive(Debug)]
pub enum EventQueue {
    /// Reference binary-heap scheduler.
    Heap(BinaryHeapScheduler),
    /// Calendar/bucket-queue scheduler (the default).
    Calendar(CalendarQueue),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::Calendar(CalendarQueue::default())
    }
}

macro_rules! delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            EventQueue::Heap($q) => $body,
            EventQueue::Calendar($q) => $body,
        }
    };
}

impl EventQueue {
    /// An event queue with the default (calendar) scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduler selected by `cfg.scheduler`, with the calendar wheel
    /// sized to `cfg`'s timing constants.
    pub fn for_config(cfg: &EngineConfig) -> Self {
        match cfg.scheduler {
            SchedulerKind::Calendar => EventQueue::Calendar(CalendarQueue::for_config(cfg)),
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeapScheduler::new()),
        }
    }

    /// [`EventQueue::for_config`] with storage pre-sized for a shard of
    /// `entities` entities (see
    /// [`CalendarQueue::for_config_with_entities`]; a no-op for the heap
    /// scheduler, which sizes itself). Capacity only — pop order and
    /// results are identical to [`EventQueue::for_config`].
    pub fn for_config_with_entities(cfg: &EngineConfig, entities: usize) -> Self {
        match cfg.scheduler {
            SchedulerKind::Calendar => {
                EventQueue::Calendar(CalendarQueue::for_config_with_entities(cfg, entities))
            }
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeapScheduler::new()),
        }
    }

    /// Which scheduler is driving this queue.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Heap(_) => SchedulerKind::BinaryHeap,
            EventQueue::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    /// Snapshot the pending event set and the push/pop counters in
    /// canonical `(time, key, seq)` order. Non-destructive; the snapshot
    /// is scheduler-independent (restoring into the other scheduler kind
    /// pops the same sequence, because ordering is total on the triple).
    pub fn checkpoint(&self) -> SchedulerCheckpoint {
        let (mut events, next_seq, popped) = match self {
            EventQueue::Heap(s) => (
                s.heap.iter().copied().collect::<Vec<Event>>(),
                s.next_seq,
                s.popped,
            ),
            EventQueue::Calendar(s) => (
                s.buckets
                    .iter()
                    .flatten()
                    .chain(s.current.iter())
                    .chain(s.overflow.iter())
                    .copied()
                    .collect(),
                s.next_seq,
                s.popped,
            ),
        };
        events.sort_unstable_by_key(Event::order);
        SchedulerCheckpoint {
            events,
            next_seq,
            popped,
        }
    }

    /// Refill this (empty, freshly built) queue from a checkpoint,
    /// preserving every event's sequence number and the counters that
    /// future pushes and `processed()` continue from. `now` anchors the
    /// calendar wheel window; every restored event must fire at or after
    /// it (guaranteed after `run_until(now)`, which drains everything up
    /// to and including `now`).
    pub fn restore(&mut self, ck: &SchedulerCheckpoint, now: SimTime) {
        assert!(self.len() == 0, "restore requires an empty queue");
        match self {
            EventQueue::Heap(s) => {
                s.heap = ck.events.iter().copied().collect();
                s.next_seq = ck.next_seq;
                s.popped = ck.popped;
            }
            EventQueue::Calendar(s) => {
                s.cursor = now;
                for event in &ck.events {
                    s.insert(*event);
                }
                s.next_seq = ck.next_seq;
                s.popped = ck.popped;
            }
        }
    }
}

/// A serialisable snapshot of a scheduler (see [`EventQueue::checkpoint`]):
/// the pending events in canonical order plus the counters that keep
/// sequence numbers — and therefore tie-breaking — identical after a
/// restore.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCheckpoint {
    /// Pending events, ascending by `(time, key, seq)`.
    pub events: Vec<Event>,
    /// The push counter (next sequence number to assign).
    pub next_seq: u64,
    /// The pop counter (`processed()` continues from here).
    pub popped: u64,
}

impl Scheduler for EventQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        delegate!(self, q => q.push(time, kind))
    }

    fn pop(&mut self) -> Option<Event> {
        delegate!(self, q => q.pop())
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        delegate!(self, q => q.pop_before(t_end))
    }

    fn peek_time(&self) -> Option<SimTime> {
        delegate!(self, q => q.peek_time())
    }

    fn len(&self) -> usize {
        delegate!(self, q => q.len())
    }

    fn processed(&self) -> u64 {
        delegate!(self, q => q.processed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedulers() -> Vec<(&'static str, Box<dyn Scheduler>)> {
        vec![
            ("heap", Box::new(BinaryHeapScheduler::new())),
            ("calendar", Box::new(CalendarQueue::default())),
            ("small-calendar", Box::new(CalendarQueue::with_horizon(64))),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for (name, mut q) in schedulers() {
            q.push(50, EventKind::TrafficArrival);
            q.push(10, EventKind::TrafficArrival);
            q.push(30, EventKind::TrafficArrival);
            assert_eq!(q.len(), 3, "{name}");
            assert_eq!(q.pop().unwrap().time, 10, "{name}");
            assert_eq!(q.pop().unwrap().time, 30, "{name}");
            assert_eq!(q.pop().unwrap().time, 50, "{name}");
            assert!(q.pop().is_none(), "{name}");
            assert_eq!(q.processed(), 3, "{name}");
        }
    }

    #[test]
    fn equal_times_pop_in_key_order_regardless_of_push_order() {
        for (name, mut q) in schedulers() {
            // Pushed in reverse entity order; the content key sorts them.
            q.push(5, EventKind::NicTryInject { node: NodeId(3) });
            q.push(5, EventKind::NicTryInject { node: NodeId(1) });
            q.push(5, EventKind::NicTryInject { node: NodeId(2) });
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::NicTryInject { node } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3], "{name}");
        }
    }

    #[test]
    fn identical_events_pop_in_scheduling_order() {
        for (name, mut q) in schedulers() {
            // Same key: distinguishable only by seq, which is push order.
            q.push(5, EventKind::TrafficArrival);
            q.push(5, EventKind::TrafficArrival);
            let a = q.pop().unwrap();
            let b = q.pop().unwrap();
            assert!(a.seq < b.seq, "{name}: identical events must be FIFO");
        }
    }

    #[test]
    fn classes_rank_same_tick_events() {
        for (name, mut q) in schedulers() {
            let node = NodeId(7);
            let router = RouterId(3);
            let port = Port(2);
            q.push(9, EventKind::OutputAttempt { router, port });
            q.push(9, EventKind::TrafficArrival);
            q.push(
                9,
                EventKind::RouterArrive {
                    router,
                    port,
                    vc: 0,
                    packet: PacketRef(0),
                },
            );
            q.push(9, EventKind::NicCredit { node });
            let classes: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| e.key >> 60)
                .collect();
            assert_eq!(
                classes,
                vec![
                    CLASS_TRAFFIC,
                    CLASS_NIC_CREDIT,
                    CLASS_ROUTER_ARRIVE,
                    CLASS_OUTPUT
                ],
                "{name}"
            );
        }
    }

    #[test]
    fn task_events_rank_after_fabric_events_and_key_on_their_content() {
        // The closed-loop task events live in their own key classes, after
        // every fabric class, and are keyed by the entities whose relative
        // order can matter: the node for wakes, `(node, src)` for receive
        // notifications.
        let wake = event_key(&EventKind::TaskWake { node: NodeId(5) });
        assert_eq!(wake >> 60, CLASS_TASK_WAKE);
        assert_eq!(wake & 0xFFFF_FFFF, 5);
        let recv = event_key(&EventKind::TaskRecv {
            node: NodeId(3),
            src: NodeId(9),
        });
        assert_eq!(recv >> 60, CLASS_TASK_RECV);
        assert_eq!((recv >> 28) & 0x0FFF_FFFF, 3);
        assert_eq!(recv & 0x0FFF_FFFF, 9);
        const _: () =
            assert!(CLASS_TASK_WAKE > CLASS_FEEDBACK && CLASS_TASK_RECV > CLASS_TASK_WAKE);
        for (name, mut q) in schedulers() {
            q.push(
                4,
                EventKind::TaskRecv {
                    node: NodeId(1),
                    src: NodeId(2),
                },
            );
            q.push(4, EventKind::TaskWake { node: NodeId(1) });
            q.push(4, EventKind::NicCredit { node: NodeId(1) });
            let classes: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| e.key >> 60)
                .collect();
            assert_eq!(
                classes,
                vec![CLASS_NIC_CREDIT, CLASS_TASK_WAKE, CLASS_TASK_RECV],
                "{name}"
            );
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        for (name, mut q) in schedulers() {
            assert_eq!(q.peek_time(), None, "{name}");
            q.push(42, EventKind::TrafficArrival);
            q.push(7, EventKind::TrafficArrival);
            assert_eq!(q.peek_time(), Some(7), "{name}");
            q.pop();
            assert_eq!(q.peek_time(), Some(42), "{name}");
        }
    }

    #[test]
    fn pop_before_respects_the_bound() {
        for (name, mut q) in schedulers() {
            q.push(10, EventKind::TrafficArrival);
            q.push(20, EventKind::TrafficArrival);
            assert!(q.pop_before(5).is_none(), "{name}");
            assert_eq!(q.pop_before(10).unwrap().time, 10, "{name}");
            assert!(q.pop_before(15).is_none(), "{name}");
            assert_eq!(q.pop_before(u64::MAX).unwrap().time, 20, "{name}");
            assert!(q.pop_before(u64::MAX).is_none(), "{name}");
        }
    }

    #[test]
    fn calendar_far_future_goes_to_overflow_and_pops_in_order() {
        let mut q = CalendarQueue::with_horizon(64);
        q.push(1_000_000, EventKind::TrafficArrival); // far beyond the wheel
        q.push(3, EventKind::TrafficArrival);
        q.push(999_999, EventKind::TrafficArrival);
        assert!(q.overflow.len() >= 2, "far-future events use the overflow");
        assert_eq!(q.pop().unwrap().time, 3);
        assert_eq!(q.pop().unwrap().time, 999_999);
        assert_eq!(q.pop().unwrap().time, 1_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_overflow_ties_with_wheel_resolve_like_the_heap() {
        // The same (time, key) in the overflow level and the wheel must
        // resolve by seq, exactly as a single heap would.
        let mut q = CalendarQueue::with_horizon(64);
        // Pushed first while out of window: ends up in overflow with seq 0.
        q.push(100, EventKind::NicTryInject { node: NodeId(1) });
        // Advance the cursor so time 100 is now within the wheel window.
        q.push(60, EventKind::TrafficArrival);
        q.pop();
        // Pushed second, lands in the wheel at the same (time, key): seq 2.
        q.push(100, EventKind::NicTryInject { node: NodeId(1) });
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 2], "overflow-vs-wheel tie breaks by seq");
    }

    #[test]
    fn calendar_wheel_wraps_around() {
        let mut q = CalendarQueue::with_horizon(64);
        // Walk the cursor across several full wheel rotations.
        for step in 0..300u64 {
            let t = step * 13; // co-prime with 64: hits every slot
            q.push(t, EventKind::TrafficArrival);
            assert_eq!(q.pop().unwrap().time, t);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_interleaved_pushes_at_the_popped_time() {
        // Events scheduled *at* the current time while draining it must
        // sort into their (key, seq) position among the remaining
        // same-tick events, like the heap.
        let mut heap: Box<dyn Scheduler> = Box::new(BinaryHeapScheduler::new());
        let mut cal: Box<dyn Scheduler> = Box::new(CalendarQueue::with_horizon(64));
        for q in [&mut heap, &mut cal] {
            q.push(5, EventKind::NicTryInject { node: NodeId(2) });
            q.push(5, EventKind::NicTryInject { node: NodeId(4) });
            let first = q.pop().unwrap();
            assert_eq!(first.time, 5);
            // Dispatch of the first event schedules two more at t=5: one
            // sorting before the pending node-4 event, one after.
            q.push(5, EventKind::NicTryInject { node: NodeId(3) });
            q.push(5, EventKind::NicTryInject { node: NodeId(5) });
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::NicTryInject { node } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![3, 4, 5]);
        }
    }

    #[test]
    fn calendar_skips_long_empty_stretches() {
        let mut q = CalendarQueue::with_horizon(1024);
        // Two events at opposite ends of the wheel with nothing in between:
        // the bitmap scan must jump the gap, not walk it bucket by bucket
        // (correctness check here; the speed is what the benches measure).
        q.push(1, EventKind::TrafficArrival);
        q.push(1_020, EventKind::TrafficArrival);
        assert_eq!(q.pop().unwrap().time, 1);
        assert_eq!(q.peek_time(), Some(1_020));
        assert_eq!(q.pop().unwrap().time, 1_020);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn event_queue_selects_scheduler_from_config() {
        let mut cfg = EngineConfig::default();
        assert!(matches!(
            EventQueue::for_config(&cfg).kind(),
            SchedulerKind::Calendar
        ));
        cfg.scheduler = SchedulerKind::BinaryHeap;
        assert!(matches!(
            EventQueue::for_config(&cfg).kind(),
            SchedulerKind::BinaryHeap
        ));
    }

    #[test]
    fn random_workload_matches_heap_order_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::with_horizon(256);
        // Interleave batches of pushes (times never behind the last pop,
        // like the engine) with drains, across several wheel rotations.
        let mut now: SimTime = 0;
        for round in 0..200 {
            for _ in 0..rng.gen_range(1..20) {
                let t = now + rng.gen_range(0..2_000u64);
                let node = NodeId(rng.gen_range(0..1_000u32));
                heap.push(t, EventKind::NicTryInject { node });
                cal.push(t, EventKind::NicTryInject { node });
            }
            for _ in 0..rng.gen_range(1..15) {
                let (h, c) = (heap.pop(), cal.pop());
                match (h, c) {
                    (None, None) => break,
                    (Some(h), Some(c)) => {
                        assert_eq!(
                            (h.time, h.key, h.seq),
                            (c.time, c.key, c.seq),
                            "round {round}"
                        );
                        now = h.time;
                    }
                    other => panic!("schedulers disagree on emptiness: {other:?}"),
                }
            }
        }
        // Drain whatever is left.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(h), Some(c)) => {
                    assert_eq!((h.time, h.key, h.seq), (c.time, c.key, c.seq))
                }
                other => panic!("schedulers disagree on emptiness: {other:?}"),
            }
        }
    }
}
