//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is a
//! monotonically increasing counter assigned at push time. The sequence
//! tie-break makes the simulation fully deterministic: two events scheduled
//! for the same nanosecond are processed in the order they were scheduled.

use crate::packet::Packet;
use crate::routing::FeedbackMsg;
use crate::time::SimTime;
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// The next scheduled traffic injection is due: materialise the packet
    /// at its source NIC and pull the following injection from the
    /// [`crate::injector::TrafficInjector`].
    TrafficArrival,
    /// A NIC should (re)try pushing the head of its source queue into its
    /// router's host input buffer.
    NicTryInject { node: NodeId },
    /// A credit for the host input buffer came back to the NIC.
    NicCredit { node: NodeId },
    /// A packet finished traversing a link and lands in the input buffer
    /// `(port, vc)` of `router`.
    RouterArrive {
        router: RouterId,
        port: Port,
        vc: u8,
        packet: Box<Packet>,
    },
    /// The head packet of input buffer `(port, vc)` of `router` attempts
    /// switch traversal (routing decision + move to an output queue).
    SwitchAttempt {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Output port `port` of `router` attempts to serialise a packet onto
    /// its outgoing link.
    OutputAttempt { router: RouterId, port: Port },
    /// A credit for `(port, vc)` returned to `router` from its downstream
    /// neighbour.
    CreditArrive {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Reinforcement-learning feedback delivered to the agent of `router`.
    RlFeedback { router: RouterId, msg: FeedbackMsg },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Firing time in ns.
    pub time: SimTime,
    /// Scheduling order tie-break.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far (for performance reporting).
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(50, EventKind::TrafficArrival);
        q.push(10, EventKind::TrafficArrival);
        q.push(30, EventKind::TrafficArrival);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time, 10);
        assert_eq!(q.pop().unwrap().time, 30);
        assert_eq!(q.pop().unwrap().time, 50);
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::NicTryInject { node: NodeId(1) });
        q.push(5, EventKind::NicTryInject { node: NodeId(2) });
        q.push(5, EventKind::NicTryInject { node: NodeId(3) });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NicTryInject { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, EventKind::TrafficArrival);
        q.push(7, EventKind::TrafficArrival);
        assert_eq!(q.peek_time(), Some(7));
        q.pop();
        assert_eq!(q.peek_time(), Some(42));
    }
}
