//! The discrete-event schedulers.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is a
//! monotonically increasing counter assigned at push time. The sequence
//! tie-break makes the simulation fully deterministic: two events scheduled
//! for the same nanosecond are processed in the order they were scheduled.
//!
//! Two [`Scheduler`] implementations share that contract:
//!
//! * [`BinaryHeapScheduler`] — the classic `BinaryHeap<Event>` min-queue
//!   (O(log n) per operation, pointer-free but cache-unfriendly for large
//!   queues). Kept as the reference implementation for differential tests
//!   and selectable via [`crate::config::SchedulerKind::BinaryHeap`].
//! * [`CalendarQueue`] — a two-level calendar/bucket queue: a power-of-two
//!   wheel of 1 ns FIFO buckets for near-future events (sized from the
//!   link/serialisation latencies, which bound how far ahead the fabric
//!   ever schedules) plus a binary-heap overflow level for the rare
//!   far-future event (in practice only the single pending traffic
//!   injection). Every bucket holds events of exactly one nanosecond, so
//!   FIFO order *is* `(time, seq)` order and push/pop are O(1) amortised.
//!
//! Both schedulers pop the exact same `(time, seq)` total order, so pinned
//! simulation outputs are bit-for-bit identical whichever one runs — see
//! the `scheduler_differential` integration test.

use crate::arena::PacketRef;
use crate::config::{EngineConfig, SchedulerKind};
use crate::routing::FeedbackMsg;
use crate::time::SimTime;
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// What happens when an event fires.
///
/// All variants are small and `Copy`: packets are not carried by value but
/// as 4-byte [`PacketRef`] handles into the engine's
/// [`crate::arena::PacketArena`], so moving an event never allocates.
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// The next scheduled traffic injection is due: materialise the packet
    /// at its source NIC and pull the following injection from the
    /// [`crate::injector::TrafficInjector`].
    TrafficArrival,
    /// A NIC should (re)try pushing the head of its source queue into its
    /// router's host input buffer.
    NicTryInject { node: NodeId },
    /// A credit for the host input buffer came back to the NIC.
    NicCredit { node: NodeId },
    /// A packet finished traversing a link and lands in the input buffer
    /// `(port, vc)` of `router`.
    RouterArrive {
        router: RouterId,
        port: Port,
        vc: u8,
        packet: PacketRef,
    },
    /// The head packet of input buffer `(port, vc)` of `router` attempts
    /// switch traversal (routing decision + move to an output queue).
    SwitchAttempt {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Output port `port` of `router` attempts to serialise a packet onto
    /// its outgoing link.
    OutputAttempt { router: RouterId, port: Port },
    /// A credit for `(port, vc)` returned to `router` from its downstream
    /// neighbour.
    CreditArrive {
        router: RouterId,
        port: Port,
        vc: u8,
    },
    /// Reinforcement-learning feedback delivered to the agent of `router`.
    RlFeedback { router: RouterId, msg: FeedbackMsg },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Firing time in ns.
    pub time: SimTime,
    /// Scheduling order tie-break.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of events keyed on `(time, seq)`.
///
/// Implementations must pop events in strictly increasing `(time, seq)`
/// order, assign `seq` in push order, and may assume pushes never schedule
/// earlier than the last popped time (the engine's arrow of time).
pub trait Scheduler {
    /// Schedule `kind` to fire at `time`.
    fn push(&mut self, time: SimTime, kind: EventKind);

    /// Remove and return the earliest event, if any.
    fn pop(&mut self) -> Option<Event>;

    /// Remove and return the earliest event if its time is `<= t_end`;
    /// leave the queue untouched otherwise. The single-scan primitive the
    /// engine's run loop is built on.
    fn pop_before(&mut self, t_end: SimTime) -> Option<Event>;

    /// Time of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (for performance reporting).
    fn processed(&self) -> u64;
}

// ---------------------------------------------------------------------
// Reference implementation: binary heap
// ---------------------------------------------------------------------

/// The classic `BinaryHeap<Event>` scheduler (the pre-calendar design).
#[derive(Debug, Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    popped: u64,
}

impl BinaryHeapScheduler {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.time <= t_end) {
            self.pop()
        } else {
            None
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn processed(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------

/// Default wheel horizon (buckets × 1 ns) when no engine config is at hand.
const DEFAULT_HORIZON: SimTime = 2048;

/// Hard cap on the wheel size so pathological configs cannot demand
/// gigabytes of buckets.
const MAX_HORIZON: SimTime = 1 << 22;

/// Two-level calendar queue: a circular wheel of 1 ns FIFO buckets for the
/// near future plus a heap for far-future overflow.
///
/// Invariants:
///
/// * `cursor` is the time of the last popped event (or 0); all wheel events
///   have `time` in `[cursor, cursor + horizon)`, so the bucket at slot
///   `time % horizon` holds events of exactly one time value and FIFO order
///   within a bucket equals `(time, seq)` order.
/// * `overflow` may hold events of any time; [`CalendarQueue::pop`] always
///   compares the wheel front against the overflow top, so ordering never
///   depends on migrating overflow events into the wheel.
#[derive(Debug)]
pub struct CalendarQueue {
    /// `horizon` FIFO buckets; bucket `t % horizon` holds events firing at
    /// `t` for the unique `t` in the current window congruent to the slot.
    buckets: Vec<VecDeque<Event>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: Vec<u64>,
    /// Wheel width in ns (power of two).
    horizon: SimTime,
    /// `horizon - 1`, for masking times into slots.
    mask: SimTime,
    /// Events currently stored in wheel buckets.
    wheel_len: usize,
    /// Lower bound of the wheel window = time of the last popped event.
    cursor: SimTime,
    /// Far-future events (and, defensively, any push outside the window).
    overflow: BinaryHeap<Event>,
    next_seq: u64,
    popped: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::with_horizon(DEFAULT_HORIZON)
    }
}

/// Where the next event to pop currently lives.
#[derive(Clone, Copy)]
enum NextEvent {
    Wheel(usize),
    Overflow,
}

impl CalendarQueue {
    /// A calendar queue whose wheel spans `horizon` nanoseconds (rounded up
    /// to a power of two, clamped to a sane range).
    pub fn with_horizon(horizon: SimTime) -> Self {
        let horizon = horizon.next_power_of_two().clamp(64, MAX_HORIZON);
        Self {
            buckets: (0..horizon).map(|_| VecDeque::new()).collect(),
            occupancy: vec![0u64; (horizon as usize) / 64],
            horizon,
            mask: horizon - 1,
            wheel_len: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// A wheel sized to the engine's timing constants: four times the
    /// worst-case scheduling distance of any fabric event (serialisation +
    /// slowest link + router pipeline + host link), so everything except
    /// far-future traffic injections lands in the wheel.
    pub fn for_config(cfg: &EngineConfig) -> Self {
        let span = cfg.serialization_ns()
            + cfg.local_latency_ns.max(cfg.global_latency_ns)
            + cfg.router_latency_ns
            + cfg.host_latency_ns;
        Self::with_horizon((span * 4).max(DEFAULT_HORIZON))
    }

    /// Slot of the earliest non-empty wheel bucket, scanning the occupancy
    /// bitmap circularly from the cursor's slot. Because all wheel events
    /// live within one `horizon`-wide window starting at the cursor,
    /// circular slot order equals time order.
    fn earliest_slot(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & self.mask) as usize;
        let words = self.occupancy.len();
        let start_word = start >> 6;
        let start_bit = start & 63;
        let first = self.occupancy[start_word] & (!0u64 << start_bit);
        if first != 0 {
            return Some((start_word << 6) + first.trailing_zeros() as usize);
        }
        for i in 1..=words {
            let w = (start_word + i) % words;
            let word = if i == words {
                // Wrapped all the way around: only the bits before `start`
                // in the starting word remain unchecked.
                self.occupancy[w] & !(!0u64 << start_bit)
            } else {
                self.occupancy[w]
            };
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        debug_assert!(false, "wheel_len > 0 but no occupied bucket found");
        None
    }

    /// `(time, seq, location)` of the next event to pop, if any.
    fn next_event(&self) -> Option<(SimTime, u64, NextEvent)> {
        let wheel = self.earliest_slot().map(|slot| {
            let front = self.buckets[slot]
                .front()
                .expect("occupancy bit set on empty bucket");
            (front.time, front.seq, NextEvent::Wheel(slot))
        });
        let overflow = self
            .overflow
            .peek()
            .map(|e| (e.time, e.seq, NextEvent::Overflow));
        match (wheel, overflow) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (Some(w), Some(o)) => Some(if (w.0, w.1) <= (o.0, o.1) { w } else { o }),
        }
    }

    fn pop_from(&mut self, location: NextEvent) -> Event {
        let event = match location {
            NextEvent::Wheel(slot) => {
                let event = self.buckets[slot]
                    .pop_front()
                    .expect("next_event located an event here");
                self.wheel_len -= 1;
                if self.buckets[slot].is_empty() {
                    self.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
                }
                event
            }
            NextEvent::Overflow => self
                .overflow
                .pop()
                .expect("next_event located an event here"),
        };
        // Advancing the cursor keeps the wheel window anchored at the last
        // popped time; `max` guards against defensive out-of-window pushes
        // that went to the overflow heap with times behind the cursor.
        self.cursor = self.cursor.max(event.time);
        self.popped += 1;
        event
    }
}

impl Scheduler for CalendarQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Event { time, seq, kind };
        debug_assert!(
            time >= self.cursor,
            "push at {time} behind the scheduler cursor {}",
            self.cursor
        );
        if time >= self.cursor && time - self.cursor < self.horizon {
            let slot = (time & self.mask) as usize;
            debug_assert!(
                self.buckets[slot].back().is_none_or(|e| e.time == time),
                "bucket {slot} mixes times: held {:?}, pushing {time}",
                self.buckets[slot].back().map(|e| e.time),
            );
            self.buckets[slot].push_back(event);
            self.occupancy[slot >> 6] |= 1u64 << (slot & 63);
            self.wheel_len += 1;
        } else {
            // Far future (or, defensively, behind the cursor): the heap
            // level handles any time correctly, just more slowly.
            self.overflow.push(event);
        }
    }

    fn pop(&mut self) -> Option<Event> {
        let (_, _, location) = self.next_event()?;
        Some(self.pop_from(location))
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        let (time, _, location) = self.next_event()?;
        if time > t_end {
            return None;
        }
        Some(self.pop_from(location))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.next_event().map(|(time, _, _)| time)
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn processed(&self) -> u64 {
        self.popped
    }
}

// ---------------------------------------------------------------------
// The engine-facing queue: runtime-selectable scheduler
// ---------------------------------------------------------------------

/// A deterministic min-queue of events, dispatching to the scheduler
/// selected by [`SchedulerKind`] (enum dispatch keeps the hot path free of
/// virtual calls).
#[derive(Debug)]
pub enum EventQueue {
    /// Reference binary-heap scheduler.
    Heap(BinaryHeapScheduler),
    /// Calendar/bucket-queue scheduler (the default).
    Calendar(CalendarQueue),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::Calendar(CalendarQueue::default())
    }
}

macro_rules! delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            EventQueue::Heap($q) => $body,
            EventQueue::Calendar($q) => $body,
        }
    };
}

impl EventQueue {
    /// An event queue with the default (calendar) scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduler selected by `cfg.scheduler`, with the calendar wheel
    /// sized to `cfg`'s timing constants.
    pub fn for_config(cfg: &EngineConfig) -> Self {
        match cfg.scheduler {
            SchedulerKind::Calendar => EventQueue::Calendar(CalendarQueue::for_config(cfg)),
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeapScheduler::new()),
        }
    }

    /// Which scheduler is driving this queue.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Heap(_) => SchedulerKind::BinaryHeap,
            EventQueue::Calendar(_) => SchedulerKind::Calendar,
        }
    }
}

impl Scheduler for EventQueue {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        delegate!(self, q => q.push(time, kind))
    }

    fn pop(&mut self) -> Option<Event> {
        delegate!(self, q => q.pop())
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Event> {
        delegate!(self, q => q.pop_before(t_end))
    }

    fn peek_time(&self) -> Option<SimTime> {
        delegate!(self, q => q.peek_time())
    }

    fn len(&self) -> usize {
        delegate!(self, q => q.len())
    }

    fn processed(&self) -> u64 {
        delegate!(self, q => q.processed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedulers() -> Vec<(&'static str, Box<dyn Scheduler>)> {
        vec![
            ("heap", Box::new(BinaryHeapScheduler::new())),
            ("calendar", Box::new(CalendarQueue::default())),
            ("small-calendar", Box::new(CalendarQueue::with_horizon(64))),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for (name, mut q) in schedulers() {
            q.push(50, EventKind::TrafficArrival);
            q.push(10, EventKind::TrafficArrival);
            q.push(30, EventKind::TrafficArrival);
            assert_eq!(q.len(), 3, "{name}");
            assert_eq!(q.pop().unwrap().time, 10, "{name}");
            assert_eq!(q.pop().unwrap().time, 30, "{name}");
            assert_eq!(q.pop().unwrap().time, 50, "{name}");
            assert!(q.pop().is_none(), "{name}");
            assert_eq!(q.processed(), 3, "{name}");
        }
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        for (name, mut q) in schedulers() {
            q.push(5, EventKind::NicTryInject { node: NodeId(1) });
            q.push(5, EventKind::NicTryInject { node: NodeId(2) });
            q.push(5, EventKind::NicTryInject { node: NodeId(3) });
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::NicTryInject { node } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3], "{name}");
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        for (name, mut q) in schedulers() {
            assert_eq!(q.peek_time(), None, "{name}");
            q.push(42, EventKind::TrafficArrival);
            q.push(7, EventKind::TrafficArrival);
            assert_eq!(q.peek_time(), Some(7), "{name}");
            q.pop();
            assert_eq!(q.peek_time(), Some(42), "{name}");
        }
    }

    #[test]
    fn pop_before_respects_the_bound() {
        for (name, mut q) in schedulers() {
            q.push(10, EventKind::TrafficArrival);
            q.push(20, EventKind::TrafficArrival);
            assert!(q.pop_before(5).is_none(), "{name}");
            assert_eq!(q.pop_before(10).unwrap().time, 10, "{name}");
            assert!(q.pop_before(15).is_none(), "{name}");
            assert_eq!(q.pop_before(u64::MAX).unwrap().time, 20, "{name}");
            assert!(q.pop_before(u64::MAX).is_none(), "{name}");
        }
    }

    #[test]
    fn calendar_far_future_goes_to_overflow_and_pops_in_order() {
        let mut q = CalendarQueue::with_horizon(64);
        q.push(1_000_000, EventKind::TrafficArrival); // far beyond the wheel
        q.push(3, EventKind::TrafficArrival);
        q.push(999_999, EventKind::TrafficArrival);
        assert!(q.overflow.len() >= 2, "far-future events use the overflow");
        assert_eq!(q.pop().unwrap().time, 3);
        assert_eq!(q.pop().unwrap().time, 999_999);
        assert_eq!(q.pop().unwrap().time, 1_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_overflow_ties_with_wheel_resolve_by_seq() {
        let mut q = CalendarQueue::with_horizon(64);
        // Pushed first while out of window: ends up in overflow with seq 0.
        q.push(100, EventKind::NicTryInject { node: NodeId(1) });
        // Advance the cursor so time 100 is now within the wheel window.
        q.push(60, EventKind::TrafficArrival);
        q.pop();
        // Pushed second, lands in the wheel at the same time: seq 2.
        q.push(100, EventKind::NicTryInject { node: NodeId(2) });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NicTryInject { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2], "overflow-vs-wheel tie breaks by seq");
    }

    #[test]
    fn calendar_wheel_wraps_around() {
        let mut q = CalendarQueue::with_horizon(64);
        // Walk the cursor across several full wheel rotations.
        let mut expected = Vec::new();
        for step in 0..300u64 {
            let t = step * 13; // co-prime with 64: hits every slot
            q.push(t, EventKind::TrafficArrival);
            expected.push(t);
            assert_eq!(q.pop().unwrap().time, t);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_interleaved_pushes_at_the_popped_time() {
        // Events scheduled *at* the current time while draining it must pop
        // after already-queued same-time events (seq order), like the heap.
        let mut heap: Box<dyn Scheduler> = Box::new(BinaryHeapScheduler::new());
        let mut cal: Box<dyn Scheduler> = Box::new(CalendarQueue::with_horizon(64));
        for q in [&mut heap, &mut cal] {
            q.push(5, EventKind::NicTryInject { node: NodeId(1) });
            q.push(5, EventKind::NicTryInject { node: NodeId(2) });
            let first = q.pop().unwrap();
            assert_eq!(first.time, 5);
            // Dispatch of the first event schedules another one at t=5.
            q.push(5, EventKind::NicTryInject { node: NodeId(3) });
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::NicTryInject { node } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![2, 3]);
        }
    }

    #[test]
    fn calendar_skips_long_empty_stretches() {
        let mut q = CalendarQueue::with_horizon(1024);
        // Two events at opposite ends of the wheel with nothing in between:
        // the bitmap scan must jump the gap, not walk it bucket by bucket
        // (correctness check here; the speed is what the benches measure).
        q.push(1, EventKind::TrafficArrival);
        q.push(1_020, EventKind::TrafficArrival);
        assert_eq!(q.pop().unwrap().time, 1);
        assert_eq!(q.peek_time(), Some(1_020));
        assert_eq!(q.pop().unwrap().time, 1_020);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn event_queue_selects_scheduler_from_config() {
        let mut cfg = EngineConfig::default();
        assert!(matches!(
            EventQueue::for_config(&cfg).kind(),
            SchedulerKind::Calendar
        ));
        cfg.scheduler = SchedulerKind::BinaryHeap;
        assert!(matches!(
            EventQueue::for_config(&cfg).kind(),
            SchedulerKind::BinaryHeap
        ));
    }

    #[test]
    fn random_workload_matches_heap_order_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::with_horizon(256);
        // Interleave batches of pushes (times never behind the last pop,
        // like the engine) with drains, across several wheel rotations.
        let mut now: SimTime = 0;
        for round in 0..200 {
            for _ in 0..rng.gen_range(1..20) {
                let t = now + rng.gen_range(0..2_000u64);
                let node = NodeId(rng.gen_range(0..1_000u32));
                heap.push(t, EventKind::NicTryInject { node });
                cal.push(t, EventKind::NicTryInject { node });
            }
            for _ in 0..rng.gen_range(1..15) {
                let (h, c) = (heap.pop(), cal.pop());
                match (h, c) {
                    (None, None) => break,
                    (Some(h), Some(c)) => {
                        assert_eq!((h.time, h.seq), (c.time, c.seq), "round {round}");
                        now = h.time;
                    }
                    other => panic!("schedulers disagree on emptiness: {other:?}"),
                }
            }
        }
        // Drain whatever is left.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(h), Some(c)) => assert_eq!((h.time, h.seq), (c.time, c.seq)),
                other => panic!("schedulers disagree on emptiness: {other:?}"),
            }
        }
    }
}
