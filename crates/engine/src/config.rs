//! Engine configuration: link/router timing, buffer sizes and packet size.
//!
//! Defaults follow Section 5.1 of the paper: 128 B single-flit packets,
//! 20-packet VC buffers, 4 GB/s links, 30 ns local and 300 ns global link
//! latency (a 1:10 ratio).

use crate::time::SimTime;
use dragonfly_topology::paths::HopKind;
use serde::{Deserialize, Serialize};

/// Which event-scheduler implementation drives the simulation loop.
///
/// Both schedulers pop the exact same deterministic `(time, seq)` order, so
/// all simulation outputs are bit-for-bit identical either way; only the
/// wall-clock speed differs. See [`crate::event`] for the designs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Two-level calendar/bucket queue — the fast default.
    #[default]
    Calendar,
    /// The classic `BinaryHeap` min-queue, kept as the reference
    /// implementation for differential testing and A/B benchmarking.
    BinaryHeap,
}

/// How many conservative-parallel shards execute one simulation.
///
/// The engine partitions routers by locality domain (Dragonfly group,
/// fat-tree pod, HyperX row) into shards; each shard runs its own
/// calendar queue and packet arena, and shards synchronise on a lookahead
/// window equal to the topology's minimum cross-domain link latency (see
/// [`crate::sync`]). Because events are ordered by a content-derived key
/// rather than push order, **every shard count produces bit-for-bit
/// identical simulation output** — this knob only trades wall-clock speed
/// against thread usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardKind {
    /// One shard, no threads: the classic sequential event loop.
    #[default]
    Single,
    /// Exactly `n` shards (clamped to the number of groups).
    Fixed(usize),
    /// One shard per available CPU, capped at the number of groups.
    Auto,
}

impl ShardKind {
    /// The concrete shard count for a system with `num_domains` locality
    /// domains and a conservative lookahead of `lookahead_ns` (the
    /// topology's minimum cross-domain link latency).
    ///
    /// A zero lookahead leaves no conservative window, so sharding
    /// silently degrades to a single shard (results are identical either
    /// way; only parallelism is lost).
    pub fn resolve(self, num_domains: usize, lookahead_ns: SimTime) -> usize {
        if lookahead_ns == 0 {
            return 1;
        }
        let requested = match self {
            ShardKind::Single => 1,
            ShardKind::Fixed(n) => n,
            ShardKind::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        requested.clamp(1, num_domains.max(1))
    }
}

/// Timing, sizing and flow-control parameters of the simulated hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Packet (single flit) size in bytes. Paper: 128 B.
    pub packet_bytes: u32,
    /// Link bandwidth in bytes per nanosecond (4.0 = 4 GB/s).
    pub link_bytes_per_ns: f64,
    /// Local (intra-group) link latency in ns. Paper: 30 ns.
    pub local_latency_ns: SimTime,
    /// Global (inter-group) link latency in ns. Paper: 300 ns.
    pub global_latency_ns: SimTime,
    /// Node-to-router (host) link latency in ns.
    pub host_latency_ns: SimTime,
    /// Router traversal (pipeline) latency in ns charged between a packet's
    /// arrival at an input buffer and its switch traversal.
    pub router_latency_ns: SimTime,
    /// Input-buffer capacity per (port, VC) in packets. Paper: 20.
    pub vc_buffer_packets: usize,
    /// Output-queue capacity per (port, VC) in packets.
    pub output_queue_packets: usize,
    /// Number of virtual channels. This is dictated by the routing
    /// algorithm (MIN 2, VALg 3, VALn/UGALn 4, PAR 5, Q-adaptive 5).
    pub num_vcs: usize,
    /// Event-scheduler implementation (identical results either way; the
    /// calendar queue is faster and the default).
    #[serde(default)]
    pub scheduler: SchedulerKind,
    /// Conservative-parallel shard count (identical results for every
    /// value; `Single` is the sequential default).
    #[serde(default)]
    pub shards: ShardKind,
    /// Overlapped-window pipelined execution of the sharded engine
    /// (default `true`). With pipelining on, each lookahead window is split
    /// into half-window *compute* and *exchange* phases over
    /// double-buffered mailboxes, and idle shards steal whole ready
    /// windows from slower ones — see [`crate::sync`]. Results are
    /// **bit-for-bit identical** either way (pinned by the
    /// `pipeline_differential` tests); `false` selects the PR 3 lockstep
    /// barrier as the reference execution mode. Ignored when `shards`
    /// resolves to 1 or the lookahead is under 2 ns.
    #[serde(default = "default_pipeline")]
    pub pipeline: bool,
    /// How often a NIC retransmits a closed-loop workload message whose
    /// packet was dropped by a fault before giving up. `0` disables
    /// retransmission (every drop is final).
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// Base retransmission backoff in ns; retry `k` (1-based) waits
    /// `retransmit_backoff_ns << (k - 1)` after the drop notice
    /// (deterministic exponential backoff, no jitter).
    #[serde(default = "default_retransmit_backoff_ns")]
    pub retransmit_backoff_ns: SimTime,
    /// Hop budget: a packet still in the fabric after this many hops is
    /// dropped (breaks routing livelock around faulted regions).
    #[serde(default = "default_ttl_hops")]
    pub ttl_hops: u8,
    /// Row-count threshold above which learning agents switch their
    /// Q-value storage from a dense table to the lazily materialised
    /// paged table (`qadaptive_core::PagedQTable`). Paged and dense
    /// storage are observationally identical — same values, same argmin
    /// tie-breaks, same RNG consumption — so this knob only trades a
    /// small per-access indirection against memory that no longer grows
    /// with system size. The default keeps every paper-scale system
    /// (≤ a few thousand table rows) dense and pages the 100k-node-class
    /// systems.
    #[serde(default = "default_qtable_page_rows_threshold")]
    pub qtable_page_rows_threshold: usize,
}

/// Serde default for [`EngineConfig::pipeline`]: scenario files that
/// predate the field get the (result-identical) pipelined engine.
fn default_pipeline() -> bool {
    true
}

/// Serde default for [`EngineConfig::max_retries`].
fn default_max_retries() -> u32 {
    3
}

/// Serde default for [`EngineConfig::retransmit_backoff_ns`].
fn default_retransmit_backoff_ns() -> SimTime {
    2_000
}

/// Serde default for [`EngineConfig::ttl_hops`]: far above any legal
/// route of the shipped topologies, so fault-free runs never hit it.
fn default_ttl_hops() -> u8 {
    64
}

/// Serde default for [`EngineConfig::qtable_page_rows_threshold`]: above
/// every paper-scale table (1,056-node two-level: 132 rows; 2,550-node
/// Q-routing: 510 rows), below the 100k-node-class tables (≥ 4,624 rows).
fn default_qtable_page_rows_threshold() -> usize {
    4_096
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            packet_bytes: 128,
            link_bytes_per_ns: 4.0,
            local_latency_ns: 30,
            global_latency_ns: 300,
            host_latency_ns: 10,
            router_latency_ns: 100,
            vc_buffer_packets: 20,
            output_queue_packets: 20,
            num_vcs: 5,
            scheduler: SchedulerKind::default(),
            shards: ShardKind::default(),
            pipeline: default_pipeline(),
            max_retries: default_max_retries(),
            retransmit_backoff_ns: default_retransmit_backoff_ns(),
            ttl_hops: default_ttl_hops(),
            qtable_page_rows_threshold: default_qtable_page_rows_threshold(),
        }
    }
}

impl EngineConfig {
    /// The paper's configuration with a routing-algorithm specific number
    /// of virtual channels.
    pub fn paper(num_vcs: usize) -> Self {
        Self {
            num_vcs: num_vcs.max(1),
            ..Self::default()
        }
    }

    /// Serialisation time of one packet over a link, in ns.
    #[inline]
    pub fn serialization_ns(&self) -> SimTime {
        ((self.packet_bytes as f64) / self.link_bytes_per_ns).ceil() as SimTime
    }

    /// Per-node injection bandwidth in bytes per ns (used to convert an
    /// offered load fraction into a packet inter-arrival interval).
    #[inline]
    pub fn injection_bytes_per_ns(&self) -> f64 {
        self.link_bytes_per_ns
    }

    /// Latency of a link of the given kind, in ns.
    #[inline]
    pub fn link_latency_ns(&self, kind: HopKind) -> SimTime {
        match kind {
            HopKind::Local => self.local_latency_ns,
            HopKind::Global => self.global_latency_ns,
        }
    }

    /// Time to traverse one router-to-router hop without contention:
    /// router pipeline + serialisation + link latency.
    #[inline]
    pub fn hop_ns(&self, kind: HopKind) -> SimTime {
        self.router_latency_ns + self.serialization_ns() + self.link_latency_ns(kind)
    }

    /// Time for the final ejection from the destination router to the node:
    /// router pipeline + serialisation + host link latency.
    #[inline]
    pub fn ejection_ns(&self) -> SimTime {
        self.router_latency_ns + self.serialization_ns() + self.host_latency_ns
    }

    /// Time for the initial injection from a node into its router.
    #[inline]
    pub fn injection_ns(&self) -> SimTime {
        self.serialization_ns() + self.host_latency_ns
    }

    /// The theoretical congestion-free delivery time along a route with the
    /// given hop kinds (source router to destination router), **excluding**
    /// the initial injection but **including** the final ejection.
    ///
    /// This is the quantity the paper uses to initialise Q-values:
    /// "Q-values are initialized to the theoretical packet delivery time
    /// without any congestion through a minimal routing path."
    pub fn theoretical_delivery_ns(&self, hops: &[HopKind]) -> SimTime {
        hops.iter().map(|k| self.hop_ns(*k)).sum::<SimTime>() + self.ejection_ns()
    }

    /// Theoretical congestion-free end-to-end latency (node to node) along
    /// a minimal route with the given hop kinds.
    pub fn theoretical_latency_ns(&self, hops: &[HopKind]) -> SimTime {
        self.injection_ns() + self.theoretical_delivery_ns(hops)
    }

    /// Inter-arrival interval (ns) between packets generated by one node at
    /// a given offered load in `(0, 1]`.
    pub fn interarrival_ns(&self, offered_load: f64) -> f64 {
        assert!(offered_load > 0.0, "offered load must be positive");
        (self.packet_bytes as f64) / (self.injection_bytes_per_ns() * offered_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_serialization_is_32ns() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.serialization_ns(), 32);
    }

    #[test]
    fn link_latencies_keep_the_1_to_10_ratio() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.link_latency_ns(HopKind::Local), 30);
        assert_eq!(cfg.link_latency_ns(HopKind::Global), 300);
        assert_eq!(cfg.global_latency_ns, 10 * cfg.local_latency_ns);
    }

    #[test]
    fn theoretical_times_compose() {
        let cfg = EngineConfig::default();
        // A full minimal path: local + global + local.
        let hops = [HopKind::Local, HopKind::Global, HopKind::Local];
        let per_hop: SimTime = cfg.hop_ns(HopKind::Local) * 2 + cfg.hop_ns(HopKind::Global);
        assert_eq!(
            cfg.theoretical_delivery_ns(&hops),
            per_hop + cfg.ejection_ns()
        );
        assert_eq!(
            cfg.theoretical_latency_ns(&hops),
            cfg.injection_ns() + per_hop + cfg.ejection_ns()
        );
        // The intra-router-pair path (src router == dst router).
        assert_eq!(cfg.theoretical_delivery_ns(&[]), cfg.ejection_ns());
    }

    #[test]
    fn interarrival_scales_inversely_with_load() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.interarrival_ns(1.0), 32.0);
        assert_eq!(cfg.interarrival_ns(0.5), 64.0);
        assert!((cfg.interarrival_ns(0.8) - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "offered load must be positive")]
    fn zero_load_panics() {
        EngineConfig::default().interarrival_ns(0.0);
    }

    #[test]
    fn paper_constructor_sets_vcs() {
        let cfg = EngineConfig::paper(3);
        assert_eq!(cfg.num_vcs, 3);
        assert_eq!(cfg.vc_buffer_packets, 20);
        assert_eq!(cfg.shards, ShardKind::Single);
        assert!(cfg.pipeline, "pipelined execution is the default");
    }

    #[test]
    fn pipeline_defaults_to_true_for_pre_pipeline_configs() {
        // A serialized EngineConfig from before the field existed must
        // deserialize with pipelining on (the result-identical default).
        let legacy = r#"{"packet_bytes":128,"link_bytes_per_ns":4.0,
            "local_latency_ns":30,"global_latency_ns":300,"host_latency_ns":10,
            "router_latency_ns":100,"vc_buffer_packets":20,
            "output_queue_packets":20,"num_vcs":5}"#;
        let parsed: EngineConfig = serde_json::from_str(legacy).unwrap();
        assert!(parsed.pipeline);
        assert_eq!(parsed, EngineConfig::default());
    }

    #[test]
    fn resilience_fields_default_for_pre_fault_configs() {
        // Configs serialized before the fault/retransmit fields existed
        // must parse with the documented defaults.
        let legacy = r#"{"packet_bytes":128,"link_bytes_per_ns":4.0,
            "local_latency_ns":30,"global_latency_ns":300,"host_latency_ns":10,
            "router_latency_ns":100,"vc_buffer_packets":20,
            "output_queue_packets":20,"num_vcs":5}"#;
        let parsed: EngineConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.max_retries, 3);
        assert_eq!(parsed.retransmit_backoff_ns, 2_000);
        assert_eq!(parsed.ttl_hops, 64);
        assert_eq!(parsed.qtable_page_rows_threshold, 4_096);
    }

    #[test]
    fn shard_kind_resolution_clamps_and_gates() {
        // Fixed counts clamp to [1, groups].
        assert_eq!(ShardKind::Fixed(4).resolve(9, 300), 4);
        assert_eq!(ShardKind::Fixed(0).resolve(9, 300), 1);
        assert_eq!(ShardKind::Fixed(100).resolve(9, 300), 9);
        assert_eq!(ShardKind::Single.resolve(9, 300), 1);
        // Auto never exceeds the group count.
        assert!(ShardKind::Auto.resolve(2, 300) <= 2);
        assert!(ShardKind::Auto.resolve(64, 300) >= 1);
        // Zero global latency leaves no lookahead: sequential fallback.
        assert_eq!(ShardKind::Fixed(4).resolve(9, 0), 1);
    }
}
