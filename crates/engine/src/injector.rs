//! The traffic-injection interface.
//!
//! The engine pulls a time-ordered stream of `(time, source node,
//! destination node)` triples from a [`TrafficInjector`]. How those triples
//! are produced — which traffic pattern, which offered load, whether the
//! load changes over time — is entirely up to the implementation
//! (`dragonfly-sim` provides one that adapts the `dragonfly-traffic`
//! patterns).

use crate::time::SimTime;
use dragonfly_topology::ids::NodeId;
use serde::{Deserialize, Serialize};

/// One message generation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Injection {
    /// Generation time at the source node.
    pub time: SimTime,
    /// Generating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A time-ordered source of traffic.
///
/// Implementations must return injections with non-decreasing `time`.
/// Returning `None` ends traffic generation (the simulation can still keep
/// running to drain in-flight packets).
pub trait TrafficInjector: Send {
    /// The next message to generate, or `None` if the workload is finished.
    fn next_injection(&mut self) -> Option<Injection>;

    /// Capture the injector's mutable state for a checkpoint (see
    /// [`crate::checkpoint`]). Stateless injectors keep the default.
    fn save_state(&self) -> crate::checkpoint::InjectorCheckpoint {
        crate::checkpoint::InjectorCheckpoint::default()
    }

    /// Restore state captured by [`TrafficInjector::save_state`] on an
    /// identically constructed injector.
    fn load_state(&mut self, _state: &crate::checkpoint::InjectorCheckpoint) {}
}

/// A trivial injector over a pre-computed list of injections, useful for
/// tests and micro-benchmarks.
#[derive(Debug, Clone)]
pub struct ScriptedInjector {
    script: Vec<Injection>,
    next: usize,
}

impl ScriptedInjector {
    /// Build from a list of injections; the list is sorted by time.
    pub fn new(mut script: Vec<Injection>) -> Self {
        script.sort_by_key(|i| i.time);
        Self { script, next: 0 }
    }

    /// Number of injections left to emit.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.next
    }
}

impl TrafficInjector for ScriptedInjector {
    fn next_injection(&mut self) -> Option<Injection> {
        let i = self.script.get(self.next).copied();
        if i.is_some() {
            self.next += 1;
        }
        i
    }

    fn save_state(&self) -> crate::checkpoint::InjectorCheckpoint {
        crate::checkpoint::InjectorCheckpoint {
            counters: vec![self.next as u64],
            ..Default::default()
        }
    }

    fn load_state(&mut self, state: &crate::checkpoint::InjectorCheckpoint) {
        self.next = state.counters.first().copied().unwrap_or(0) as usize;
    }
}

/// An injector that produces no traffic at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyInjector;

impl TrafficInjector for EmptyInjector {
    fn next_injection(&mut self) -> Option<Injection> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_injector_sorts_and_drains() {
        let mut inj = ScriptedInjector::new(vec![
            Injection {
                time: 20,
                src: NodeId(0),
                dst: NodeId(1),
            },
            Injection {
                time: 10,
                src: NodeId(2),
                dst: NodeId(3),
            },
        ]);
        assert_eq!(inj.remaining(), 2);
        assert_eq!(inj.next_injection().unwrap().time, 10);
        assert_eq!(inj.next_injection().unwrap().time, 20);
        assert!(inj.next_injection().is_none());
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn empty_injector_produces_nothing() {
        let mut inj = EmptyInjector;
        assert!(inj.next_injection().is_none());
    }
}
