//! The simulation coordinator: owns the shards, feeds them traffic and
//! paces the conservative-parallel window loop.
//!
//! See the crate-level documentation for the model and the sharding /
//! determinism contract. With `shards = Single` (the default) the engine
//! degenerates to the classic sequential event loop — same code path,
//! no threads, no barriers. The engine is generic over the
//! [`ShardObserver`] so that callers can retrieve their metric collectors
//! by value after the run.

use crate::arena::PacketArena;
use crate::config::EngineConfig;
use crate::injector::{Injection, TrafficInjector};
use crate::observer::ShardObserver;
use crate::routing::RoutingAlgorithm;
use crate::shard::Shard;
use crate::sync::{MailGrid, QueuedInjection, ShardPlan, WindowSync, NO_EVENT};
use crate::time::SimTime;
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::Dragonfly;
use std::sync::atomic::Ordering;

/// Drain progress of one shard (see [`EngineStats::shards`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardDrain {
    /// Messages generated at this shard's NICs.
    pub generated: u64,
    /// Packets delivered to this shard's nodes.
    pub delivered: u64,
    /// Live packets resident in this shard's arena (NIC source queues,
    /// router buffers and in-flight intra-shard link traversals).
    pub resident: u64,
    /// Packets currently travelling *towards* this shard inside
    /// cross-shard mailboxes (counted by the engine, since mailboxes live
    /// between shards).
    pub inbound_mail: u64,
    /// Events processed by this shard.
    pub events: u64,
}

/// Aggregate counters maintained by the engine itself (independent of the
/// observer, so they are always available).
///
/// `shards` reports per-shard drain progress: during `run_to_drain` a
/// packet can be resident in a shard's arena *or* sitting in a cross-shard
/// mailbox between windows, and `sum(resident) + sum(inbound_mail)` always
/// equals [`EngineStats::outstanding`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages generated at NICs.
    pub generated: u64,
    /// Packets injected into the router fabric.
    pub injected: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Events processed so far.
    pub events: u64,
    /// Per-shard drain progress, in shard order (length = shard count).
    pub shards: Vec<ShardDrain>,
}

impl EngineStats {
    /// Packets generated but not yet delivered (in NIC queues, in the
    /// fabric, or in cross-shard mailboxes).
    pub fn outstanding(&self) -> u64 {
        self.generated - self.delivered
    }

    /// Packets currently travelling between shards in mailboxes.
    pub fn in_mailboxes(&self) -> u64 {
        self.shards.iter().map(|s| s.inbound_mail).sum()
    }
}

/// The flit-level Dragonfly simulator.
pub struct Engine<O: ShardObserver> {
    topo: Dragonfly,
    cfg: EngineConfig,
    plan: ShardPlan,
    shards: Vec<Shard<O>>,
    mail: MailGrid,
    injector: Box<dyn TrafficInjector>,
    /// The next injection pulled from the injector but not yet distributed
    /// (the one-element lookahead that keeps the stream lazy).
    pending_injection: Option<Injection>,
    next_packet_id: u64,
    now: SimTime,
}

impl<O: ShardObserver> Engine<O> {
    /// Build a simulator: one router state and one routing agent per router,
    /// one NIC per node, partitioned into `cfg.shards` conservative-parallel
    /// shards (the shard count never changes simulation results).
    pub fn new(
        topo: Dragonfly,
        cfg: EngineConfig,
        algorithm: &dyn RoutingAlgorithm,
        mut injector: Box<dyn TrafficInjector>,
        observer: O,
        seed: u64,
    ) -> Self {
        assert_eq!(
            cfg.num_vcs,
            algorithm.num_vcs(),
            "EngineConfig::num_vcs must match the routing algorithm's VC requirement"
        );
        let num_shards = cfg.shards.resolve(topo.num_groups(), cfg.global_latency_ns);
        let plan = ShardPlan::new(&topo, num_shards, cfg.global_latency_ns);
        let shards: Vec<Shard<O>> = (0..plan.num_shards())
            .map(|i| {
                Shard::new(
                    &topo,
                    &cfg,
                    algorithm,
                    observer.clone(),
                    seed,
                    plan.clone(),
                    i,
                )
            })
            .collect();
        let mail = MailGrid::new(plan.num_shards());
        let pending_injection = injector.next_injection();
        Self {
            topo,
            cfg,
            plan,
            shards,
            mail,
            injector,
            pending_injection,
            next_packet_id: 0,
            now: 0,
        }
    }

    // ------------------------------------------------------------------
    // Public accessors
    // ------------------------------------------------------------------

    /// Current simulation time (ns).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Dragonfly {
        &self.topo
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The number of conservative-parallel shards actually running.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Aggregate counters, including per-shard drain progress.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let drain = ShardDrain {
                generated: shard.generated,
                delivered: shard.delivered,
                resident: shard.arena().live_count() as u64,
                inbound_mail: self.mail.packets_bound_for(i),
                events: shard.events_processed(),
            };
            stats.generated += shard.generated;
            stats.injected += shard.injected;
            stats.delivered += shard.delivered;
            stats.events += drain.events;
            stats.shards.push(drain);
        }
        stats
    }

    /// Borrow the observer (metric collector). Only valid on single-shard
    /// engines — a sharded engine has one observer per shard; use
    /// [`Engine::merged_observer`] or [`Engine::into_observer`] instead.
    pub fn observer(&self) -> &O {
        assert_eq!(
            self.shards.len(),
            1,
            "observer() needs a single-shard engine; use merged_observer()"
        );
        self.shards[0].observer()
    }

    /// Mutably borrow the observer (single-shard engines only, see
    /// [`Engine::observer`]).
    pub fn observer_mut(&mut self) -> &mut O {
        assert_eq!(
            self.shards.len(),
            1,
            "observer_mut() needs a single-shard engine; use merged_observer()"
        );
        self.shards[0].observer_mut()
    }

    /// Clone-and-merge the per-shard observers into one aggregate view
    /// (shards are absorbed in ascending shard order, so the result is
    /// deterministic and identical to a single-shard run for observers
    /// that accumulate order-independently).
    pub fn merged_observer(&self) -> O {
        let mut merged = self.shards[0].observer().clone();
        for shard in &self.shards[1..] {
            merged.absorb(shard.observer().clone());
        }
        merged
    }

    /// Consume the engine and return the merged observer.
    pub fn into_observer(self) -> O {
        let mut shards = self.shards.into_iter();
        let mut merged = shards.next().expect("at least one shard").into_observer();
        for shard in shards {
            merged.absorb(shard.into_observer());
        }
        merged
    }

    /// Borrow the routing agent of one router (useful for inspecting
    /// learned state in tests and analyses).
    pub fn agent(&self, router: RouterId) -> &dyn crate::routing::RouterAgent {
        self.shards[self.plan.shard_of_router(router)].agent(router)
    }

    /// Total packets currently buffered inside the router fabric.
    pub fn fabric_occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.fabric_occupancy()).sum()
    }

    /// Total packets waiting in NIC source queues.
    pub fn nic_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.nic_backlog()).sum()
    }

    /// The packet arena (single-shard engines only; sharded engines have
    /// one arena per shard — see [`Engine::arena_live_counts`]).
    pub fn arena(&self) -> &PacketArena {
        assert_eq!(
            self.shards.len(),
            1,
            "arena() needs a single-shard engine; use arena_live_counts()"
        );
        self.shards[0].arena()
    }

    /// Live packet count of every shard's arena, in shard order. Together
    /// with [`EngineStats::in_mailboxes`] this accounts for every
    /// outstanding packet: `sum(arena_live_counts) + in_mailboxes ==
    /// stats().outstanding()`.
    pub fn arena_live_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.arena().live_count()).collect()
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run the simulation until (and including) simulated time `t_end`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let processed = self.run_events(t_end);
        self.now = self.now.max(t_end);
        processed
    }

    /// Run until there are no more events (traffic exhausted and all packets
    /// drained) or until `t_max` is reached. Returns the finishing time and
    /// the number of events processed by this call.
    pub fn run_to_drain(&mut self, t_max: SimTime) -> (SimTime, u64) {
        let processed = self.run_events(t_max);
        (self.now, processed)
    }

    /// Process every event with `time <= t_cap`, across all shards.
    fn run_events(&mut self, t_cap: SimTime) -> u64 {
        // A previous capped run may have left cross-shard messages (firing
        // beyond its cap) in the mail grid: deliver them into the owning
        // queues so the window planning below sees everything.
        for i in 0..self.shards.len() {
            let msgs = self.mail.collect_for(i);
            self.shards[i].deliver(msgs);
        }
        let processed = if self.shards.len() == 1 {
            self.run_sequential(t_cap)
        } else {
            self.run_threaded(t_cap)
        };
        let shard_now = self.shards.iter().map(|s| s.now()).max().unwrap_or(0);
        self.now = self.now.max(shard_now);
        processed
    }

    /// The sequential specialisation: one shard, no threads, no mailboxes
    /// — but the same windowed feed of injections, so results are
    /// trivially identical to the threaded path.
    fn run_sequential(&mut self, t_cap: SimTime) -> u64 {
        // Without cross-shard traffic the window length is only a traffic
        // feed granularity; keep it coarse enough to amortise the loop.
        let window = self.plan.lookahead().max(1024);
        let mut processed = 0;
        loop {
            let next_local = self.shards[0].next_local_time().unwrap_or(NO_EVENT);
            let next_injection = self
                .pending_injection
                .as_ref()
                .map(|i| i.time)
                .unwrap_or(NO_EVENT);
            let start = next_local.min(next_injection);
            if start == NO_EVENT || start > t_cap {
                break;
            }
            let end_incl = start.saturating_add(window - 1).min(t_cap);
            self.distribute_sequential(end_incl);
            processed += self.shards[0].run_window(end_incl);
        }
        processed
    }

    /// Hand every injection with `time <= end_incl` to shard 0.
    fn distribute_sequential(&mut self, end_incl: SimTime) {
        while let Some(injection) = self.pending_injection {
            if injection.time > end_incl {
                break;
            }
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            self.shards[0].accept_injection(QueuedInjection {
                time: injection.time,
                src: injection.src,
                dst: injection.dst,
                id,
            });
            self.pending_injection = self.injector.next_injection();
        }
    }

    /// The conservative-parallel path: one thread per shard, lockstep
    /// windows of one lookahead each, shard 0's thread doubling as the
    /// leader that plans windows and distributes injections between the
    /// two barriers.
    fn run_threaded(&mut self, t_cap: SimTime) -> u64 {
        let Self {
            topo,
            plan,
            shards,
            mail,
            injector,
            pending_injection,
            next_packet_id,
            ..
        } = self;
        let lookahead = plan.lookahead();
        let sync = WindowSync::new(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            sync.next_hint[i].store(
                shard.next_local_time().unwrap_or(NO_EVENT),
                Ordering::Release,
            );
        }
        let sync = &sync;
        let mail: &MailGrid = mail;
        let plan: &ShardPlan = plan;
        let topo: &Dragonfly = topo;

        // Leader-only traffic distribution state, moved into shard 0's
        // thread.
        struct Feeder<'a> {
            injector: &'a mut Box<dyn TrafficInjector>,
            pending: &'a mut Option<Injection>,
            next_id: &'a mut u64,
        }
        let mut feeder = Some(Feeder {
            injector,
            pending: pending_injection,
            next_id: next_packet_id,
        });

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (i, shard) in shards.iter_mut().enumerate() {
                let mut feeder = if i == 0 { feeder.take() } else { None };
                handles.push(scope.spawn(move |_| {
                    let mut processed = 0u64;
                    loop {
                        // Phase 1: everyone arrived; the previous window's
                        // outboxes are all in the mail grid.
                        sync.pre.wait();
                        if let Some(f) = feeder.as_mut() {
                            // Leader: plan the next window. The hints cover
                            // every queued event and every in-flight
                            // message; the pending injection is the only
                            // source of work the shards cannot see.
                            let mut start = sync.min_hint();
                            if let Some(p) = f.pending.as_ref() {
                                start = start.min(p.time);
                            }
                            if start == NO_EVENT || start > t_cap {
                                sync.done.store(true, Ordering::Release);
                            } else {
                                let end_incl = start.saturating_add(lookahead - 1).min(t_cap);
                                while let Some(injection) = *f.pending {
                                    if injection.time > end_incl {
                                        break;
                                    }
                                    let id = *f.next_id;
                                    *f.next_id += 1;
                                    let owner =
                                        plan.shard_of_router(topo.router_of_node(injection.src));
                                    sync.injections[owner].lock().push_back(QueuedInjection {
                                        time: injection.time,
                                        src: injection.src,
                                        dst: injection.dst,
                                        id,
                                    });
                                    *f.pending = f.injector.next_injection();
                                }
                                sync.window_end.store(end_incl, Ordering::Release);
                                sync.done.store(false, Ordering::Release);
                            }
                        }
                        // Phase 2: the window (or `done`) is published.
                        sync.post.wait();
                        if sync.done.load(Ordering::Acquire) {
                            break;
                        }
                        let end_incl = sync.window_end.load(Ordering::Acquire);
                        {
                            let mut inbox = sync.injections[i].lock();
                            while let Some(q) = inbox.pop_front() {
                                shard.accept_injection(q);
                            }
                        }
                        shard.deliver(mail.collect_for(i));
                        processed += shard.run_window(end_incl);
                        shard.flush_outboxes(mail);
                        let hint = shard
                            .next_local_time()
                            .unwrap_or(NO_EVENT)
                            .min(shard.min_sent());
                        sync.next_hint[i].store(hint, Ordering::Release);
                    }
                    processed
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .sum::<u64>()
        })
        .expect("shard scope panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardKind;
    use crate::injector::{Injection, ScriptedInjector};
    use crate::observer::CountingObserver;
    use crate::testing::MinimalTestRouting;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;

    fn run_scripted(injections: Vec<Injection>, t_end: SimTime) -> (EngineStats, CountingObserver) {
        run_scripted_sharded(injections, t_end, ShardKind::Single)
    }

    fn run_scripted_sharded(
        injections: Vec<Injection>,
        t_end: SimTime,
        shards: ShardKind,
    ) -> (EngineStats, CountingObserver) {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(algo.num_vcs());
        cfg.shards = shards;
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(injections)),
            CountingObserver::default(),
            42,
        );
        engine.run_to_drain(t_end);
        (engine.stats(), engine.merged_observer())
    }

    #[test]
    fn single_packet_same_router_is_delivered() {
        // Nodes 0 and 1 share router 0 in the tiny config (p = 2).
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(1),
            }],
            1_000_000,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(obs.delivered, 1);
        assert_eq!(
            obs.total_hops, 0,
            "same-router delivery takes no fabric hop"
        );
    }

    #[test]
    fn single_packet_cross_group_takes_at_most_three_hops() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        // Pick a destination in a different group from node 0.
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(stats.delivered, 1);
        assert!(obs.total_hops >= 1 && obs.total_hops <= 3);
    }

    #[test]
    fn zero_load_latency_matches_theory() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(algo.num_vcs());
        let kinds =
            topo.minimal_hop_kinds(topo.router_of_node(NodeId(0)), topo.router_of_node(dst));
        let expected = cfg.theoretical_latency_ns(&kinds);
        let (_stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(obs.delivered, 1);
        assert_eq!(obs.total_latency_ns as u64, expected);
    }

    #[test]
    fn all_packets_eventually_delivered_under_light_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let n = topo.num_nodes();
        let mut script = Vec::new();
        for i in 0..2_000u64 {
            let src = NodeId::from_index(rng.gen_range(0..n));
            let mut dst = NodeId::from_index(rng.gen_range(0..n));
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..n));
            }
            // roughly 20% offered load spread over all nodes
            script.push(Injection {
                time: i * 80,
                src,
                dst,
            });
        }
        let (stats, obs) = run_scripted(script, 50_000_000);
        assert_eq!(stats.generated, 2_000);
        assert_eq!(
            stats.delivered, 2_000,
            "lossless network must deliver everything"
        );
        assert!(obs.mean_hops() <= 3.0 + 1e-9);
        assert!(obs.mean_latency_ns() > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(9);
        let script: Vec<Injection> = (0..500u64)
            .map(|i| Injection {
                time: i * 40,
                src: NodeId::from_index(rng.gen_range(0..n)),
                dst: NodeId::from_index(rng.gen_range(0..n)),
            })
            .collect();
        let (s1, o1) = run_scripted(script.clone(), 10_000_000);
        let (s2, o2) = run_scripted(script, 10_000_000);
        assert_eq!(s1, s2);
        assert_eq!(o1.total_latency_ns, o2.total_latency_ns);
        assert_eq!(o1.total_hops, o2.total_hops);
    }

    #[test]
    fn sharded_run_matches_single_shard_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(17);
        let script: Vec<Injection> = (0..1_500u64)
            .map(|i| Injection {
                time: i * 30,
                src: NodeId::from_index(rng.gen_range(0..n)),
                dst: NodeId::from_index(rng.gen_range(0..n)),
            })
            .collect();
        let (s1, o1) = run_scripted_sharded(script.clone(), 20_000_000, ShardKind::Single);
        let (s3, o3) = run_scripted_sharded(script, 20_000_000, ShardKind::Fixed(3));
        assert_eq!(s1.generated, s3.generated);
        assert_eq!(s1.delivered, s3.delivered);
        assert_eq!(s1.events, s3.events, "event counts must match exactly");
        assert_eq!(o1.total_latency_ns, o3.total_latency_ns);
        assert_eq!(o1.total_hops, o3.total_hops);
    }

    #[test]
    fn stats_outstanding_counts_undelivered() {
        let (stats, _obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(70),
            }],
            // Stop the clock before the packet can possibly arrive.
            10,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.outstanding(), 1);
        // The per-shard drain view accounts for the same packet.
        let resident: u64 = stats.shards.iter().map(|s| s.resident).sum();
        assert_eq!(resident + stats.in_mailboxes(), stats.outstanding());
    }
}
