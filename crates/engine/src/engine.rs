//! The event-driven simulation loop.
//!
//! See the crate-level documentation for the model. The engine is generic
//! over the [`SimObserver`] so that callers can retrieve their metric
//! collectors by value after the run.

use crate::arena::{PacketArena, PacketRef};
use crate::config::EngineConfig;
use crate::event::{EventKind, EventQueue, Scheduler};
use crate::injector::TrafficInjector;
use crate::nic::NicState;
use crate::observer::SimObserver;
use crate::packet::{Packet, RouteInfo};
use crate::router::{RouterState, Waiter};
use crate::routing::{Decision, FeedbackMsg, RouterCtx, RoutingAlgorithm};
use crate::time::SimTime;
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use dragonfly_topology::paths::HopKind;
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::Dragonfly;

/// Aggregate counters maintained by the engine itself (independent of the
/// observer, so they are always available).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages generated at NICs.
    pub generated: u64,
    /// Packets injected into the router fabric.
    pub injected: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Events processed so far.
    pub events: u64,
}

impl EngineStats {
    /// Packets generated but not yet delivered (in NIC queues or in the
    /// fabric).
    pub fn outstanding(&self) -> u64 {
        self.generated - self.delivered
    }
}

/// The flit-level Dragonfly simulator.
pub struct Engine<O: SimObserver> {
    topo: Dragonfly,
    cfg: EngineConfig,
    routers: Vec<RouterState>,
    agents: Vec<Box<dyn crate::routing::RouterAgent>>,
    nics: Vec<NicState>,
    queue: EventQueue,
    packets: PacketArena,
    injector: Box<dyn TrafficInjector>,
    pending_injection: Option<crate::injector::Injection>,
    observer: O,
    now: SimTime,
    next_packet_id: u64,
    stats: EngineStats,
}

impl<O: SimObserver> Engine<O> {
    /// Build a simulator: one router state and one routing agent per router,
    /// one NIC per node.
    pub fn new(
        topo: Dragonfly,
        cfg: EngineConfig,
        algorithm: &dyn RoutingAlgorithm,
        injector: Box<dyn TrafficInjector>,
        observer: O,
        seed: u64,
    ) -> Self {
        assert_eq!(
            cfg.num_vcs,
            algorithm.num_vcs(),
            "EngineConfig::num_vcs must match the routing algorithm's VC requirement"
        );
        let routers: Vec<RouterState> = topo
            .routers()
            .map(|_| RouterState::new(&topo, &cfg))
            .collect();
        let agents: Vec<Box<dyn crate::routing::RouterAgent>> = topo
            .routers()
            .map(|r| {
                // Derive a distinct, deterministic seed per router.
                let router_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(r.index() as u64);
                algorithm.make_agent(&topo, &cfg, r, router_seed)
            })
            .collect();
        let nics = topo.nodes().map(|_| NicState::new(&cfg)).collect();
        let queue = EventQueue::for_config(&cfg);
        let mut engine = Self {
            topo,
            cfg,
            routers,
            agents,
            nics,
            queue,
            packets: PacketArena::new(),
            injector,
            pending_injection: None,
            observer,
            now: 0,
            next_packet_id: 0,
            stats: EngineStats::default(),
        };
        engine.pull_next_injection();
        engine
    }

    // ------------------------------------------------------------------
    // Public accessors
    // ------------------------------------------------------------------

    /// Current simulation time (ns).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Dragonfly {
        &self.topo
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.events = self.queue.processed();
        s
    }

    /// Borrow the observer (metric collector).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutably borrow the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consume the engine and return the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Borrow the routing agent of one router (useful for inspecting
    /// learned state in tests and analyses).
    pub fn agent(&self, router: RouterId) -> &dyn crate::routing::RouterAgent {
        self.agents[router.index()].as_ref()
    }

    /// Total packets currently buffered inside the router fabric.
    pub fn fabric_occupancy(&self) -> usize {
        self.routers.iter().map(|r| r.buffered_packets()).sum()
    }

    /// Total packets waiting in NIC source queues.
    pub fn nic_backlog(&self) -> usize {
        self.nics.iter().map(|n| n.backlog()).sum()
    }

    /// The packet arena (exposed for tests and memory diagnostics: its
    /// live count equals NIC backlog + fabric occupancy + in-flight link
    /// traversals).
    pub fn arena(&self) -> &PacketArena {
        &self.packets
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// The shared event loop: pop and dispatch every event with
    /// `time <= t_end`, returning the number of events processed. Both
    /// public run modes are thin wrappers over this.
    fn step_until(&mut self, t_end: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(event) = self.queue.pop_before(t_end) {
            debug_assert!(event.time >= self.now, "time must not go backwards");
            self.now = event.time;
            self.dispatch(event.kind);
            processed += 1;
        }
        processed
    }

    /// Run the simulation until (and including) simulated time `t_end`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let processed = self.step_until(t_end);
        self.now = self.now.max(t_end);
        processed
    }

    /// Run until there are no more events (traffic exhausted and all packets
    /// drained) or until `t_max` is reached. Returns the finishing time and
    /// the number of events processed by this call.
    pub fn run_to_drain(&mut self, t_max: SimTime) -> (SimTime, u64) {
        let processed = self.step_until(t_max);
        (self.now, processed)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TrafficArrival => self.handle_traffic_arrival(),
            EventKind::NicTryInject { node } => {
                self.nics[node.index()].retry_pending = false;
                self.try_nic_inject(node);
            }
            EventKind::NicCredit { node } => {
                let nic = &mut self.nics[node.index()];
                nic.credits += 1;
                debug_assert!(nic.credits <= self.cfg.vc_buffer_packets);
                self.try_nic_inject(node);
            }
            EventKind::RouterArrive {
                router,
                port,
                vc,
                packet,
            } => self.handle_router_arrive(router, port, vc, packet),
            EventKind::SwitchAttempt { router, port, vc } => {
                self.handle_switch_attempt(router, port, vc)
            }
            EventKind::OutputAttempt { router, port } => self.handle_output_attempt(router, port),
            EventKind::CreditArrive { router, port, vc } => {
                self.routers[router.index()].return_credit(port, vc, &self.cfg);
                self.schedule_output_attempt(router, port, self.now);
            }
            EventKind::RlFeedback { router, msg } => {
                self.agents[router.index()].feedback(&msg);
            }
        }
    }

    // ------------------------------------------------------------------
    // Traffic generation and injection
    // ------------------------------------------------------------------

    fn pull_next_injection(&mut self) {
        if let Some(inj) = self.injector.next_injection() {
            debug_assert!(
                inj.time >= self.now,
                "injector produced an injection in the past"
            );
            self.queue
                .push(inj.time.max(self.now), EventKind::TrafficArrival);
            self.pending_injection = Some(inj);
        } else {
            self.pending_injection = None;
        }
    }

    fn handle_traffic_arrival(&mut self) {
        let inj = match self.pending_injection.take() {
            Some(i) => i,
            None => return,
        };
        let packet = self.make_packet(inj.src, inj.dst, self.now);
        let pref = self.packets.alloc(packet);
        self.observer
            .packet_generated(self.packets.get(pref), self.now);
        self.stats.generated += 1;
        self.nics[inj.src.index()].generated += 1;
        self.nics[inj.src.index()].source_queue.push_back(pref);
        self.try_nic_inject(inj.src);
        self.pull_next_injection();
    }

    fn make_packet(&mut self, src: NodeId, dst: NodeId, now: SimTime) -> Packet {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let src_router = self.topo.router_of_node(src);
        let dst_router = self.topo.router_of_node(dst);
        Packet {
            id,
            src,
            dst,
            src_router,
            dst_router,
            dst_group: self.topo.group_of_router(dst_router),
            src_group: self.topo.group_of_router(src_router),
            src_slot: self.topo.node_slot(src) as u8,
            size_bytes: self.cfg.packet_bytes,
            created_ns: now,
            injected_ns: now,
            hops: 0,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: now,
            pending_decision: None,
        }
    }

    fn try_nic_inject(&mut self, node: NodeId) {
        let ser = self.cfg.serialization_ns();
        let host_lat = self.cfg.host_latency_ns;
        let nic = &mut self.nics[node.index()];
        if nic.source_queue.is_empty() || nic.credits == 0 {
            // A NicCredit event (or new traffic) will retry later.
            return;
        }
        if nic.link_free_at > self.now {
            if !nic.retry_pending {
                nic.retry_pending = true;
                let at = nic.link_free_at;
                self.queue.push(at, EventKind::NicTryInject { node });
            }
            return;
        }
        let pref = nic.source_queue.pop_front().expect("checked non-empty");
        nic.credits -= 1;
        nic.injected += 1;
        nic.link_free_at = self.now + ser;
        let more = !nic.source_queue.is_empty() && nic.credits > 0 && !nic.retry_pending;
        if more {
            nic.retry_pending = true;
            let at = nic.link_free_at;
            self.queue.push(at, EventKind::NicTryInject { node });
        }
        {
            let packet = self.packets.get_mut(pref);
            packet.injected_ns = self.now;
            packet.last_decision_ns = self.now;
        }
        self.observer
            .packet_injected(self.packets.get(pref), self.now);
        self.stats.injected += 1;
        let router = self.topo.router_of_node(node);
        let port = self.topo.ejection_port(node);
        self.queue.push(
            self.now + ser + host_lat,
            EventKind::RouterArrive {
                router,
                port,
                vc: 0,
                packet: pref,
            },
        );
    }

    // ------------------------------------------------------------------
    // Router pipeline
    // ------------------------------------------------------------------

    fn handle_router_arrive(&mut self, router: RouterId, port: Port, vc: u8, packet: PacketRef) {
        let state = &mut self.routers[router.index()];
        let len = state.push_input(port, vc, packet, &self.cfg);
        if len == 1 {
            self.queue.push(
                self.now + self.cfg.router_latency_ns,
                EventKind::SwitchAttempt { router, port, vc },
            );
        }
    }

    fn handle_switch_attempt(&mut self, router: RouterId, port: Port, vc: u8) {
        let r = router.index();
        // Remove the head-of-line handle; the packet itself stays in the
        // arena, so the agent can mutate it while the router state stays
        // immutably borrowable.
        let pref = match self.routers[r].pop_input(port, vc) {
            Some(p) => p,
            None => return,
        };

        let decision = {
            let arena = &mut self.packets;
            let packet = arena.get_mut(pref);
            match packet.pending_decision {
                Some((p, v)) => Decision { port: p, vc: v },
                None => {
                    if packet.dst_router == router {
                        Decision {
                            port: self.topo.ejection_port(packet.dst),
                            vc: packet.vc,
                        }
                    } else {
                        let ctx = RouterCtx {
                            router,
                            topology: &self.topo,
                            config: &self.cfg,
                            now: self.now,
                            state: &self.routers[r],
                        };
                        let d = self.agents[r].decide(&ctx, packet);
                        debug_assert_ne!(
                            self.topo.port_kind(d.port),
                            PortKind::Host,
                            "agents must not route to host ports (ejection is engine-handled)"
                        );
                        debug_assert!(
                            (d.vc as usize) < self.cfg.num_vcs,
                            "agent selected VC {} but only {} exist",
                            d.vc,
                            self.cfg.num_vcs
                        );
                        d
                    }
                }
            }
        };

        if !self.routers[r].output_has_space(decision.port, decision.vc, &self.cfg) {
            // Blocked: remember the decision, restore head-of-line position
            // and wait for the output queue to drain.
            self.packets.get_mut(pref).pending_decision = Some((decision.port, decision.vc));
            self.routers[r].push_input_front(port, vc, pref);
            self.routers[r].add_waiter(decision.port, Waiter { in_port: port, vc });
            return;
        }

        // --- Committed: the packet leaves the input buffer. ---

        // 1. Return a credit upstream for the freed input slot.
        self.send_credit_upstream(router, port, vc);

        // 2. Deliver RL feedback to the router that forwarded the packet to
        //    us (the per-hop delay is the reward; our own estimate of the
        //    remaining time is the bootstrap value).
        let (last_router, last_out_port) = {
            let p = self.packets.get(pref);
            (p.last_router, p.last_out_port)
        };
        if let (Some(up_router), Some(up_port)) = (last_router, last_out_port) {
            let packet = self.packets.get(pref);
            let reward_ns = (self.now - packet.last_decision_ns) as f64;
            let downstream_estimate_ns = if packet.dst_router == router {
                self.cfg.ejection_ns() as f64
            } else {
                let ctx = RouterCtx {
                    router,
                    topology: &self.topo,
                    config: &self.cfg,
                    now: self.now,
                    state: &self.routers[r],
                };
                self.agents[r].estimate_after_decision(&ctx, packet, decision)
            };
            let msg = FeedbackMsg {
                src: packet.src,
                dst: packet.dst,
                dst_router: packet.dst_router,
                dst_group: packet.dst_group,
                src_slot: packet.src_slot,
                port: up_port,
                reward_ns,
                downstream_estimate_ns,
            };
            let latency = self.input_link_latency(router, port);
            self.queue.push(
                self.now + latency,
                EventKind::RlFeedback {
                    router: up_router,
                    msg,
                },
            );
        }

        // 3. Update per-packet bookkeeping and enqueue on the output side.
        let ejecting = self.topo.port_kind(decision.port) == PortKind::Host;
        {
            let packet = self.packets.get_mut(pref);
            if !ejecting {
                packet.hops += 1;
                packet.last_router = Some(router);
                packet.last_out_port = Some(decision.port);
                packet.last_decision_ns = self.now;
                packet.vc = decision.vc;
            }
            packet.pending_decision = None;
        }
        self.routers[r].push_output(decision.port, decision.vc, pref);
        self.schedule_output_attempt(router, decision.port, self.now);

        // 4. The next packet in this input VC (if any) can now attempt the
        //    switch; it has already been charged the router latency while
        //    waiting behind the head-of-line packet.
        if self.routers[r].input_buffer_len(port, vc) > 0 {
            self.queue
                .push(self.now, EventKind::SwitchAttempt { router, port, vc });
        }
    }

    fn handle_output_attempt(&mut self, router: RouterId, port: Port) {
        let r = router.index();
        self.routers[r].set_output_event_pending(port, false);

        if self.routers[r].link_free_at(port) > self.now {
            let at = self.routers[r].link_free_at(port);
            self.schedule_output_attempt(router, port, at);
            return;
        }
        let vc = match self.routers[r].select_output_vc(port) {
            Some(vc) => vc,
            // Nothing sendable: either all queues empty or no credits.
            // A credit arrival or a new enqueue will reschedule us.
            None => return,
        };
        let pref = self.routers[r]
            .pop_output(port, vc)
            .expect("select_output_vc returned a non-empty queue");
        let ser = self.cfg.serialization_ns();
        self.routers[r].set_link_busy_until(port, self.now + ser);

        // A slot was freed in this port's output queues: wake every blocked
        // input VC waiting on it (they re-register if still blocked).
        while let Some(w) = self.routers[r].pop_waiter(port) {
            self.queue.push(
                self.now,
                EventKind::SwitchAttempt {
                    router,
                    port: w.in_port,
                    vc: w.vc,
                },
            );
        }

        match self.topo.port_kind(port) {
            PortKind::Host => {
                // Ejection: deliver to the attached node and recycle the
                // packet's arena slot.
                let delivery = self.now + ser + self.cfg.host_latency_ns;
                debug_assert_eq!(self.topo.ejection_port(self.packets.get(pref).dst), port);
                self.observer
                    .packet_delivered(self.packets.get(pref), delivery);
                self.stats.delivered += 1;
                self.packets.free(pref);
            }
            PortKind::Local | PortKind::Global => {
                self.routers[r].consume_credit(port, vc);
                let (down_router, down_port) = match self.topo.neighbor(router, port) {
                    Neighbor::Router { router, port } => (router, port),
                    Neighbor::Node(_) => unreachable!("fabric port resolved to a node"),
                };
                let latency = self.output_link_latency(port);
                self.queue.push(
                    self.now + ser + latency,
                    EventKind::RouterArrive {
                        router: down_router,
                        port: down_port,
                        vc,
                        packet: pref,
                    },
                );
            }
        }

        if self.routers[r].output_queue_len(port) > 0 {
            self.schedule_output_attempt(router, port, self.now + ser);
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn schedule_output_attempt(&mut self, router: RouterId, port: Port, at: SimTime) {
        let state = &mut self.routers[router.index()];
        if state.output_event_pending(port) {
            return;
        }
        state.set_output_event_pending(port, true);
        self.queue
            .push(at.max(self.now), EventKind::OutputAttempt { router, port });
    }

    /// Latency of the link feeding input `port` of `router` (used for
    /// credit returns and feedback messages travelling upstream).
    fn input_link_latency(&self, _router: RouterId, port: Port) -> SimTime {
        match self.topo.port_kind(port) {
            PortKind::Host => self.cfg.host_latency_ns,
            PortKind::Local => self.cfg.link_latency_ns(HopKind::Local),
            PortKind::Global => self.cfg.link_latency_ns(HopKind::Global),
        }
    }

    /// Latency of the link driven by output `port`.
    fn output_link_latency(&self, port: Port) -> SimTime {
        match self.topo.port_kind(port) {
            PortKind::Host => self.cfg.host_latency_ns,
            PortKind::Local => self.cfg.link_latency_ns(HopKind::Local),
            PortKind::Global => self.cfg.link_latency_ns(HopKind::Global),
        }
    }

    fn send_credit_upstream(&mut self, router: RouterId, port: Port, vc: u8) {
        match self.topo.port_kind(port) {
            PortKind::Host => {
                // The packet came from a NIC: give the NIC its credit back.
                let node = match self.topo.neighbor(router, port) {
                    Neighbor::Node(n) => n,
                    Neighbor::Router { .. } => unreachable!("host port resolved to a router"),
                };
                self.queue.push(
                    self.now + self.cfg.host_latency_ns,
                    EventKind::NicCredit { node },
                );
            }
            PortKind::Local | PortKind::Global => {
                let (up_router, up_port) = match self.topo.neighbor(router, port) {
                    Neighbor::Router { router, port } => (router, port),
                    Neighbor::Node(_) => unreachable!("fabric port resolved to a node"),
                };
                let latency = self.input_link_latency(router, port);
                self.queue.push(
                    self.now + latency,
                    EventKind::CreditArrive {
                        router: up_router,
                        port: up_port,
                        vc,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{Injection, ScriptedInjector};
    use crate::observer::CountingObserver;
    use crate::testing::MinimalTestRouting;
    use dragonfly_topology::config::DragonflyConfig;

    fn run_scripted(injections: Vec<Injection>, t_end: SimTime) -> (EngineStats, CountingObserver) {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(algo.num_vcs());
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(injections)),
            CountingObserver::default(),
            42,
        );
        engine.run_to_drain(t_end);
        (engine.stats(), *engine.observer())
    }

    #[test]
    fn single_packet_same_router_is_delivered() {
        // Nodes 0 and 1 share router 0 in the tiny config (p = 2).
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(1),
            }],
            1_000_000,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(obs.delivered, 1);
        assert_eq!(
            obs.total_hops, 0,
            "same-router delivery takes no fabric hop"
        );
    }

    #[test]
    fn single_packet_cross_group_takes_at_most_three_hops() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        // Pick a destination in a different group from node 0.
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(stats.delivered, 1);
        assert!(obs.total_hops >= 1 && obs.total_hops <= 3);
    }

    #[test]
    fn zero_load_latency_matches_theory() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(algo.num_vcs());
        let kinds =
            topo.minimal_hop_kinds(topo.router_of_node(NodeId(0)), topo.router_of_node(dst));
        let expected = cfg.theoretical_latency_ns(&kinds);
        let (_stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(obs.delivered, 1);
        assert_eq!(obs.total_latency_ns as u64, expected);
    }

    #[test]
    fn all_packets_eventually_delivered_under_light_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let n = topo.num_nodes();
        let mut script = Vec::new();
        for i in 0..2_000u64 {
            let src = NodeId::from_index(rng.gen_range(0..n));
            let mut dst = NodeId::from_index(rng.gen_range(0..n));
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..n));
            }
            // roughly 20% offered load spread over all nodes
            script.push(Injection {
                time: i * 80,
                src,
                dst,
            });
        }
        let (stats, obs) = run_scripted(script, 50_000_000);
        assert_eq!(stats.generated, 2_000);
        assert_eq!(
            stats.delivered, 2_000,
            "lossless network must deliver everything"
        );
        assert!(obs.mean_hops() <= 3.0 + 1e-9);
        assert!(obs.mean_latency_ns() > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(9);
        let script: Vec<Injection> = (0..500u64)
            .map(|i| Injection {
                time: i * 40,
                src: NodeId::from_index(rng.gen_range(0..n)),
                dst: NodeId::from_index(rng.gen_range(0..n)),
            })
            .collect();
        let (s1, o1) = run_scripted(script.clone(), 10_000_000);
        let (s2, o2) = run_scripted(script, 10_000_000);
        assert_eq!(s1, s2);
        assert_eq!(o1.total_latency_ns, o2.total_latency_ns);
        assert_eq!(o1.total_hops, o2.total_hops);
    }

    #[test]
    fn stats_outstanding_counts_undelivered() {
        let (stats, _obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(70),
            }],
            // Stop the clock before the packet can possibly arrive.
            10,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.outstanding(), 1);
    }
}
