//! The simulation coordinator: owns the shards, feeds them traffic and
//! paces the conservative-parallel window loop.
//!
//! See the crate-level documentation for the model and the sharding /
//! determinism contract. With `shards = Single` (the default) the engine
//! degenerates to the classic sequential event loop — same code path,
//! no threads, no barriers. The engine is generic over the
//! [`ShardObserver`] so that callers can retrieve their metric collectors
//! by value after the run.

use crate::arena::PacketArena;
use crate::config::EngineConfig;
use crate::injector::{Injection, TrafficInjector};
use crate::observer::ShardObserver;
use crate::routing::RoutingAlgorithm;
use crate::shard::Shard;
use crate::sync::{MailGrid, QueuedInjection, ShardPlan, WindowDeque, WindowSync, NO_EVENT};
use crate::time::SimTime;
use dragonfly_topology::ids::{NodeId, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// How far ahead (in windows) the pipelined quiescence audit looks before
/// ending an epoch: traffic gaps shorter than this are ground through as
/// cheap empty windows, longer ones end the epoch so the coordinator can
/// jump straight to the next event time.
const AUDIT_HORIZON_WINDOWS: u64 = 64;

/// Drain progress of one shard (see [`EngineStats::shards`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardDrain {
    /// Messages generated at this shard's NICs.
    pub generated: u64,
    /// Packets delivered to this shard's nodes.
    pub delivered: u64,
    /// Live packets resident in this shard's arena (NIC source queues,
    /// router buffers and in-flight intra-shard link traversals).
    pub resident: u64,
    /// Packets currently travelling *towards* this shard inside
    /// cross-shard mailboxes (counted by the engine, since mailboxes live
    /// between shards).
    pub inbound_mail: u64,
    /// Events processed by this shard.
    pub events: u64,
}

/// Aggregate counters maintained by the engine itself (independent of the
/// observer, so they are always available).
///
/// `shards` reports per-shard drain progress: during `run_to_drain` a
/// packet can be resident in a shard's arena *or* sitting in a cross-shard
/// mailbox between windows, and `sum(resident) + sum(inbound_mail)` always
/// equals [`EngineStats::outstanding`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages generated at NICs.
    pub generated: u64,
    /// Packets injected into the router fabric.
    pub injected: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Events processed so far.
    pub events: u64,
    /// Per-shard drain progress, in shard order (length = shard count).
    pub shards: Vec<ShardDrain>,
}

impl EngineStats {
    /// Packets generated but not yet delivered (in NIC queues, in the
    /// fabric, or in cross-shard mailboxes).
    pub fn outstanding(&self) -> u64 {
        self.generated - self.delivered
    }

    /// Packets currently travelling between shards in mailboxes.
    pub fn in_mailboxes(&self) -> u64 {
        self.shards.iter().map(|s| s.inbound_mail).sum()
    }
}

/// The flit-level network simulator (topology-agnostic: any
/// [`Topology`] implementation wrapped in [`AnyTopology`]).
pub struct Engine<O: ShardObserver> {
    topo: AnyTopology,
    cfg: EngineConfig,
    plan: ShardPlan,
    shards: Vec<Shard<O>>,
    mail: MailGrid,
    injector: Box<dyn TrafficInjector>,
    /// The next injection pulled from the injector but not yet distributed
    /// (the one-element lookahead that keeps the stream lazy).
    pending_injection: Option<Injection>,
    next_packet_id: u64,
    now: SimTime,
}

impl<O: ShardObserver> Engine<O> {
    /// Build a simulator: one router state and one routing agent per router,
    /// one NIC per node, partitioned into `cfg.shards` conservative-parallel
    /// shards (the shard count never changes simulation results).
    pub fn new(
        topo: impl Into<AnyTopology>,
        cfg: EngineConfig,
        algorithm: &dyn RoutingAlgorithm,
        mut injector: Box<dyn TrafficInjector>,
        observer: O,
        seed: u64,
    ) -> Self {
        let topo: AnyTopology = topo.into();
        assert_eq!(
            cfg.num_vcs,
            algorithm.num_vcs(),
            "EngineConfig::num_vcs must match the routing algorithm's VC requirement"
        );
        // The conservative lookahead is the topology's minimum
        // cross-domain link latency (the global-link latency on every
        // shipped topology) — no Dragonfly-specific constant.
        let lookahead = topo.min_cross_domain_latency(cfg.local_latency_ns, cfg.global_latency_ns);
        let num_shards = cfg.shards.resolve(topo.num_domains(), lookahead);
        let plan = ShardPlan::new(&topo, num_shards, lookahead);
        let shards: Vec<Shard<O>> = (0..plan.num_shards())
            .map(|i| {
                Shard::new(
                    &topo,
                    &cfg,
                    algorithm,
                    observer.clone(),
                    seed,
                    plan.clone(),
                    i,
                )
            })
            .collect();
        let mail = MailGrid::new(plan.num_shards());
        let pending_injection = injector.next_injection();
        Self {
            topo,
            cfg,
            plan,
            shards,
            mail,
            injector,
            pending_injection,
            next_packet_id: 0,
            now: 0,
        }
    }

    // ------------------------------------------------------------------
    // Public accessors
    // ------------------------------------------------------------------

    /// Current simulation time (ns).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The number of conservative-parallel shards actually running.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Aggregate counters, including per-shard drain progress.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let drain = ShardDrain {
                generated: shard.generated,
                delivered: shard.delivered,
                resident: shard.arena().live_count() as u64,
                inbound_mail: self.mail.packets_bound_for(i),
                events: shard.events_processed(),
            };
            stats.generated += shard.generated;
            stats.injected += shard.injected;
            stats.delivered += shard.delivered;
            stats.events += drain.events;
            stats.shards.push(drain);
        }
        stats
    }

    /// Borrow the observer (metric collector). Only valid on single-shard
    /// engines — a sharded engine has one observer per shard; use
    /// [`Engine::merged_observer`] or [`Engine::into_observer`] instead.
    pub fn observer(&self) -> &O {
        assert_eq!(
            self.shards.len(),
            1,
            "observer() needs a single-shard engine; use merged_observer()"
        );
        self.shards[0].observer()
    }

    /// Mutably borrow the observer (single-shard engines only, see
    /// [`Engine::observer`]).
    pub fn observer_mut(&mut self) -> &mut O {
        assert_eq!(
            self.shards.len(),
            1,
            "observer_mut() needs a single-shard engine; use merged_observer()"
        );
        self.shards[0].observer_mut()
    }

    /// Clone-and-merge the per-shard observers into one aggregate view
    /// (shards are absorbed in ascending shard order, so the result is
    /// deterministic and identical to a single-shard run for observers
    /// that accumulate order-independently).
    pub fn merged_observer(&self) -> O {
        let mut merged = self.shards[0].observer().clone();
        for shard in &self.shards[1..] {
            merged.absorb(shard.observer().clone());
        }
        merged
    }

    /// Consume the engine and return the merged observer.
    pub fn into_observer(self) -> O {
        let mut shards = self.shards.into_iter();
        let mut merged = shards.next().expect("at least one shard").into_observer();
        for shard in shards {
            merged.absorb(shard.into_observer());
        }
        merged
    }

    /// Borrow the routing agent of one router (useful for inspecting
    /// learned state in tests and analyses).
    pub fn agent(&self, router: RouterId) -> &dyn crate::routing::RouterAgent {
        self.shards[self.plan.shard_of_router(router)].agent(router)
    }

    /// Total packets currently buffered inside the router fabric.
    pub fn fabric_occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.fabric_occupancy()).sum()
    }

    /// Total packets waiting in NIC source queues.
    pub fn nic_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.nic_backlog()).sum()
    }

    /// The packet arena (single-shard engines only; sharded engines have
    /// one arena per shard — see [`Engine::arena_live_counts`]).
    pub fn arena(&self) -> &PacketArena {
        assert_eq!(
            self.shards.len(),
            1,
            "arena() needs a single-shard engine; use arena_live_counts()"
        );
        self.shards[0].arena()
    }

    /// Live packet count of every shard's arena, in shard order. Together
    /// with [`EngineStats::in_mailboxes`] this accounts for every
    /// outstanding packet: `sum(arena_live_counts) + in_mailboxes ==
    /// stats().outstanding()`.
    pub fn arena_live_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.arena().live_count()).collect()
    }

    // ------------------------------------------------------------------
    // Closed-loop workloads
    // ------------------------------------------------------------------

    /// Install one closed-loop task program per node (see
    /// [`crate::workload`]) and schedule every program's start at `t = 0`.
    /// Must be called before any `run_*`; typically paired with an
    /// [`crate::injector::EmptyInjector`] and [`Engine::run_to_drain`].
    ///
    /// Programs are handed to the shards that own their nodes; every task
    /// transition afterwards fires from shard-local events with
    /// content-derived keys, so the closed-loop schedule is bit-for-bit
    /// identical across shard counts and execution modes.
    pub fn install_workload(&mut self, programs: Vec<crate::workload::NodeProgram>) {
        assert_eq!(self.now, 0, "install_workload must precede running");
        assert_eq!(
            programs.len(),
            self.topo.num_nodes(),
            "one program per node"
        );
        for (i, ops) in programs.into_iter().enumerate() {
            let node = NodeId::from_index(i);
            let shard = self.plan.shard_of_router(self.topo.router_of_node(node));
            self.shards[shard].install_task(node, ops);
        }
    }

    /// Number of installed task programs that ran to completion.
    pub fn tasks_finished(&self) -> u64 {
        self.shards.iter().map(|s| s.tasks_finished()).sum()
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run the simulation until (and including) simulated time `t_end`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let processed = self.run_events(t_end);
        self.now = self.now.max(t_end);
        processed
    }

    /// Run until there are no more events (traffic exhausted and all packets
    /// drained) or until `t_max` is reached. Returns the finishing time and
    /// the number of events processed by this call.
    pub fn run_to_drain(&mut self, t_max: SimTime) -> (SimTime, u64) {
        let processed = self.run_events(t_max);
        (self.now, processed)
    }

    /// Process every event with `time <= t_cap`, across all shards.
    fn run_events(&mut self, t_cap: SimTime) -> u64 {
        // A previous capped run may have left cross-shard messages (firing
        // beyond its cap) in the mail grid: deliver them into the owning
        // queues so the window planning below sees everything.
        for i in 0..self.shards.len() {
            let msgs = self.mail.collect_for(i);
            self.shards[i].deliver(msgs);
        }
        let processed = if self.shards.len() == 1 {
            self.run_sequential(t_cap)
        } else if self.cfg.pipeline && self.plan.lookahead() >= 2 {
            self.run_pipelined(t_cap)
        } else {
            self.run_threaded(t_cap)
        };
        let shard_now = self.shards.iter().map(|s| s.now()).max().unwrap_or(0);
        self.now = self.now.max(shard_now);
        processed
    }

    /// The sequential specialisation: one shard, no threads, no mailboxes
    /// — but the same windowed feed of injections, so results are
    /// trivially identical to the threaded path.
    fn run_sequential(&mut self, t_cap: SimTime) -> u64 {
        // Without cross-shard traffic the window length is only a traffic
        // feed granularity; keep it coarse enough to amortise the loop.
        let window = self.plan.lookahead().max(1024);
        let mut processed = 0;
        loop {
            let next_local = self.shards[0].next_local_time().unwrap_or(NO_EVENT);
            let next_injection = self
                .pending_injection
                .as_ref()
                .map(|i| i.time)
                .unwrap_or(NO_EVENT);
            let start = next_local.min(next_injection);
            if start == NO_EVENT || start > t_cap {
                break;
            }
            let end_incl = start.saturating_add(window - 1).min(t_cap);
            self.distribute_sequential(end_incl);
            processed += self.shards[0].run_window(end_incl);
        }
        processed
    }

    /// Hand every injection with `time <= end_incl` to shard 0.
    fn distribute_sequential(&mut self, end_incl: SimTime) {
        let Self {
            shards,
            injector,
            pending_injection,
            next_packet_id,
            plan,
            topo,
            ..
        } = self;
        let shard = &mut shards[0];
        distribute_injections(
            injector.as_mut(),
            pending_injection,
            next_packet_id,
            plan,
            topo,
            end_incl,
            |_, q| shard.accept_injection(q),
        );
    }

    /// The conservative-parallel path: one thread per shard, lockstep
    /// windows of one lookahead each, shard 0's thread doubling as the
    /// leader that plans windows and distributes injections between the
    /// two barriers.
    fn run_threaded(&mut self, t_cap: SimTime) -> u64 {
        let Self {
            topo,
            plan,
            shards,
            mail,
            injector,
            pending_injection,
            next_packet_id,
            ..
        } = self;
        let lookahead = plan.lookahead();
        let sync = WindowSync::new(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            sync.next_hint[i].store(
                shard.next_local_time().unwrap_or(NO_EVENT),
                Ordering::Release,
            );
        }
        let sync = &sync;
        let mail: &MailGrid = mail;
        let plan: &ShardPlan = plan;
        let topo: &AnyTopology = topo;

        // Leader-only traffic distribution state, moved into shard 0's
        // thread.
        struct Feeder<'a> {
            injector: &'a mut Box<dyn TrafficInjector>,
            pending: &'a mut Option<Injection>,
            next_id: &'a mut u64,
        }
        let mut feeder = Some(Feeder {
            injector,
            pending: pending_injection,
            next_id: next_packet_id,
        });

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (i, shard) in shards.iter_mut().enumerate() {
                let mut feeder = if i == 0 { feeder.take() } else { None };
                handles.push(scope.spawn(move |_| {
                    let mut processed = 0u64;
                    loop {
                        // Phase 1: everyone arrived; the previous window's
                        // outboxes are all in the mail grid.
                        sync.pre.wait();
                        if let Some(f) = feeder.as_mut() {
                            // Leader: plan the next window. The hints cover
                            // every queued event and every in-flight
                            // message; the pending injection is the only
                            // source of work the shards cannot see.
                            let mut start = sync.min_hint();
                            if let Some(p) = f.pending.as_ref() {
                                start = start.min(p.time);
                            }
                            if start == NO_EVENT || start > t_cap {
                                sync.done.store(true, Ordering::Release);
                            } else {
                                let end_incl = start.saturating_add(lookahead - 1).min(t_cap);
                                distribute_injections(
                                    f.injector.as_mut(),
                                    f.pending,
                                    f.next_id,
                                    plan,
                                    topo,
                                    end_incl,
                                    |owner, q| sync.injections[owner].lock().push_back(q),
                                );
                                sync.window_end.store(end_incl, Ordering::Release);
                                sync.done.store(false, Ordering::Release);
                            }
                        }
                        // Phase 2: the window (or `done`) is published.
                        sync.post.wait();
                        if sync.done.load(Ordering::Acquire) {
                            break;
                        }
                        let end_incl = sync.window_end.load(Ordering::Acquire);
                        {
                            let mut inbox = sync.injections[i].lock();
                            while let Some(q) = inbox.pop_front() {
                                shard.accept_injection(q);
                            }
                        }
                        shard.deliver(mail.collect_for(i));
                        processed += shard.run_window(end_incl);
                        shard.flush_outboxes(mail, 0);
                        let hint = shard
                            .next_local_time()
                            .unwrap_or(NO_EVENT)
                            .min(shard.min_sent());
                        sync.next_hint[i].store(hint, Ordering::Release);
                    }
                    processed
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .sum::<u64>()
        })
        .expect("shard scope panicked")
    }

    /// The overlapped-window pipelined path ([`EngineConfig::pipeline`]):
    /// epochs of a fixed half-lookahead window grid, paced by the lagged
    /// gate of a [`WindowDeque`] instead of a per-window barrier, with
    /// idle workers stealing whole ready windows from slower shards. See
    /// [`crate::sync`] for the two-phase/double-buffer argument; results
    /// are bit-for-bit identical to the barrier and sequential modes.
    fn run_pipelined(&mut self, t_cap: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            // Between epochs the world is stopped: recover in-flight mail
            // so the epoch planning below sees every queued event.
            for i in 0..self.shards.len() {
                let msgs = self.mail.collect_for(i);
                self.shards[i].deliver(msgs);
            }
            let next_local = self
                .shards
                .iter()
                .filter_map(|s| s.next_local_time())
                .min()
                .unwrap_or(NO_EVENT);
            let next_injection = self
                .pending_injection
                .as_ref()
                .map(|i| i.time)
                .unwrap_or(NO_EVENT);
            let origin = next_local.min(next_injection);
            if origin == NO_EVENT || origin > t_cap {
                break;
            }
            processed += self.run_pipeline_epoch(origin, t_cap);
        }
        processed
    }

    /// One pipelined epoch: windows `[origin + w·W, origin + (w+1)·W)`
    /// with `W = lookahead / 2`, executed by one worker thread per shard.
    /// Any worker may claim any shard's next window once the lagged gate
    /// opens (whole-window work stealing); the epoch ends when everything
    /// is parked beyond `t_cap` or the quiescence audit finds no work
    /// within the audit horizon (the coordinator then jumps the gap).
    fn run_pipeline_epoch(&mut self, origin: SimTime, t_cap: SimTime) -> u64 {
        let Self {
            topo,
            plan,
            shards,
            mail,
            injector,
            pending_injection,
            next_packet_id,
            ..
        } = self;
        let n = shards.len();
        let deque = WindowDeque::new(n, origin, (plan.lookahead() / 2).max(1), t_cap);
        let deque = &deque;
        let mail: &MailGrid = mail;
        let plan: &ShardPlan = plan;
        let topo: &AnyTopology = topo;

        // The shared injection feeder: a single cursor over the (ordered)
        // injector stream, so packet ids are assigned in injector order no
        // matter which worker pumps it. `distributed_until` is a monotonic
        // watermark — before any worker executes a window, it pumps the
        // feeder to that window's end, so every shard's inbox holds its
        // injections before the window containing them runs.
        struct Feeder<'a> {
            injector: &'a mut Box<dyn TrafficInjector>,
            pending: &'a mut Option<Injection>,
            next_id: &'a mut u64,
            distributed_until: SimTime,
        }
        let initial_pending = pending_injection
            .as_ref()
            .map(|i| i.time)
            .unwrap_or(NO_EVENT);
        let feeder = Mutex::new(Feeder {
            injector,
            pending: pending_injection,
            next_id: next_packet_id,
            distributed_until: 0,
        });
        // Lock-free mirror of the feeder's pending-injection time, for the
        // work-availability scan and the audit.
        let pending_hint = AtomicU64::new(initial_pending);
        let inboxes: Vec<Mutex<VecDeque<QueuedInjection>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        // Per-shard queue-head times published after each window (advisory
        // only: correctness rests on the audit's world-stop re-check).
        let hints: Vec<AtomicU64> = shards
            .iter()
            .map(|s| AtomicU64::new(s.next_local_time().unwrap_or(NO_EVENT)))
            .collect();
        let audit = Mutex::new(());
        let epoch_processed;
        {
            let cells: Vec<Mutex<&mut Shard<O>>> = shards.iter_mut().map(Mutex::new).collect();
            let cells = &cells;
            let feeder = &feeder;
            let inboxes = &inboxes;
            let hints = &hints;
            let pending_hint = &pending_hint;
            let audit = &audit;

            let pump = move |until: SimTime| {
                let mut f = feeder.lock();
                if f.distributed_until >= until {
                    return;
                }
                let feeder_state = &mut *f;
                distribute_injections(
                    feeder_state.injector.as_mut(),
                    feeder_state.pending,
                    feeder_state.next_id,
                    plan,
                    topo,
                    until,
                    |owner, q| inboxes[owner].lock().push_back(q),
                );
                pending_hint.store(
                    f.pending.as_ref().map(|i| i.time).unwrap_or(NO_EVENT),
                    Ordering::Release,
                );
                f.distributed_until = until;
            };
            let pump = &pump;

            // Execute shard `s`'s next window if it is claimable right now
            // (unlocked, not parked, gate open). Returns the events
            // processed, or `None` if the window could not be claimed.
            let try_run = move |s: usize| -> Option<u64> {
                let mut shard = cells[s].try_lock()?;
                // `completed` only advances under this lock, so the window
                // index read here is stable for the whole execution.
                let w = deque.next_window(s);
                if deque.parked(w) || !deque.gate_open(w) {
                    return None;
                }
                let end_incl = deque.end_incl_of(w);
                let parity = (w % 2) as usize;
                pump(end_incl);
                {
                    let mut inbox = inboxes[s].lock();
                    while let Some(q) = inbox.pop_front() {
                        shard.accept_injection(q);
                    }
                }
                shard.deliver(mail.collect_parity_for(s, parity));
                let processed = shard.run_window(end_incl);
                shard.flush_outboxes(mail, parity);
                hints[s].store(
                    shard.next_local_time().unwrap_or(NO_EVENT),
                    Ordering::Release,
                );
                // Publishing the completion *after* the outbox flush is
                // what guarantees window-w mail is visible before any
                // shard opens window w + 2.
                deque.complete(s, w);
                Some(processed)
            };
            let try_run = &try_run;

            // Advisory check: might shard `s`'s window `w` do real work?
            let maybe_has_work = move |s: usize, w: u64| -> bool {
                let end = deque.end_incl_of(w);
                hints[s].load(Ordering::Acquire) <= end
                    || pending_hint.load(Ordering::Acquire) <= end
                    || !inboxes[s].lock().is_empty()
                    || !mail.is_empty_for(s)
            };
            let maybe_has_work = &maybe_has_work;

            // World-stopping quiescence audit. Returns `true` when the
            // epoch is over. The blocking `lock()` here is safe: workers
            // hold at most one shard lock and never block on another.
            let try_audit = move || -> bool {
                let Some(_guard) = audit.try_lock() else {
                    return false;
                };
                if deque.is_done() {
                    return true;
                }
                let world: Vec<_> = cells.iter().map(|c| c.lock()).collect();
                let horizon = deque
                    .end_incl_of(deque.min_completed() + AUDIT_HORIZON_WINDOWS)
                    .min(t_cap);
                let mut quiescent = pending_hint.load(Ordering::Acquire) > horizon;
                for s in 0..n {
                    if !quiescent {
                        break;
                    }
                    if !inboxes[s].lock().is_empty() {
                        quiescent = false;
                        break;
                    }
                    if deque.parked(deque.next_window(s)) {
                        // Beyond the cap: leftover mail addressed here
                        // fires after t_cap and is recovered between
                        // epochs; nothing more to run.
                        continue;
                    }
                    if !mail.is_empty_for(s)
                        || world[s].next_local_time().unwrap_or(NO_EVENT) <= horizon
                    {
                        quiescent = false;
                    }
                }
                if quiescent {
                    deque.finish();
                }
                quiescent
            };
            let try_audit = &try_audit;

            epoch_processed = crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for worker in 0..n {
                    handles.push(scope.spawn(move |_| {
                        let mut processed = 0u64;
                        let mut empty_streak = 0u32;
                        while !deque.is_done() {
                            // Prefer a window with probable work — own
                            // shard first, then steal from the others.
                            let mut ran = false;
                            for offset in 0..n {
                                let s = (worker + offset) % n;
                                let w = deque.next_window(s);
                                if deque.parked(w) || !deque.gate_open(w) || !maybe_has_work(s, w) {
                                    continue;
                                }
                                if let Some(p) = try_run(s) {
                                    processed += p;
                                    if p > 0 {
                                        empty_streak = 0;
                                    }
                                    ran = true;
                                    break;
                                }
                            }
                            if ran {
                                continue;
                            }
                            if deque.all_parked() {
                                deque.finish();
                                break;
                            }
                            empty_streak += 1;
                            if empty_streak >= 2 && try_audit() {
                                break;
                            }
                            // Advance the slowest runnable shard one
                            // (empty) window so gated work elsewhere can
                            // proceed — still whole-window granularity.
                            let laggard = (0..n)
                                .filter(|&s| {
                                    let w = deque.next_window(s);
                                    !deque.parked(w) && deque.gate_open(w)
                                })
                                .min_by_key(|&s| deque.next_window(s));
                            match laggard.and_then(try_run) {
                                Some(p) => processed += p,
                                None => std::thread::yield_now(),
                            }
                        }
                        processed
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pipeline worker panicked"))
                    .sum::<u64>()
            })
            .expect("pipeline scope panicked");
        }
        // Defensive: re-queue any injection the epoch distributed but never
        // consumed (both epoch exits leave the inboxes empty, see the
        // audit; this keeps a future exit path from losing traffic).
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let mut leftovers = inbox.into_inner();
            debug_assert!(
                leftovers.is_empty(),
                "epoch ended with undelivered injections"
            );
            while let Some(q) = leftovers.pop_front() {
                shards[i].accept_injection(q);
            }
        }
        epoch_processed
    }
}

/// Advance the shared injection cursor: hand every pending injection with
/// `time <= end_incl` to `push(owner_shard, queued)`, assigning packet
/// ids in injector order. All three execution modes — sequential,
/// lockstep barrier and pipelined — feed traffic through this single
/// function; identical id assignment across them is part of the
/// bit-for-bit determinism contract, so never fork this logic per mode.
fn distribute_injections(
    injector: &mut dyn TrafficInjector,
    pending: &mut Option<Injection>,
    next_id: &mut u64,
    plan: &ShardPlan,
    topo: &AnyTopology,
    end_incl: SimTime,
    mut push: impl FnMut(usize, QueuedInjection),
) {
    while let Some(injection) = *pending {
        if injection.time > end_incl {
            break;
        }
        let id = *next_id;
        *next_id += 1;
        let owner = plan.shard_of_router(topo.router_of_node(injection.src));
        push(
            owner,
            QueuedInjection {
                time: injection.time,
                src: injection.src,
                dst: injection.dst,
                id,
            },
        );
        *pending = injector.next_injection();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardKind;
    use crate::injector::{Injection, ScriptedInjector};
    use crate::observer::CountingObserver;
    use crate::testing::MinimalTestRouting;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::Dragonfly;

    fn run_scripted(injections: Vec<Injection>, t_end: SimTime) -> (EngineStats, CountingObserver) {
        run_scripted_sharded(injections, t_end, ShardKind::Single)
    }

    fn run_scripted_sharded(
        injections: Vec<Injection>,
        t_end: SimTime,
        shards: ShardKind,
    ) -> (EngineStats, CountingObserver) {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(algo.num_vcs());
        cfg.shards = shards;
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(injections)),
            CountingObserver::default(),
            42,
        );
        engine.run_to_drain(t_end);
        (engine.stats(), engine.merged_observer())
    }

    #[test]
    fn single_packet_same_router_is_delivered() {
        // Nodes 0 and 1 share router 0 in the tiny config (p = 2).
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(1),
            }],
            1_000_000,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(obs.delivered, 1);
        assert_eq!(
            obs.total_hops, 0,
            "same-router delivery takes no fabric hop"
        );
    }

    #[test]
    fn single_packet_cross_group_takes_at_most_three_hops() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        // Pick a destination in a different group from node 0.
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let (stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(stats.delivered, 1);
        assert!(obs.total_hops >= 1 && obs.total_hops <= 3);
    }

    #[test]
    fn zero_load_latency_matches_theory() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let dst = topo
            .nodes()
            .find(|n| topo.group_of_node(*n) != topo.group_of_node(NodeId(0)))
            .unwrap();
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(algo.num_vcs());
        let kinds =
            topo.minimal_hop_kinds(topo.router_of_node(NodeId(0)), topo.router_of_node(dst));
        let expected = cfg.theoretical_latency_ns(&kinds);
        let (_stats, obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst,
            }],
            1_000_000,
        );
        assert_eq!(obs.delivered, 1);
        assert_eq!(obs.total_latency_ns as u64, expected);
    }

    #[test]
    fn all_packets_eventually_delivered_under_light_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let n = topo.num_nodes();
        let mut script = Vec::new();
        for i in 0..2_000u64 {
            let src = NodeId::from_index(rng.gen_range(0..n));
            let mut dst = NodeId::from_index(rng.gen_range(0..n));
            while dst == src {
                dst = NodeId::from_index(rng.gen_range(0..n));
            }
            // roughly 20% offered load spread over all nodes
            script.push(Injection {
                time: i * 80,
                src,
                dst,
            });
        }
        let (stats, obs) = run_scripted(script, 50_000_000);
        assert_eq!(stats.generated, 2_000);
        assert_eq!(
            stats.delivered, 2_000,
            "lossless network must deliver everything"
        );
        assert!(obs.mean_hops() <= 3.0 + 1e-9);
        assert!(obs.mean_latency_ns() > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(9);
        let script: Vec<Injection> = (0..500u64)
            .map(|i| Injection {
                time: i * 40,
                src: NodeId::from_index(rng.gen_range(0..n)),
                dst: NodeId::from_index(rng.gen_range(0..n)),
            })
            .collect();
        let (s1, o1) = run_scripted(script.clone(), 10_000_000);
        let (s2, o2) = run_scripted(script, 10_000_000);
        assert_eq!(s1, s2);
        assert_eq!(o1.total_latency_ns, o2.total_latency_ns);
        assert_eq!(o1.total_hops, o2.total_hops);
    }

    #[test]
    fn sharded_run_matches_single_shard_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(17);
        let script: Vec<Injection> = (0..1_500u64)
            .map(|i| Injection {
                time: i * 30,
                src: NodeId::from_index(rng.gen_range(0..n)),
                dst: NodeId::from_index(rng.gen_range(0..n)),
            })
            .collect();
        let (s1, o1) = run_scripted_sharded(script.clone(), 20_000_000, ShardKind::Single);
        let (s3, o3) = run_scripted_sharded(script, 20_000_000, ShardKind::Fixed(3));
        assert_eq!(s1.generated, s3.generated);
        assert_eq!(s1.delivered, s3.delivered);
        assert_eq!(s1.events, s3.events, "event counts must match exactly");
        assert_eq!(o1.total_latency_ns, o3.total_latency_ns);
        assert_eq!(o1.total_hops, o3.total_hops);
    }

    #[test]
    fn closed_loop_ring_program_drains_and_is_shard_invariant() {
        use crate::injector::EmptyInjector;
        use crate::workload::Op;

        // Every node computes, sends 2 messages to its ring successor and
        // waits for 2 from its predecessor — a closed-loop exchange that
        // only completes when the network delivers.
        let run = |shards: ShardKind| {
            let topo = Dragonfly::new(DragonflyConfig::tiny());
            let n = topo.num_nodes();
            let algo = MinimalTestRouting;
            let mut cfg = EngineConfig::paper(algo.num_vcs());
            cfg.shards = shards;
            let mut engine = Engine::new(
                topo,
                cfg,
                &algo,
                Box::new(EmptyInjector),
                CountingObserver::default(),
                7,
            );
            let programs = (0..n)
                .map(|i| {
                    vec![
                        Op::Compute { delay_ns: 50 },
                        Op::Send {
                            dst: NodeId::from_index((i + 1) % n),
                            messages: 2,
                        },
                        Op::Recv {
                            from: NodeId::from_index((i + n - 1) % n),
                            messages: 2,
                            barrier: true,
                        },
                        Op::Phase { index: 0 },
                    ]
                })
                .collect();
            engine.install_workload(programs);
            let (end, _) = engine.run_to_drain(10_000_000);
            (end, engine.stats(), engine.tasks_finished())
        };
        let (end1, s1, f1) = run(ShardKind::Single);
        let n = Dragonfly::new(DragonflyConfig::tiny()).num_nodes() as u64;
        assert_eq!(f1, n, "every rank finishes");
        assert_eq!(s1.generated, 2 * n);
        assert_eq!(s1.delivered, 2 * n, "closed loop drains completely");
        for shards in [2usize, 3] {
            let (endk, sk, fk) = run(ShardKind::Fixed(shards));
            assert_eq!(end1, endk, "finish time is shard invariant");
            assert_eq!(s1.generated, sk.generated);
            assert_eq!(s1.delivered, sk.delivered);
            assert_eq!(s1.events, sk.events, "even the event count matches");
            assert_eq!(f1, fk);
        }
    }

    #[test]
    fn stats_outstanding_counts_undelivered() {
        let (stats, _obs) = run_scripted(
            vec![Injection {
                time: 0,
                src: NodeId(0),
                dst: NodeId(70),
            }],
            // Stop the clock before the packet can possibly arrive.
            10,
        );
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.outstanding(), 1);
        // The per-shard drain view accounts for the same packet.
        let resident: u64 = stats.shards.iter().map(|s| s.resident).sum();
        assert_eq!(resident + stats.in_mailboxes(), stats.outstanding());
    }
}
