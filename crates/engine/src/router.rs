//! Per-router simulated state: input buffers, output queues, credits,
//! link serialisation and blocked-packet wait lists.
//!
//! Buffers are indexed by `(port, vc)` flattened to `port * num_vcs + vc`.

use crate::arena::PacketRef;
use crate::config::EngineConfig;
use crate::time::SimTime;
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::{AnyTopology, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A blocked input VC waiting for space in some output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waiter {
    /// Input port whose head-of-line packet is blocked.
    pub in_port: Port,
    /// Input VC whose head-of-line packet is blocked.
    pub vc: u8,
}

/// All mutable state of one simulated router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterState {
    num_ports: usize,
    num_vcs: usize,
    /// Input buffers, `port * num_vcs + vc`. Queues store 4-byte arena
    /// handles; the packets themselves live in the engine's
    /// [`crate::arena::PacketArena`].
    input: Vec<VecDeque<PacketRef>>,
    /// Output queues, `port * num_vcs + vc` (arena handles, as above).
    output: Vec<VecDeque<PacketRef>>,
    /// Credits available towards the downstream input buffer,
    /// `port * num_vcs + vc`. Host (ejection) ports are not credit limited.
    credits: Vec<usize>,
    /// Cached per-port occupancy of the output queues (sum over VCs).
    output_occupancy: Vec<usize>,
    /// Time at which each outgoing link finishes serialising its current
    /// packet.
    link_free_at: Vec<SimTime>,
    /// Whether an `OutputAttempt` event is already pending for each port
    /// (avoids flooding the event queue with duplicates).
    output_event_pending: Vec<bool>,
    /// Input VCs blocked on a full output queue, per output port.
    waiters: Vec<VecDeque<Waiter>>,
    /// Round-robin pointer over VCs for each output port.
    vc_rr: Vec<u8>,
    /// Whether each input VC currently sits on some waiter list (prevents
    /// double registration).
    waiting_flag: Vec<bool>,
    /// Host ports for ejection do not consume credits.
    port_is_host: Vec<bool>,
}

impl RouterState {
    /// Create the state for one specific router (port counts and host
    /// flags are per-router: a fat-tree core has no host ports).
    pub fn new(topo: &AnyTopology, router: RouterId, cfg: &EngineConfig) -> Self {
        let num_ports = topo.radix(router);
        let num_vcs = cfg.num_vcs;
        let cells = num_ports * num_vcs;
        let port_is_host = (0..num_ports)
            .map(|p| topo.port_kind(router, Port::from_index(p)) == PortKind::Host)
            .collect();
        Self {
            num_ports,
            num_vcs,
            input: (0..cells).map(|_| VecDeque::new()).collect(),
            output: (0..cells).map(|_| VecDeque::new()).collect(),
            credits: vec![cfg.vc_buffer_packets; cells],
            output_occupancy: vec![0; num_ports],
            link_free_at: vec![0; num_ports],
            output_event_pending: vec![false; num_ports],
            waiters: (0..num_ports).map(|_| VecDeque::new()).collect(),
            vc_rr: vec![0; num_ports],
            waiting_flag: vec![false; cells],
            port_is_host,
        }
    }

    #[inline]
    fn cell(&self, port: Port, vc: u8) -> usize {
        debug_assert!(port.index() < self.num_ports);
        debug_assert!((vc as usize) < self.num_vcs);
        port.index() * self.num_vcs + vc as usize
    }

    /// Number of ports.
    #[inline]
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Number of VCs.
    #[inline]
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    // ------------------------------------------------------------------
    // Input buffers
    // ------------------------------------------------------------------

    /// Occupancy of one input buffer.
    pub fn input_buffer_len(&self, port: Port, vc: u8) -> usize {
        self.input[self.cell(port, vc)].len()
    }

    /// Push an arriving packet into an input buffer. Returns the new length.
    pub fn push_input(
        &mut self,
        port: Port,
        vc: u8,
        packet: PacketRef,
        cfg: &EngineConfig,
    ) -> usize {
        let cell = self.cell(port, vc);
        debug_assert!(
            self.input[cell].len() < cfg.vc_buffer_packets,
            "credit flow control must prevent input buffer overflow"
        );
        self.input[cell].push_back(packet);
        self.input[cell].len()
    }

    /// Handle of the packet at the head of an input buffer.
    pub fn input_head(&self, port: Port, vc: u8) -> Option<PacketRef> {
        self.input[self.cell(port, vc)].front().copied()
    }

    /// Pop the head of an input buffer.
    pub fn pop_input(&mut self, port: Port, vc: u8) -> Option<PacketRef> {
        let cell = self.cell(port, vc);
        self.input[cell].pop_front()
    }

    /// Put a packet back at the *front* of an input buffer (used when a
    /// switch attempt finds the target output queue full and the packet has
    /// to keep waiting as the head-of-line packet).
    pub fn push_input_front(&mut self, port: Port, vc: u8, packet: PacketRef) {
        let cell = self.cell(port, vc);
        self.input[cell].push_front(packet);
    }

    // ------------------------------------------------------------------
    // Output queues
    // ------------------------------------------------------------------

    /// Total occupancy of a port's output queues (sum over VCs).
    #[inline]
    pub fn output_queue_len(&self, port: Port) -> usize {
        self.output_occupancy[port.index()]
    }

    /// Occupancy of one `(port, vc)` output queue.
    pub fn output_queue_vc_len(&self, port: Port, vc: u8) -> usize {
        self.output[self.cell(port, vc)].len()
    }

    /// Whether the `(port, vc)` output queue can accept another packet.
    pub fn output_has_space(&self, port: Port, vc: u8, cfg: &EngineConfig) -> bool {
        self.output[self.cell(port, vc)].len() < cfg.output_queue_packets
    }

    /// Push a packet into an output queue.
    pub fn push_output(&mut self, port: Port, vc: u8, packet: PacketRef) {
        let cell = self.cell(port, vc);
        self.output[cell].push_back(packet);
        self.output_occupancy[port.index()] += 1;
    }

    /// Pop a packet from an output queue.
    pub fn pop_output(&mut self, port: Port, vc: u8) -> Option<PacketRef> {
        let cell = self.cell(port, vc);
        let p = self.output[cell].pop_front();
        if p.is_some() {
            self.output_occupancy[port.index()] -= 1;
        }
        p
    }

    /// Select the next output VC to serve on `port`, round-robin, requiring
    /// a non-empty queue and (for fabric ports) an available credit.
    /// Advances the round-robin pointer when a VC is selected.
    pub fn select_output_vc(&mut self, port: Port) -> Option<u8> {
        let start = self.vc_rr[port.index()] as usize;
        let is_host = self.port_is_host[port.index()];
        for off in 0..self.num_vcs {
            let vc = ((start + off) % self.num_vcs) as u8;
            let cell = self.cell(port, vc);
            if self.output[cell].is_empty() {
                continue;
            }
            if !is_host && self.credits[cell] == 0 {
                continue;
            }
            self.vc_rr[port.index()] = ((vc as usize + 1) % self.num_vcs) as u8;
            return Some(vc);
        }
        None
    }

    // ------------------------------------------------------------------
    // Credits
    // ------------------------------------------------------------------

    /// Credits currently available for `(port, vc)`.
    pub fn credits(&self, port: Port, vc: u8) -> usize {
        self.credits[self.cell(port, vc)]
    }

    /// Consume one credit (a packet is being sent downstream).
    pub fn consume_credit(&mut self, port: Port, vc: u8) {
        let cell = self.cell(port, vc);
        debug_assert!(self.credits[cell] > 0, "sent without a credit");
        self.credits[cell] -= 1;
    }

    /// Return one credit (the downstream buffer freed a slot).
    pub fn return_credit(&mut self, port: Port, vc: u8, cfg: &EngineConfig) {
        let cell = self.cell(port, vc);
        self.credits[cell] += 1;
        debug_assert!(
            self.credits[cell] <= cfg.vc_buffer_packets,
            "credit overflow"
        );
    }

    /// Credits consumed on a port (summed over VCs); host ports report 0.
    pub fn used_credits(&self, port: Port, cfg: &EngineConfig) -> usize {
        if self.port_is_host[port.index()] {
            return 0;
        }
        (0..self.num_vcs as u8)
            .map(|vc| cfg.vc_buffer_packets - self.credits(port, vc))
            .sum()
    }

    // ------------------------------------------------------------------
    // Link serialisation bookkeeping
    // ------------------------------------------------------------------

    /// Time the outgoing link of `port` becomes free.
    pub fn link_free_at(&self, port: Port) -> SimTime {
        self.link_free_at[port.index()]
    }

    /// Mark the outgoing link of `port` busy until `t`.
    pub fn set_link_busy_until(&mut self, port: Port, t: SimTime) {
        self.link_free_at[port.index()] = t;
    }

    /// Whether an `OutputAttempt` is already scheduled for `port`.
    pub fn output_event_pending(&self, port: Port) -> bool {
        self.output_event_pending[port.index()]
    }

    /// Mark/unmark the pending `OutputAttempt` flag for `port`.
    pub fn set_output_event_pending(&mut self, port: Port, pending: bool) {
        self.output_event_pending[port.index()] = pending;
    }

    // ------------------------------------------------------------------
    // Blocked-input wait lists
    // ------------------------------------------------------------------

    /// Register an input VC as waiting for space in `out_port`'s queue.
    /// Idempotent per input VC.
    pub fn add_waiter(&mut self, out_port: Port, waiter: Waiter) {
        let flag = self.cell(waiter.in_port, waiter.vc);
        if self.waiting_flag[flag] {
            return;
        }
        self.waiting_flag[flag] = true;
        self.waiters[out_port.index()].push_back(waiter);
    }

    /// Pop the next waiter of `out_port`, clearing its waiting flag.
    pub fn pop_waiter(&mut self, out_port: Port) -> Option<Waiter> {
        let w = self.waiters[out_port.index()].pop_front();
        if let Some(w) = w {
            let flag = self.cell(w.in_port, w.vc);
            self.waiting_flag[flag] = false;
        }
        w
    }

    /// Number of packets currently buffered in this router (inputs +
    /// outputs), used by drain checks and tests.
    pub fn buffered_packets(&self) -> usize {
        self.input.iter().map(|q| q.len()).sum::<usize>()
            + self.output.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Rewrite every buffered [`PacketRef`] in place, visiting input
    /// cells then output cells in `(port, vc)` index order.
    ///
    /// This deterministic walk order is part of the checkpoint format:
    /// merging shard snapshots into one canonical arena (and splitting it
    /// back) re-numbers packet slots by walking routers in id order with
    /// exactly this visitor, so the walk must enumerate refs the same way
    /// on both sides.
    pub fn map_packet_refs(&mut self, f: &mut impl FnMut(PacketRef) -> PacketRef) {
        for cell in &mut self.input {
            for r in cell.iter_mut() {
                *r = f(*r);
            }
        }
        for cell in &mut self.output {
            for r in cell.iter_mut() {
                *r = f(*r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    fn setup() -> (AnyTopology, EngineConfig, RouterState) {
        let topo = AnyTopology::from(dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()));
        let cfg = EngineConfig::paper(3);
        let state = RouterState::new(&topo, RouterId(0), &cfg);
        (topo, cfg, state)
    }

    /// Router queues only move opaque arena handles; tests can mint them
    /// directly without an arena.
    fn packet(id: u32) -> PacketRef {
        PacketRef(id)
    }

    #[test]
    fn input_buffers_are_fifo() {
        let (_t, cfg, mut s) = setup();
        let port = Port(2);
        s.push_input(port, 0, packet(1), &cfg);
        s.push_input(port, 0, packet(2), &cfg);
        assert_eq!(s.input_buffer_len(port, 0), 2);
        assert_eq!(s.input_head(port, 0).unwrap(), packet(1));
        assert_eq!(s.pop_input(port, 0).unwrap(), packet(1));
        assert_eq!(s.pop_input(port, 0).unwrap(), packet(2));
        assert!(s.pop_input(port, 0).is_none());
    }

    #[test]
    fn output_occupancy_tracks_pushes_and_pops() {
        let (_t, _cfg, mut s) = setup();
        let port = Port(3);
        s.push_output(port, 0, packet(1));
        s.push_output(port, 1, packet(2));
        assert_eq!(s.output_queue_len(port), 2);
        assert_eq!(s.output_queue_vc_len(port, 0), 1);
        s.pop_output(port, 0);
        assert_eq!(s.output_queue_len(port), 1);
        s.pop_output(port, 1);
        assert_eq!(s.output_queue_len(port), 0);
    }

    #[test]
    fn credits_consume_and_return() {
        let (_t, cfg, mut s) = setup();
        let port = Port(4);
        assert_eq!(s.credits(port, 1), cfg.vc_buffer_packets);
        s.consume_credit(port, 1);
        s.consume_credit(port, 1);
        assert_eq!(s.credits(port, 1), cfg.vc_buffer_packets - 2);
        assert_eq!(s.used_credits(port, &cfg), 2);
        s.return_credit(port, 1, &cfg);
        assert_eq!(s.credits(port, 1), cfg.vc_buffer_packets - 1);
    }

    #[test]
    fn host_ports_report_zero_used_credits() {
        let (_t, cfg, mut s) = setup();
        let host = Port(0);
        s.consume_credit(host, 0);
        assert_eq!(s.used_credits(host, &cfg), 0);
    }

    #[test]
    fn select_output_vc_skips_creditless_vcs() {
        let (_t, cfg, mut s) = setup();
        let port = Port(2); // fabric port on the tiny config (p=2)
        s.push_output(port, 0, packet(1));
        s.push_output(port, 1, packet(2));
        // Exhaust credits on VC0.
        for _ in 0..cfg.vc_buffer_packets {
            s.consume_credit(port, 0);
        }
        assert_eq!(s.select_output_vc(port), Some(1));
        // Host ports ignore credits entirely.
        let host = Port(0);
        s.push_output(host, 0, packet(3));
        for _ in 0..cfg.vc_buffer_packets {
            s.consume_credit(host, 0);
        }
        assert_eq!(s.select_output_vc(host), Some(0));
    }

    #[test]
    fn select_output_vc_round_robins() {
        let (_t, _cfg, mut s) = setup();
        let port = Port(2);
        s.push_output(port, 0, packet(1));
        s.push_output(port, 1, packet(2));
        s.push_output(port, 2, packet(3));
        let first = s.select_output_vc(port).unwrap();
        s.pop_output(port, first);
        let second = s.select_output_vc(port).unwrap();
        assert_ne!(first, second, "round robin must rotate across VCs");
    }

    #[test]
    fn waiters_are_deduplicated() {
        let (_t, _cfg, mut s) = setup();
        let out = Port(3);
        let w = Waiter {
            in_port: Port(2),
            vc: 0,
        };
        s.add_waiter(out, w);
        s.add_waiter(out, w);
        assert_eq!(s.pop_waiter(out), Some(w));
        assert_eq!(s.pop_waiter(out), None);
        // After being popped the same VC may wait again.
        s.add_waiter(out, w);
        assert_eq!(s.pop_waiter(out), Some(w));
    }

    #[test]
    fn buffered_packets_counts_both_sides() {
        let (_t, cfg, mut s) = setup();
        s.push_input(Port(2), 0, packet(1), &cfg);
        s.push_output(Port(3), 1, packet(2));
        assert_eq!(s.buffered_packets(), 2);
    }
}
