//! Simulation time.
//!
//! All times are integer nanoseconds since the start of the simulation.
//! With the paper's constants (32 ns serialisation, 30/300 ns link latency)
//! every event lands on an integer nanosecond, so no fractional time is
//! needed, and `u64` nanoseconds cover ~584 years of simulated time.

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROSECOND: SimTime = 1_000;

/// One millisecond in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1_000_000;

/// Convert a [`SimTime`] to microseconds as `f64` (handy for reporting —
/// the paper reports latency in microseconds).
#[inline]
pub fn ns_to_us(t: SimTime) -> f64 {
    t as f64 / 1_000.0
}

/// Convert microseconds to [`SimTime`] nanoseconds.
#[inline]
pub fn us_to_ns(us: f64) -> SimTime {
    (us * 1_000.0).round() as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants() {
        assert_eq!(MICROSECOND, 1_000);
        assert_eq!(MILLISECOND, 1_000_000);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(ns_to_us(1_500), 1.5);
        assert_eq!(us_to_ns(1.5), 1_500);
        assert_eq!(us_to_ns(ns_to_us(123_456)), 123_456);
    }
}
