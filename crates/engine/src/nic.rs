//! Network-interface state for each compute node.
//!
//! A NIC holds an unbounded source queue (generated messages that have not
//! yet entered the network) and the credit/serialisation state of the
//! host link into its router. Offered load beyond what the network can
//! absorb accumulates in the source queue; system throughput (the paper's
//! metric) therefore saturates below the offered load under congestion.

use crate::arena::PacketRef;
use crate::config::EngineConfig;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-node injection state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicState {
    /// Generated but not yet injected packets (handles into the engine's
    /// [`crate::arena::PacketArena`]).
    pub source_queue: VecDeque<PacketRef>,
    /// Free slots in the router's host-port input buffer (VC 0).
    pub credits: usize,
    /// When the node-to-router link finishes serialising its current packet.
    pub link_free_at: SimTime,
    /// Whether a retry event is already scheduled for this NIC.
    pub retry_pending: bool,
    /// Total packets handed to this NIC by the traffic generator.
    pub generated: u64,
    /// Total packets injected into the fabric.
    pub injected: u64,
}

impl NicState {
    /// Create an idle NIC with a full credit allowance.
    pub fn new(cfg: &EngineConfig) -> Self {
        Self {
            source_queue: VecDeque::new(),
            credits: cfg.vc_buffer_packets,
            link_free_at: 0,
            retry_pending: false,
            generated: 0,
            injected: 0,
        }
    }

    /// Whether the NIC can inject a packet right now.
    pub fn can_inject(&self, now: SimTime) -> bool {
        !self.source_queue.is_empty() && self.credits > 0 && self.link_free_at <= now
    }

    /// Packets waiting in the source queue.
    pub fn backlog(&self) -> usize {
        self.source_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> PacketRef {
        PacketRef(0)
    }

    #[test]
    fn fresh_nic_cannot_inject_without_packets() {
        let nic = NicState::new(&EngineConfig::default());
        assert!(!nic.can_inject(0));
        assert_eq!(nic.backlog(), 0);
    }

    #[test]
    fn injection_requires_credits_and_free_link() {
        let cfg = EngineConfig::default();
        let mut nic = NicState::new(&cfg);
        nic.source_queue.push_back(packet());
        assert!(nic.can_inject(0));
        nic.credits = 0;
        assert!(!nic.can_inject(0));
        nic.credits = 1;
        nic.link_free_at = 100;
        assert!(!nic.can_inject(50));
        assert!(nic.can_inject(100));
    }
}
