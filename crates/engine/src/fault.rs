//! Fault injection: compiled fault schedules applied by the engine.
//!
//! A [`FaultSchedule`] is a time-ordered list of [`CompiledFault`] entries,
//! each carrying the primitive [`FaultOp`]s (port/router kill or restore)
//! that one logical fault expands to. Callers (the `sim` crate) compile
//! user-facing fault specs against a concrete topology; the engine only
//! sees primitives.
//!
//! ## Determinism contract
//!
//! Fault times are **quantized to lookahead multiples** by
//! [`FaultSchedule::quantized`] (`t_q = ceil(t / L) · L` with `L` the
//! conservative lookahead). Every shard holds the full schedule and applies
//! each entry to its own topology clone *immediately before dispatching the
//! first event with `time >= t_q`* — a point in the per-shard event
//! sequence that is identical across shard counts, execution modes and
//! scheduler implementations, because events are totally ordered by
//! `(time, key, seq)` and faults always win ties at `t_q`. Fault
//! application never sends cross-shard messages: a link kill carries
//! `PortDown` ops for **both** endpoints, so every liveness query any
//! router makes is answered from shard-local state.
//!
//! Quantization also guarantees a restore is separated from the matching
//! kill by at least one lookahead window, which is what makes the
//! kill-time state reset safe: every credit or packet that was in flight
//! towards the dead entity has landed (and been dropped/refunded) before
//! the entity comes back.

use crate::time::SimTime;
use dragonfly_topology::ids::{Port, RouterId};
use serde::{Deserialize, Serialize};

/// One primitive liveness change. Link-level faults are expressed as a
/// `PortDown`/`PortUp` *pair* (one per endpoint) by the compiler, never as
/// a single op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Mark one router port down (stranded output packets are dropped).
    PortDown {
        /// Router owning the port.
        router: RouterId,
        /// The port going down.
        port: Port,
    },
    /// Mark one router port up again.
    PortUp {
        /// Router owning the port.
        router: RouterId,
        /// The port coming back.
        port: Port,
    },
    /// Kill a whole router: buffered packets are dropped (with upstream
    /// credit restitution) and its state is reset to factory-fresh, so a
    /// later `RouterUp` resumes from a clean slate.
    RouterDown {
        /// The router going down.
        router: RouterId,
    },
    /// Restore a previously killed router.
    RouterUp {
        /// The router coming back.
        router: RouterId,
    },
}

/// One fault event: all ops of one logical fault, applied atomically at
/// `at_ns` (already quantized when the engine sees it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledFault {
    /// Application time in ns (quantized to a lookahead multiple).
    pub at_ns: SimTime,
    /// The primitive liveness changes, applied in order.
    pub ops: Vec<FaultOp>,
}

/// A time-ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Entries sorted (stably) by `at_ns`.
    pub events: Vec<CompiledFault>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule with every entry time rounded **up** to the next
    /// multiple of `lookahead` and entries stably sorted by time (entries
    /// sharing a quantized time keep their spec order).
    pub fn quantized(&self, lookahead: SimTime) -> Self {
        let l = lookahead.max(1);
        let mut events: Vec<CompiledFault> = self
            .events
            .iter()
            .map(|f| CompiledFault {
                at_ns: f.at_ns.div_ceil(l) * l,
                ops: f.ops.clone(),
            })
            .collect();
        events.sort_by_key(|f| f.at_ns);
        Self { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_rounds_up_to_lookahead_multiples() {
        let sched = FaultSchedule {
            events: vec![
                CompiledFault {
                    at_ns: 50_000,
                    ops: vec![FaultOp::RouterDown {
                        router: RouterId(3),
                    }],
                },
                CompiledFault {
                    at_ns: 299,
                    ops: vec![FaultOp::PortDown {
                        router: RouterId(0),
                        port: Port(4),
                    }],
                },
                CompiledFault {
                    at_ns: 300,
                    ops: vec![FaultOp::PortUp {
                        router: RouterId(0),
                        port: Port(4),
                    }],
                },
            ],
        };
        let q = sched.quantized(300);
        assert_eq!(
            q.events.iter().map(|f| f.at_ns).collect::<Vec<_>>(),
            vec![300, 300, 50_100],
            "sorted by quantized time, stable within ties"
        );
        // A time on the grid stays put; 299 rounds up to 300 and keeps its
        // spec order relative to the entry already at 300.
        assert!(matches!(q.events[0].ops[0], FaultOp::PortDown { .. }));
        assert!(matches!(q.events[1].ops[0], FaultOp::PortUp { .. }));
    }

    #[test]
    fn zero_lookahead_degrades_to_nanosecond_grid() {
        let sched = FaultSchedule {
            events: vec![CompiledFault {
                at_ns: 7,
                ops: vec![],
            }],
        };
        assert_eq!(sched.quantized(0).events[0].at_ns, 7);
    }

    #[test]
    fn schedule_round_trips_through_serde() {
        let sched = FaultSchedule {
            events: vec![CompiledFault {
                at_ns: 300,
                ops: vec![
                    FaultOp::PortDown {
                        router: RouterId(1),
                        port: Port(2),
                    },
                    FaultOp::RouterUp {
                        router: RouterId(9),
                    },
                ],
            }],
        };
        let json = serde_json::to_string(&sched).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched);
    }
}
