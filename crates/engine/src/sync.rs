//! Conservative-parallel synchronisation: the shard plan (who owns which
//! locality domain), the lookahead window, double-buffered cross-shard
//! mailboxes, the spin barrier that paces the lockstep reference mode,
//! and the window deque that drives the pipelined mode.
//!
//! ## The conservative argument
//!
//! Routers are partitioned by **locality domain** (the topology's
//! sharding unit: a Dragonfly group, a fat-tree pod, a HyperX row), and
//! the [`Topology`] contract guarantees every link between routers of
//! different domains has at least the topology's minimum cross-domain
//! latency `L` (`Topology::min_cross_domain_latency` — the global-link
//! latency on all shipped topologies). Every cross-shard interaction — a
//! packet traversing such a link, a credit or an RL feedback message
//! returning across one — is therefore scheduled at least `L` into the
//! future. Shards therefore execute
//! windows of at most `L` simulated nanoseconds in lockstep: any message a
//! shard sends while executing window `[S, S+L)` fires at `now + L ≥ S+L`,
//! i.e. strictly after the window, so delivering mailboxes at the window
//! barrier is always in time. No null messages, no rollback.
//!
//! ## The pipelined refinement (overlapped windows)
//!
//! The barrier mode above serialises compute and mailbox exchange: every
//! shard stops at every window edge. The pipelined mode
//! ([`crate::config::EngineConfig::pipeline`], the default) halves the
//! window to `W = L/2` and splits each window into a *compute* phase and
//! an *exchange* phase over **double-buffered** mailboxes:
//!
//! * A message sent while computing window `w` (time span
//!   `[S + wW, S + (w+1)W)`) fires at `≥ S + wW + L ≥ S + (w+2)W` — the
//!   start of window `w+2`. Window `w`'s outbound mail therefore only has
//!   to reach its destination **two** windows later, not one.
//! * Each `src → dst` mailbox pair has two buffers, indexed by the window
//!   parity `w mod 2`. A shard finishing window `w` posts into parity
//!   `w mod 2`; a shard starting window `w` drains parity `w mod 2` —
//!   which last received mail in window `w-2`, exactly the deadline.
//! * Shards are paced by a *lagged gate* instead of a full barrier: shard
//!   `k` may start window `w` as soon as every shard has **finished
//!   window `w-2`** (see [`WindowDeque`]). Fast shards run one window
//!   ahead of slow ones, so one shard's compute overlaps its neighbours'
//!   compute *and* the exchange of the previous window.
//!
//! A racing sender may post window-`w` mail into a parity buffer the
//! receiver has already drained this cycle; the mail simply waits for the
//! next same-parity drain at window `w+2` — its deadline. Conversely a
//! drain may pick up mail one cycle *early*; early delivery is harmless
//! because events sort by content key (below), never by arrival.
//!
//! ## Work stealing (whole windows only)
//!
//! [`WindowDeque`] doubles as a shared deque of ready work items. A work
//! item is one **whole window of one shard** — never an individual event:
//! an idle worker thread claims any shard whose next window has passed the
//! lagged gate and executes it (drain → compute → post) on that shard's
//! own queue and arena. Because the item boundary is the window and each
//! shard's windows execute in order under the shard's lock, the event
//! sequence each shard processes is identical no matter which worker runs
//! it — stealing redistributes wall-clock work, not events, so the
//! content-derived ordering (and bit-for-bit determinism) is untouched.
//! Stealing at event granularity would interleave two shards' state and
//! break both locality and the ordering argument; the whole-window rule is
//! what makes it safe.
//!
//! ## Determinism
//!
//! Mailbox delivery order does not matter: events are totally ordered by a
//! content-derived key (see [`crate::event::event_key`]), so a message
//! sorts into the destination queue exactly where the single-queue engine
//! would have processed it. `shards = 1` and `shards = N` produce
//! bit-for-bit identical outputs, with pipelining on or off.

use crate::packet::Packet;
use crate::routing::FeedbackMsg;
use crate::time::SimTime;
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "no pending event" in the shared next-event hints.
pub const NO_EVENT: SimTime = SimTime::MAX;

/// How routers and nodes are partitioned into shards, plus the lookahead.
///
/// Shards own contiguous, balanced ranges of **locality domains** (the
/// topology-provided sharding unit: Dragonfly groups, fat-tree pods,
/// HyperX rows). Domains occupy contiguous router/node id ranges by the
/// [`Topology`] contract, so a router's shard is one table lookup and all
/// of a shard's state is contiguous.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards (≥ 1).
    num_shards: usize,
    /// The conservative lookahead window in ns (the topology's minimum
    /// cross-domain link latency).
    lookahead: SimTime,
    /// Domain → shard.
    domain_to_shard: Vec<u16>,
    /// Shard → first domain (plus a trailing total, so `domains_of(i)` is
    /// `domain_start[i]..domain_start[i + 1]`).
    domain_start: Vec<usize>,
    /// Router → shard (dense: domains may differ in router count).
    router_to_shard: Vec<u16>,
}

impl ShardPlan {
    /// Partition `topo` into `num_shards` contiguous domain ranges.
    pub fn new(topo: &AnyTopology, num_shards: usize, lookahead: SimTime) -> Self {
        let domains = topo.num_domains();
        let n = num_shards.clamp(1, domains.max(1));
        assert!(
            n == 1 || lookahead > 0,
            "conservative sharding needs a positive lookahead window"
        );
        let mut domain_to_shard = vec![0u16; domains];
        let mut domain_start = Vec::with_capacity(n + 1);
        for shard in 0..n {
            let start = shard * domains / n;
            domain_start.push(start);
            let end = (shard + 1) * domains / n;
            domain_to_shard[start..end].fill(shard as u16);
        }
        domain_start.push(domains);
        let mut router_to_shard = vec![0u16; topo.num_routers()];
        for (domain, shard) in domain_to_shard.iter().enumerate() {
            router_to_shard[topo.router_range_of_domain(domain)].fill(*shard);
        }
        Self {
            num_shards: n,
            lookahead,
            domain_to_shard,
            domain_start,
            router_to_shard,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The conservative lookahead window (ns).
    #[inline]
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// The shard owning a locality domain.
    #[inline]
    pub fn shard_of_domain(&self, domain: usize) -> usize {
        self.domain_to_shard[domain] as usize
    }

    /// The shard owning a router.
    #[inline]
    pub fn shard_of_router(&self, router: RouterId) -> usize {
        self.router_to_shard[router.index()] as usize
    }

    /// The contiguous domain range owned by a shard.
    pub fn domains_of(&self, shard: usize) -> std::ops::Range<usize> {
        self.domain_start[shard]..self.domain_start[shard + 1]
    }
}

/// A cross-shard message, timestamped with its (future) firing time.
///
/// `RouterArrive` carries the packet **by value**: the sender frees its
/// arena slot when the packet leaves the shard and the receiver allocates
/// a fresh slot on delivery, so [`crate::arena::PacketRef`] handles never
/// cross a shard boundary un-translated.
#[derive(Debug, Clone)]
pub enum ShardMsg {
    /// A packet crossing a global link into another shard.
    RouterArrive {
        /// Firing time at the destination router.
        time: SimTime,
        /// Destination router.
        router: RouterId,
        /// Input port on the destination router.
        port: Port,
        /// Virtual channel of the arrival.
        vc: u8,
        /// The packet itself, extracted from the sender's arena.
        packet: Packet,
    },
    /// A credit returning upstream across a global link.
    CreditArrive {
        /// Firing time at the upstream router.
        time: SimTime,
        /// Upstream router receiving the credit.
        router: RouterId,
        /// Output port of the upstream router the credit belongs to.
        port: Port,
        /// Virtual channel of the credit.
        vc: u8,
    },
    /// RL feedback returning upstream across a global link.
    RlFeedback {
        /// Firing time at the upstream router.
        time: SimTime,
        /// Upstream router whose agent receives the feedback.
        router: RouterId,
        /// The feedback payload.
        msg: FeedbackMsg,
    },
    /// A workload packet was dropped in another shard; the source NIC's
    /// shard decides whether to retransmit (see
    /// [`crate::event::EventKind::DropNotice`]).
    DropNotice {
        /// Firing time at the source node's shard.
        time: SimTime,
        /// The packet's source node (owned by the receiving shard).
        node: dragonfly_topology::ids::NodeId,
        /// The packet's destination node.
        dst: dragonfly_topology::ids::NodeId,
        /// The workload packet id.
        id: u64,
    },
}

impl ShardMsg {
    /// The simulated time at which the message fires.
    pub fn time(&self) -> SimTime {
        match self {
            ShardMsg::RouterArrive { time, .. }
            | ShardMsg::CreditArrive { time, .. }
            | ShardMsg::RlFeedback { time, .. }
            | ShardMsg::DropNotice { time, .. } => *time,
        }
    }

    /// Whether the message carries a packet (used for drain accounting).
    pub fn carries_packet(&self) -> bool {
        matches!(self, ShardMsg::RouterArrive { .. })
    }
}

/// One injection queued for a shard's NIC, with its globally assigned
/// packet id (ids are handed out by the coordinator in injector order, so
/// they are independent of the shard count).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueuedInjection {
    /// Generation time at the source node.
    pub time: SimTime,
    /// Generating node (owned by the receiving shard).
    pub src: dragonfly_topology::ids::NodeId,
    /// Destination node (any shard).
    pub dst: dragonfly_topology::ids::NodeId,
    /// Pre-assigned global packet id.
    pub id: u64,
}

/// Number of buffers per mailbox pair: one per window parity, so the
/// exchange of window `w`'s mail can overlap the compute of window `w+1`.
pub const MAIL_PARITIES: usize = 2;

/// The `N × N × 2` double-buffered cross-shard mailbox fabric.
///
/// `boxes[src][dst][parity]` is written by shard `src` when it finishes a
/// window of that parity and drained by shard `dst` when it *starts* a
/// window of the same parity — two windows later, the conservative
/// delivery deadline (see the module docs). In the lockstep barrier mode
/// only parity 0 is used and the two accesses are separated by the window
/// barrier; in the pipelined mode a post and a drain of the *same* box can
/// race, which the mutex arbitrates (a drained-while-filling message just
/// waits for the next same-parity drain, still before its deadline).
#[derive(Debug, Default)]
pub struct MailGrid {
    boxes: Vec<Vec<[Mutex<Vec<ShardMsg>>; MAIL_PARITIES]>>,
    /// Per-destination count of undelivered messages (both parities),
    /// maintained by `post`/`collect_*` so [`MailGrid::is_empty_for`] —
    /// called inside the pipelined workers' spin loop — is one atomic
    /// load instead of 2n mutex acquisitions. Exact whenever no post or
    /// drain is concurrently in flight for `dst` (in particular under the
    /// quiescence audit's world-stop); advisory otherwise.
    bound_for: Vec<AtomicU64>,
}

impl MailGrid {
    /// An `n × n` grid of empty double-buffered mailboxes.
    pub fn new(n: usize) -> Self {
        Self {
            boxes: (0..n)
                .map(|_| (0..n).map(|_| Default::default()).collect())
                .collect(),
            bound_for: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Append `msgs` to the `src → dst` mailbox of the given window parity
    /// (cheap vector splice).
    pub fn post(&self, src: usize, dst: usize, parity: usize, msgs: &mut Vec<ShardMsg>) {
        if !msgs.is_empty() {
            let posted = msgs.len() as u64;
            self.boxes[src][dst][parity % MAIL_PARITIES]
                .lock()
                .append(msgs);
            self.bound_for[dst].fetch_add(posted, Ordering::Release);
        }
    }

    /// Take everything addressed to `dst` in the given parity, in
    /// ascending sender order (the pipelined per-window drain).
    pub fn collect_parity_for(&self, dst: usize, parity: usize) -> Vec<ShardMsg> {
        let mut out = Vec::new();
        self.collect_parity_into(dst, parity, &mut out);
        out
    }

    /// [`MailGrid::collect_parity_for`] appending into a caller-provided
    /// buffer, so a per-shard inbox buffer can be reused across windows
    /// instead of allocating a fresh `Vec` per drain.
    pub fn collect_parity_into(&self, dst: usize, parity: usize, out: &mut Vec<ShardMsg>) {
        let before = out.len();
        for row in &self.boxes {
            out.append(&mut row[dst][parity % MAIL_PARITIES].lock());
        }
        self.bound_for[dst].fetch_sub((out.len() - before) as u64, Ordering::Release);
    }

    /// Take everything addressed to `dst` across both parities, in
    /// ascending sender order (the full drain between runs/epochs and the
    /// barrier-mode window drain).
    pub fn collect_for(&self, dst: usize) -> Vec<ShardMsg> {
        let mut out = Vec::new();
        self.collect_into(dst, &mut out);
        out
    }

    /// [`MailGrid::collect_for`] appending into a caller-provided buffer
    /// (see [`MailGrid::collect_parity_into`] for why).
    pub fn collect_into(&self, dst: usize, out: &mut Vec<ShardMsg>) {
        let before = out.len();
        for row in &self.boxes {
            for parity in &row[dst] {
                out.append(&mut parity.lock());
            }
        }
        self.bound_for[dst].fetch_sub((out.len() - before) as u64, Ordering::Release);
    }

    /// Packets currently travelling to `dst` inside mailboxes (both
    /// parities).
    pub fn packets_bound_for(&self, dst: usize) -> u64 {
        self.boxes
            .iter()
            .map(|row| {
                row[dst]
                    .iter()
                    .map(|b| b.lock().iter().filter(|m| m.carries_packet()).count() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Whether every mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes
            .iter()
            .all(|row| row.iter().flatten().all(|b| b.lock().is_empty()))
    }

    /// Whether no mailbox of either parity holds mail addressed to `dst`
    /// (used by the pipelined quiescence audit and the work-availability
    /// scan; a single atomic load, see `bound_for`).
    pub fn is_empty_for(&self, dst: usize) -> bool {
        self.bound_for[dst].load(Ordering::Acquire) == 0
    }

    /// Heap footprint of the grid in bytes: the retained capacity of
    /// every mailbox of **both** parities (double-buffered mailboxes stay
    /// allocated at their high-water mark between windows) plus the
    /// per-destination packet counters. Part of the engine's
    /// `memory_bytes` residency rollup.
    pub fn memory_bytes(&self) -> usize {
        let mailboxes: usize = self
            .boxes
            .iter()
            .flatten()
            .flatten()
            .map(|b| b.lock().capacity() * std::mem::size_of::<ShardMsg>())
            .sum();
        mailboxes + self.bound_for.len() * std::mem::size_of::<AtomicU64>()
    }
}

/// The shared frontier of the pipelined window loop — conceptually a
/// deque of ready work items, where one item is **one whole window of one
/// shard** (see the module docs on work-stealing granularity).
///
/// The grid of windows is fixed for one *epoch*: window `w` spans
/// `[origin + w·W, origin + (w+1)·W)` with `W = lookahead / 2`, clamped
/// to `t_cap`. Each shard's `completed` counter is its next window index;
/// a worker may claim `(shard, w)` when the *lagged gate* is open —
/// every shard has finished window `w - 2`, i.e.
/// `w ≤ min(completed) + 1` — which is exactly the double-buffer
/// delivery deadline. The counters only advance under the owning shard's
/// lock, so windows of one shard always execute in order, no matter
/// which worker runs them.
#[derive(Debug)]
pub struct WindowDeque {
    /// Half-lookahead window length in ns (≥ 1).
    window_ns: SimTime,
    /// Simulated time of window 0's start (the epoch origin).
    origin: SimTime,
    /// Inclusive simulated-time cap of this run.
    t_cap: SimTime,
    /// Per-shard count of finished windows == next window index to run.
    completed: Vec<AtomicU64>,
    /// Set when the epoch is over (quiescent or capped); workers exit.
    done: AtomicBool,
}

impl WindowDeque {
    /// A fresh epoch frontier for `n` shards.
    pub fn new(n: usize, origin: SimTime, window_ns: SimTime, t_cap: SimTime) -> Self {
        assert!(window_ns >= 1, "pipelined windows need a positive length");
        Self {
            window_ns,
            origin,
            t_cap,
            completed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: AtomicBool::new(false),
        }
    }

    /// Heap + inline footprint in bytes of the frontier state a pipelined
    /// run keeps live for `n` shards (the per-shard completion counters
    /// plus the fixed scalars). A fresh `WindowDeque` is built per epoch,
    /// so this is the steady-state residency, not a high-water mark; used
    /// by the engine's `memory_bytes` rollup.
    pub fn memory_bytes_for(n: usize) -> usize {
        std::mem::size_of::<Self>() + n * std::mem::size_of::<AtomicU64>()
    }

    /// The window length (ns).
    #[inline]
    pub fn window_ns(&self) -> SimTime {
        self.window_ns
    }

    /// Start time of window `w`.
    #[inline]
    pub fn start_of(&self, w: u64) -> SimTime {
        self.origin.saturating_add(w.saturating_mul(self.window_ns))
    }

    /// Inclusive end time of window `w`, clamped to the run cap.
    #[inline]
    pub fn end_incl_of(&self, w: u64) -> SimTime {
        self.start_of(w + 1).saturating_sub(1).min(self.t_cap)
    }

    /// The next window index shard `s` will execute.
    #[inline]
    pub fn next_window(&self, s: usize) -> u64 {
        self.completed[s].load(Ordering::Acquire)
    }

    /// The slowest shard's finished-window count.
    pub fn min_completed(&self) -> u64 {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// The lagged gate: window `w` may start once every shard has
    /// finished window `w - 2` (its inbound parity buffers last received
    /// mail at their delivery deadline).
    #[inline]
    pub fn gate_open(&self, w: u64) -> bool {
        w <= self.min_completed() + 1
    }

    /// Whether window `w` lies wholly beyond the run cap (a shard whose
    /// next window is parked has nothing left to do this run).
    #[inline]
    pub fn parked(&self, w: u64) -> bool {
        self.start_of(w) > self.t_cap
    }

    /// Whether every shard's next window is beyond the cap.
    pub fn all_parked(&self) -> bool {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .all(|w| self.parked(w))
    }

    /// Publish the completion of `(shard s, window w)`. Must be called by
    /// the worker holding shard `s`'s lock, after its outboxes are posted
    /// — the release pairs with the acquire in [`WindowDeque::gate_open`]
    /// to make window-`w` mail visible before any shard starts `w + 2`.
    #[inline]
    pub fn complete(&self, s: usize, w: u64) {
        debug_assert_eq!(self.completed[s].load(Ordering::Relaxed), w);
        self.completed[s].store(w + 1, Ordering::Release);
    }

    /// Whether the epoch has been declared over.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Declare the epoch over; every worker exits its loop.
    #[inline]
    pub fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// A sense-reversing spin barrier for the per-window lockstep.
///
/// Windows are hundreds of nanoseconds of simulated time but only tens of
/// microseconds of wall time, so a futex-based barrier would dominate; the
/// spin loop keeps the synchronisation cost to a cache-line ping. After a
/// bounded spin the waiters yield, so oversubscribed machines (more shards
/// than cores) still make progress.
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `participants` threads.
    pub fn new(participants: usize) -> Self {
        Self {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all participants arrive. Returns `true` on exactly one
    /// thread per generation (the last arrival), which the caller may use
    /// for leader-only work — the engine instead fixes shard 0 as the
    /// leader between two barriers, so this return is informational.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 512 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

/// Shared per-run state of the threaded window loop.
#[derive(Debug)]
pub struct WindowSync {
    /// First barrier: all compute phases of the previous round finished.
    pub pre: SpinBarrier,
    /// Second barrier: the leader published the next window (or `done`).
    pub post: SpinBarrier,
    /// Exclusive end of the current window (valid after `post`).
    pub window_end: AtomicU64,
    /// Set by the leader when no further window will run.
    pub done: AtomicBool,
    /// Per-shard "earliest thing I know about" hints: the minimum of the
    /// shard's queue head and every message it sent in the last window.
    pub next_hint: Vec<AtomicU64>,
    /// Injection inboxes, filled by the leader and drained by each shard
    /// at the start of its compute phase (uncontended, like the mailboxes).
    pub injections: Vec<Mutex<std::collections::VecDeque<QueuedInjection>>>,
}

impl WindowSync {
    /// Fresh per-run state for `n` shards.
    pub fn new(n: usize) -> Self {
        Self {
            pre: SpinBarrier::new(n),
            post: SpinBarrier::new(n),
            window_end: AtomicU64::new(0),
            done: AtomicBool::new(false),
            next_hint: (0..n).map(|_| AtomicU64::new(NO_EVENT)).collect(),
            injections: (0..n)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
        }
    }

    /// The minimum of all shard hints.
    pub fn min_hint(&self) -> SimTime {
        self.next_hint
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .min()
            .unwrap_or(NO_EVENT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;

    #[test]
    fn plan_partitions_domains_contiguously_and_exhaustively() {
        use dragonfly_topology::{Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig};
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(), // 9 groups
            FatTree::new(FatTreeConfig::tiny()).into(),     // 4 pods
            HyperX::new(HyperXConfig::tiny()).into(),       // 6 rows
        ];
        for topo in &topologies {
            for n in [1, 2, 3, topo.num_domains()] {
                let plan = ShardPlan::new(topo, n, 300);
                assert_eq!(plan.num_shards(), n);
                let mut covered = 0;
                for shard in 0..n {
                    let range = plan.domains_of(shard);
                    for d in range.clone() {
                        assert_eq!(plan.shard_of_domain(d), shard);
                    }
                    covered += range.len();
                }
                assert_eq!(covered, topo.num_domains());
                // Router ownership agrees with domain ownership.
                for r in topo.routers() {
                    let d = topo.domain_of_router(r);
                    assert_eq!(plan.shard_of_router(r), plan.shard_of_domain(d.index()));
                }
            }
        }
    }

    #[test]
    fn plan_clamps_oversized_requests() {
        let topo = AnyTopology::from(dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()));
        let plan = ShardPlan::new(&topo, 100, 300);
        assert_eq!(plan.num_shards(), 9, "one shard per domain at most");
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn plan_rejects_multi_shard_zero_lookahead() {
        let topo = AnyTopology::from(dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()));
        ShardPlan::new(&topo, 2, 0);
    }

    #[test]
    fn mailboxes_deliver_and_count_packets() {
        let grid = MailGrid::new(2);
        let mut out = vec![
            ShardMsg::CreditArrive {
                time: 400,
                router: RouterId(1),
                port: Port(2),
                vc: 0,
            },
            ShardMsg::RlFeedback {
                time: 350,
                router: RouterId(1),
                msg: FeedbackMsg {
                    packet_id: 7,
                    src: NodeId(0),
                    dst: NodeId(9),
                    dst_router: RouterId(4),
                    dst_group: dragonfly_topology::ids::GroupId(1),
                    src_slot: 0,
                    port: Port(5),
                    reward_ns: 10.0,
                    downstream_estimate_ns: 20.0,
                },
            },
        ];
        grid.post(0, 1, 0, &mut out);
        assert!(out.is_empty(), "post splices the batch out");
        assert!(!grid.is_empty());
        assert!(!grid.is_empty_for(1));
        assert!(grid.is_empty_for(0), "nothing is addressed to shard 0");
        assert_eq!(grid.packets_bound_for(1), 0, "no RouterArrive queued");
        let got = grid.collect_for(1);
        assert_eq!(got.len(), 2);
        assert!(grid.is_empty());
    }

    fn credit_at(time: SimTime) -> ShardMsg {
        ShardMsg::CreditArrive {
            time,
            router: RouterId(1),
            port: Port(2),
            vc: 0,
        }
    }

    fn packet_arrive_at(time: SimTime) -> ShardMsg {
        ShardMsg::RouterArrive {
            time,
            router: RouterId(4),
            port: Port(1),
            vc: 0,
            packet: Packet {
                id: 7,
                src: NodeId(0),
                dst: NodeId(9),
                src_router: RouterId(0),
                dst_router: RouterId(4),
                dst_group: dragonfly_topology::ids::GroupId(1),
                src_group: dragonfly_topology::ids::GroupId(0),
                src_slot: 0,
                size_bytes: 128,
                created_ns: 0,
                injected_ns: 0,
                hops: 0,
                vc: 0,
                route: crate::packet::RouteInfo::default(),
                last_router: None,
                last_out_port: None,
                last_decision_ns: 0,
                pending_decision: None,
            },
        }
    }

    #[test]
    fn parities_are_independent_buffers() {
        // Mail posted while finishing an even window must not be visible
        // to an odd-parity drain, and vice versa — that separation is what
        // lets window w+1's compute overlap window w's exchange.
        let grid = MailGrid::new(2);
        grid.post(0, 1, 0, &mut vec![credit_at(400)]);
        grid.post(0, 1, 1, &mut vec![credit_at(550), credit_at(560)]);
        assert_eq!(grid.collect_parity_for(1, 1).len(), 2, "odd parity");
        assert!(!grid.is_empty(), "even-parity mail is still in transit");
        assert_eq!(grid.collect_parity_for(1, 0).len(), 1, "even parity");
        assert!(grid.is_empty());
        // Parity indices wrap modulo MAIL_PARITIES, matching `w % 2`.
        grid.post(0, 1, 4, &mut vec![credit_at(700)]);
        assert_eq!(grid.collect_parity_for(1, 2).len(), 1);
    }

    #[test]
    fn drained_while_filling_mail_waits_for_the_next_same_parity_drain() {
        // The pipelined race: shard 1 drains parity 0 for window w at the
        // same wall-clock moment shard 0 posts its window-w outbox. If the
        // drain ran first, the mail must simply sit in the buffer until
        // the next parity-0 drain (window w+2) — before its conservative
        // deadline — rather than being lost or delivered to parity 1.
        let grid = MailGrid::new(2);
        assert!(grid.collect_parity_for(1, 0).is_empty(), "drain ran first");
        grid.post(0, 1, 0, &mut vec![packet_arrive_at(900)]); // racing post
        assert!(
            grid.collect_parity_for(1, 1).is_empty(),
            "the odd-parity drain of window w+1 must not see it"
        );
        assert_eq!(grid.packets_bound_for(1), 1, "still counted in transit");
        let late = grid.collect_parity_for(1, 0); // window w+2's drain
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].time(), 900);
        assert!(grid.is_empty());
    }

    #[test]
    fn window_boundary_packets_keep_their_exact_firing_time() {
        // A packet timed exactly on a window edge belongs to the *next*
        // window (windows are half-open). The mailbox layer must preserve
        // the timestamp bit-for-bit so the destination queue sorts it by
        // content key exactly where the sequential engine would.
        let grid = MailGrid::new(3);
        let window = 150; // L/2 for the paper's 300 ns global latency
        let boundary = 4 * window; // start of window 4
        grid.post(2, 0, 1, &mut vec![packet_arrive_at(boundary)]);
        grid.post(1, 0, 1, &mut vec![credit_at(boundary - 1)]);
        let got = grid.collect_parity_for(0, 3); // parity 3 % 2 == 1
        assert_eq!(got.len(), 2);
        // Ascending sender order: shard 1's credit, then shard 2's packet.
        assert_eq!(got[0].time(), boundary - 1);
        assert_eq!(got[1].time(), boundary);
        assert!(got[1].carries_packet());
    }

    #[test]
    fn full_collect_drains_both_parities() {
        // Between runs (and in barrier mode) the engine must recover every
        // in-flight message regardless of which parity it was posted to.
        let grid = MailGrid::new(2);
        grid.post(0, 1, 0, &mut vec![credit_at(10)]);
        grid.post(0, 1, 1, &mut vec![credit_at(20)]);
        assert_eq!(grid.collect_for(1).len(), 2);
        assert!(grid.is_empty_for(1));
    }

    #[test]
    fn window_deque_gates_lag_two_windows() {
        let dq = WindowDeque::new(3, 1_000, 150, 10_000);
        assert_eq!(dq.window_ns(), 150);
        assert_eq!(dq.start_of(0), 1_000);
        assert_eq!(dq.end_incl_of(0), 1_149);
        assert_eq!(dq.start_of(2), 1_300);
        // Windows 0 and 1 are gate-open from the start (lag 2)...
        assert!(dq.gate_open(0));
        assert!(dq.gate_open(1));
        assert!(!dq.gate_open(2), "window 2 needs everyone past window 0");
        // ...and the gate follows the *slowest* shard.
        dq.complete(0, 0);
        dq.complete(1, 0);
        assert!(!dq.gate_open(2), "shard 2 has not finished window 0");
        dq.complete(2, 0);
        assert!(dq.gate_open(2));
        assert!(!dq.gate_open(3));
        assert_eq!(dq.min_completed(), 1);
        assert_eq!(dq.next_window(0), 1);
    }

    #[test]
    fn window_deque_parks_at_the_cap() {
        // Cap mid-window: the last runnable window is clamped, the next
        // one is parked.
        let dq = WindowDeque::new(1, 0, 100, 250);
        assert_eq!(dq.end_incl_of(2), 250, "clamped to the cap");
        assert!(!dq.parked(2), "window 2 starts at 200 <= cap");
        assert!(dq.parked(3), "window 3 starts at 300 > cap");
        assert!(!dq.all_parked());
        dq.complete(0, 0);
        dq.complete(0, 1);
        dq.complete(0, 2);
        assert!(dq.all_parked());
        assert!(!dq.is_done(), "parking is observed, done is declared");
        dq.finish();
        assert!(dq.is_done());
    }

    #[test]
    fn spin_barrier_synchronises_phases() {
        use std::sync::atomic::AtomicU32;
        let barrier = SpinBarrier::new(4);
        let phase_sum = AtomicU32::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for round in 0..50u32 {
                        phase_sum.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // Between barriers every thread must observe the
                        // full round's worth of increments.
                        assert_eq!(phase_sum.load(Ordering::SeqCst), (round + 1) * 4);
                        barrier.wait();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(phase_sum.load(Ordering::SeqCst), 200);
    }
}
