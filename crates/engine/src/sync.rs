//! Conservative-parallel synchronisation: the shard plan (who owns which
//! group), the lookahead window, cross-shard mailboxes and the spin
//! barrier that paces the per-window lockstep.
//!
//! ## The conservative argument
//!
//! Routers are partitioned by Dragonfly group, so the only links that can
//! cross a shard boundary are **global** links. Every cross-shard
//! interaction — a packet traversing a global link, a credit or an RL
//! feedback message returning across one — is scheduled at least one
//! global-link latency `L` into the future. Shards therefore execute
//! windows of at most `L` simulated nanoseconds in lockstep: any message a
//! shard sends while executing window `[S, S+L)` fires at `now + L ≥ S+L`,
//! i.e. strictly after the window, so delivering mailboxes at the window
//! barrier is always in time. No null messages, no rollback.
//!
//! ## Determinism
//!
//! Mailbox delivery order does not matter: events are totally ordered by a
//! content-derived key (see [`crate::event::event_key`]), so a message
//! sorts into the destination queue exactly where the single-queue engine
//! would have processed it. `shards = 1` and `shards = N` produce
//! bit-for-bit identical outputs.

use crate::packet::Packet;
use crate::routing::FeedbackMsg;
use crate::time::SimTime;
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::Dragonfly;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "no pending event" in the shared next-event hints.
pub const NO_EVENT: SimTime = SimTime::MAX;

/// How routers and nodes are partitioned into shards, plus the lookahead.
///
/// Shards own contiguous, balanced group ranges, so a router's shard is a
/// single table lookup and all of a shard's state is contiguous.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards (≥ 1).
    num_shards: usize,
    /// The conservative lookahead window in ns (= global-link latency).
    lookahead: SimTime,
    /// Group → shard.
    group_to_shard: Vec<u16>,
    /// Shard → first group (plus a trailing total, so `groups_of(i)` is
    /// `group_start[i]..group_start[i + 1]`).
    group_start: Vec<usize>,
    /// Routers per group (the topology's `a`).
    routers_per_group: usize,
}

impl ShardPlan {
    /// Partition `topo` into `num_shards` contiguous group ranges.
    pub fn new(topo: &Dragonfly, num_shards: usize, lookahead: SimTime) -> Self {
        let groups = topo.num_groups();
        let n = num_shards.clamp(1, groups.max(1));
        assert!(
            n == 1 || lookahead > 0,
            "conservative sharding needs a positive lookahead window"
        );
        let mut group_to_shard = vec![0u16; groups];
        let mut group_start = Vec::with_capacity(n + 1);
        for shard in 0..n {
            let start = shard * groups / n;
            group_start.push(start);
            let end = (shard + 1) * groups / n;
            group_to_shard[start..end].fill(shard as u16);
        }
        group_start.push(groups);
        Self {
            num_shards: n,
            lookahead,
            group_to_shard,
            group_start,
            routers_per_group: topo.config().a,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The conservative lookahead window (ns).
    #[inline]
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// The shard owning a group.
    #[inline]
    pub fn shard_of_group(&self, group: usize) -> usize {
        self.group_to_shard[group] as usize
    }

    /// The shard owning a router.
    #[inline]
    pub fn shard_of_router(&self, router: RouterId) -> usize {
        self.group_to_shard[router.index() / self.routers_per_group] as usize
    }

    /// The contiguous group range owned by a shard.
    pub fn groups_of(&self, shard: usize) -> std::ops::Range<usize> {
        self.group_start[shard]..self.group_start[shard + 1]
    }
}

/// A cross-shard message, timestamped with its (future) firing time.
///
/// `RouterArrive` carries the packet **by value**: the sender frees its
/// arena slot when the packet leaves the shard and the receiver allocates
/// a fresh slot on delivery, so [`crate::arena::PacketRef`] handles never
/// cross a shard boundary un-translated.
#[derive(Debug, Clone)]
pub enum ShardMsg {
    /// A packet crossing a global link into another shard.
    RouterArrive {
        /// Firing time at the destination router.
        time: SimTime,
        /// Destination router.
        router: RouterId,
        /// Input port on the destination router.
        port: Port,
        /// Virtual channel of the arrival.
        vc: u8,
        /// The packet itself, extracted from the sender's arena.
        packet: Packet,
    },
    /// A credit returning upstream across a global link.
    CreditArrive {
        /// Firing time at the upstream router.
        time: SimTime,
        /// Upstream router receiving the credit.
        router: RouterId,
        /// Output port of the upstream router the credit belongs to.
        port: Port,
        /// Virtual channel of the credit.
        vc: u8,
    },
    /// RL feedback returning upstream across a global link.
    RlFeedback {
        /// Firing time at the upstream router.
        time: SimTime,
        /// Upstream router whose agent receives the feedback.
        router: RouterId,
        /// The feedback payload.
        msg: FeedbackMsg,
    },
}

impl ShardMsg {
    /// The simulated time at which the message fires.
    pub fn time(&self) -> SimTime {
        match self {
            ShardMsg::RouterArrive { time, .. }
            | ShardMsg::CreditArrive { time, .. }
            | ShardMsg::RlFeedback { time, .. } => *time,
        }
    }

    /// Whether the message carries a packet (used for drain accounting).
    pub fn carries_packet(&self) -> bool {
        matches!(self, ShardMsg::RouterArrive { .. })
    }
}

/// One injection queued for a shard's NIC, with its globally assigned
/// packet id (ids are handed out by the coordinator in injector order, so
/// they are independent of the shard count).
#[derive(Debug, Clone, Copy)]
pub struct QueuedInjection {
    /// Generation time at the source node.
    pub time: SimTime,
    /// Generating node (owned by the receiving shard).
    pub src: dragonfly_topology::ids::NodeId,
    /// Destination node (any shard).
    pub dst: dragonfly_topology::ids::NodeId,
    /// Pre-assigned global packet id.
    pub id: u64,
}

/// The `N × N` cross-shard mailbox fabric.
///
/// `boxes[src][dst]` is written only by shard `src` (at the end of its
/// compute phase) and drained only by shard `dst` (at the start of its
/// next compute phase); the two accesses are separated by the window
/// barrier, so every lock acquisition is uncontended — the mutexes exist
/// to satisfy `Sync`, not to arbitrate.
#[derive(Debug, Default)]
pub struct MailGrid {
    boxes: Vec<Vec<Mutex<Vec<ShardMsg>>>>,
}

impl MailGrid {
    /// An `n × n` grid of empty mailboxes.
    pub fn new(n: usize) -> Self {
        Self {
            boxes: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
        }
    }

    /// Append `msgs` to the `src → dst` mailbox (cheap vector splice).
    pub fn post(&self, src: usize, dst: usize, msgs: &mut Vec<ShardMsg>) {
        if !msgs.is_empty() {
            self.boxes[src][dst].lock().append(msgs);
        }
    }

    /// Take everything addressed to `dst`, in ascending sender order.
    pub fn collect_for(&self, dst: usize) -> Vec<ShardMsg> {
        let mut out = Vec::new();
        for row in &self.boxes {
            out.append(&mut row[dst].lock());
        }
        out
    }

    /// Packets currently travelling to `dst` inside mailboxes.
    pub fn packets_bound_for(&self, dst: usize) -> u64 {
        self.boxes
            .iter()
            .map(|row| {
                row[dst]
                    .lock()
                    .iter()
                    .filter(|m| m.carries_packet())
                    .count() as u64
            })
            .sum()
    }

    /// Whether every mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes
            .iter()
            .all(|row| row.iter().all(|b| b.lock().is_empty()))
    }
}

/// A sense-reversing spin barrier for the per-window lockstep.
///
/// Windows are hundreds of nanoseconds of simulated time but only tens of
/// microseconds of wall time, so a futex-based barrier would dominate; the
/// spin loop keeps the synchronisation cost to a cache-line ping. After a
/// bounded spin the waiters yield, so oversubscribed machines (more shards
/// than cores) still make progress.
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `participants` threads.
    pub fn new(participants: usize) -> Self {
        Self {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all participants arrive. Returns `true` on exactly one
    /// thread per generation (the last arrival), which the caller may use
    /// for leader-only work — the engine instead fixes shard 0 as the
    /// leader between two barriers, so this return is informational.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 512 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

/// Shared per-run state of the threaded window loop.
#[derive(Debug)]
pub struct WindowSync {
    /// First barrier: all compute phases of the previous round finished.
    pub pre: SpinBarrier,
    /// Second barrier: the leader published the next window (or `done`).
    pub post: SpinBarrier,
    /// Exclusive end of the current window (valid after `post`).
    pub window_end: AtomicU64,
    /// Set by the leader when no further window will run.
    pub done: AtomicBool,
    /// Per-shard "earliest thing I know about" hints: the minimum of the
    /// shard's queue head and every message it sent in the last window.
    pub next_hint: Vec<AtomicU64>,
    /// Injection inboxes, filled by the leader and drained by each shard
    /// at the start of its compute phase (uncontended, like the mailboxes).
    pub injections: Vec<Mutex<std::collections::VecDeque<QueuedInjection>>>,
}

impl WindowSync {
    /// Fresh per-run state for `n` shards.
    pub fn new(n: usize) -> Self {
        Self {
            pre: SpinBarrier::new(n),
            post: SpinBarrier::new(n),
            window_end: AtomicU64::new(0),
            done: AtomicBool::new(false),
            next_hint: (0..n).map(|_| AtomicU64::new(NO_EVENT)).collect(),
            injections: (0..n)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
        }
    }

    /// The minimum of all shard hints.
    pub fn min_hint(&self) -> SimTime {
        self.next_hint
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .min()
            .unwrap_or(NO_EVENT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;

    #[test]
    fn plan_partitions_groups_contiguously_and_exhaustively() {
        let topo = Dragonfly::new(DragonflyConfig::tiny()); // 9 groups, a = 4
        for n in [1, 2, 3, 4, 9] {
            let plan = ShardPlan::new(&topo, n, 300);
            assert_eq!(plan.num_shards(), n);
            let mut covered = 0;
            for shard in 0..n {
                let range = plan.groups_of(shard);
                for g in range.clone() {
                    assert_eq!(plan.shard_of_group(g), shard);
                }
                covered += range.len();
            }
            assert_eq!(covered, topo.num_groups());
            // Router ownership agrees with group ownership.
            for r in topo.routers() {
                let g = topo.group_of_router(r);
                assert_eq!(plan.shard_of_router(r), plan.shard_of_group(g.index()));
            }
        }
    }

    #[test]
    fn plan_clamps_oversized_requests() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let plan = ShardPlan::new(&topo, 100, 300);
        assert_eq!(plan.num_shards(), 9, "one shard per group at most");
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn plan_rejects_multi_shard_zero_lookahead() {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        ShardPlan::new(&topo, 2, 0);
    }

    #[test]
    fn mailboxes_deliver_and_count_packets() {
        let grid = MailGrid::new(2);
        let mut out = vec![
            ShardMsg::CreditArrive {
                time: 400,
                router: RouterId(1),
                port: Port(2),
                vc: 0,
            },
            ShardMsg::RlFeedback {
                time: 350,
                router: RouterId(1),
                msg: FeedbackMsg {
                    packet_id: 7,
                    src: NodeId(0),
                    dst: NodeId(9),
                    dst_router: RouterId(4),
                    dst_group: dragonfly_topology::ids::GroupId(1),
                    src_slot: 0,
                    port: Port(5),
                    reward_ns: 10.0,
                    downstream_estimate_ns: 20.0,
                },
            },
        ];
        grid.post(0, 1, &mut out);
        assert!(out.is_empty(), "post splices the batch out");
        assert!(!grid.is_empty());
        assert_eq!(grid.packets_bound_for(1), 0, "no RouterArrive queued");
        let got = grid.collect_for(1);
        assert_eq!(got.len(), 2);
        assert!(grid.is_empty());
    }

    #[test]
    fn spin_barrier_synchronises_phases() {
        use std::sync::atomic::AtomicU32;
        let barrier = SpinBarrier::new(4);
        let phase_sum = AtomicU32::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for round in 0..50u32 {
                        phase_sum.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // Between barriers every thread must observe the
                        // full round's worth of increments.
                        assert_eq!(phase_sum.load(Ordering::SeqCst), (round + 1) * 4);
                        barrier.wait();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(phase_sum.load(Ordering::SeqCst), 200);
    }
}
