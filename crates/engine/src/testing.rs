//! Minimal helpers for engine-level tests and micro-benchmarks.
//!
//! `dragonfly-routing` contains the real algorithm implementations; this
//! module only provides a bare-bones minimal-routing agent so the engine
//! can be exercised without a dependency cycle.

use crate::config::EngineConfig;
use crate::packet::Packet;
use crate::routing::{vc_for_next_hop, Decision, RouterAgent, RouterCtx, RoutingAlgorithm};
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::{AnyTopology, Topology};

/// Dimension-order style minimal routing used only for tests: every router
/// forwards along the unique minimal path.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimalTestRouting;

impl RoutingAlgorithm for MinimalTestRouting {
    fn name(&self) -> String {
        "MIN(test)".to_string()
    }

    fn num_vcs(&self) -> usize {
        3
    }

    fn make_agent(
        &self,
        _topology: &AnyTopology,
        _config: &EngineConfig,
        router: RouterId,
        _seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(MinimalTestAgent { router })
    }
}

/// The per-router agent of [`MinimalTestRouting`].
#[derive(Debug, Clone, Copy)]
pub struct MinimalTestAgent {
    router: RouterId,
}

impl RouterAgent for MinimalTestAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        let port = ctx
            .topology
            .minimal_port(self.router, packet.dst_router)
            .expect("decide is never called at the destination router");
        Decision {
            port,
            vc: vc_for_next_hop(packet, ctx.num_vcs()),
        }
    }

    fn estimate(&self, ctx: &RouterCtx<'_>, packet: &Packet) -> f64 {
        let kinds = ctx
            .topology
            .minimal_hop_kinds(self.router, packet.dst_router);
        ctx.config.theoretical_delivery_ns(&kinds) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    #[test]
    fn factory_produces_agents_for_every_router() {
        let topo = AnyTopology::from(dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()));
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(algo.num_vcs());
        assert_eq!(algo.num_vcs(), 3);
        assert!(algo.name().contains("MIN"));
        for r in topo.routers() {
            let _agent = algo.make_agent(&topo, &cfg, r, 0);
        }
    }
}
