//! A slab-style packet arena: the zero-allocation home of every in-flight
//! [`Packet`].
//!
//! The simulation hot path moves one packet per fabric hop between a NIC
//! queue, an event, an input buffer and an output queue. Boxing the packet
//! for each hop (the original design) costs one heap allocation, one
//! deallocation and a pointer chase per hop. Instead, every packet now
//! lives in a single contiguous `Vec<Packet>` for its whole life and all
//! queues and events carry a 4-byte [`PacketRef`] index. Freed slots are
//! recycled through a LIFO free list, so after warmup the arena performs no
//! allocation at all and reuses the hottest (most recently touched) slots
//! first.
//!
//! Slot assignment is deterministic: allocation order and the LIFO free
//! list depend only on the event order, which is itself deterministic, so
//! arena indices never introduce run-to-run variation.

use crate::packet::Packet;
use serde::{Deserialize, Serialize};

/// A 4-byte handle to a packet stored in a [`PacketArena`].
///
/// Refs are only meaningful for the arena that issued them and must not be
/// used after [`PacketArena::free`] — debug builds check both liveness and
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketRef(pub u32);

impl PacketRef {
    /// The slot index inside the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slab of in-flight packets with a LIFO free list.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    /// Liveness mirror for use-after-free detection in debug builds.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `capacity` packets before regrowing.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::with_capacity(capacity),
        }
    }

    /// Store `packet`, reusing a freed slot when one is available.
    #[inline]
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = packet;
                #[cfg(debug_assertions)]
                {
                    self.live[slot as usize] = true;
                }
                PacketRef(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("packet arena exceeded u32::MAX live packets");
                self.slots.push(packet);
                #[cfg(debug_assertions)]
                self.live.push(true);
                PacketRef(slot)
            }
        }
    }

    /// Borrow the packet behind `r`.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[r.index()], "read of freed packet slot {}", r.0);
        &self.slots[r.index()]
    }

    /// Mutably borrow the packet behind `r`.
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[r.index()], "write to freed packet slot {}", r.0);
        &mut self.slots[r.index()]
    }

    /// Return `r`'s slot to the free list. The packet data is left in place
    /// and overwritten by the next [`PacketArena::alloc`] that reuses it.
    #[inline]
    pub fn free(&mut self, r: PacketRef) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[r.index()], "double free of packet slot {}", r.0);
            self.live[r.index()] = false;
        }
        self.free.push(r.0);
    }

    /// Packets currently alive in the arena.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created (the high-water mark of concurrently live
    /// packets).
    pub fn high_water(&self) -> usize {
        self.slots.len()
    }

    /// Heap footprint of the arena in bytes (slot storage plus free list),
    /// for the bounded-memory accounting of the scale benches. Bounded by
    /// the peak number of concurrently live packets, not by the number of
    /// packets ever delivered.
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Packet>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Snapshot every slot and the free list for a checkpoint. Freed
    /// slots are included verbatim (their stale contents are never read),
    /// so restored allocation reuses exactly the same slot sequence.
    pub fn checkpoint(&self) -> crate::checkpoint::ArenaCheckpoint {
        crate::checkpoint::ArenaCheckpoint {
            slots: self.slots.clone(),
            free: self.free.clone(),
        }
    }

    /// Replace this arena's contents with a checkpoint's (the debug-build
    /// liveness mirror is rebuilt from the free list).
    pub fn restore(&mut self, ck: &crate::checkpoint::ArenaCheckpoint) {
        self.slots = ck.slots.clone();
        self.free = ck.free.clone();
        #[cfg(debug_assertions)]
        {
            self.live = vec![true; self.slots.len()];
            for &slot in &self.free {
                self.live[slot as usize] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteInfo;
    use dragonfly_topology::ids::{GroupId, NodeId, RouterId};

    fn packet(id: u64) -> Packet {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            src_router: RouterId(0),
            dst_router: RouterId(0),
            dst_group: GroupId(0),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: 0,
            injected_ns: 0,
            hops: 0,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }

    #[test]
    fn alloc_get_free_round_trip() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(packet(1));
        let b = arena.alloc(packet(2));
        assert_eq!(arena.get(a).id, 1);
        assert_eq!(arena.get(b).id, 2);
        assert_eq!(arena.live_count(), 2);
        arena.get_mut(a).hops = 3;
        assert_eq!(arena.get(a).hops, 3);
        arena.free(a);
        assert_eq!(arena.live_count(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(packet(1));
        let b = arena.alloc(packet(2));
        arena.free(a);
        arena.free(b);
        // LIFO: the most recently freed slot comes back first.
        let c = arena.alloc(packet(3));
        assert_eq!(c, b);
        let d = arena.alloc(packet(4));
        assert_eq!(d, a);
        assert_eq!(arena.high_water(), 2, "no growth while slots are free");
        assert_eq!(arena.get(c).id, 3);
        assert_eq!(arena.get(d).id, 4);
    }

    #[test]
    fn high_water_tracks_peak_live_packets() {
        let mut arena = PacketArena::with_capacity(4);
        let refs: Vec<PacketRef> = (0..4).map(|i| arena.alloc(packet(i))).collect();
        for r in &refs {
            arena.free(*r);
        }
        for i in 0..4 {
            arena.alloc(packet(10 + i));
        }
        assert_eq!(arena.high_water(), 4);
        assert_eq!(arena.live_count(), 4);
    }
}
