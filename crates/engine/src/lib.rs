//! # dragonfly-engine
//!
//! A flit-level, event-driven interconnect simulator — the substrate the
//! Q-adaptive paper builds on (the paper uses SST/Merlin; this crate is a
//! from-scratch Rust equivalent at the same modelling granularity). The
//! engine is **topology-agnostic**: it simulates any
//! [`dragonfly_topology::Topology`] implementation (Dragonfly, fat-tree,
//! HyperX, …) carried as a [`dragonfly_topology::AnyTopology`]; per-router
//! port layouts, link kinds and the sharding partition all come from the
//! trait.
//!
//! ## Model
//!
//! * **Packets** are single 128 B flits (the paper's configuration), so the
//!   flit and packet level coincide. Serialisation over a 4 GB/s link takes
//!   32 ns per packet.
//! * **Routers** are input-output queued: every port has per-virtual-channel
//!   input buffers (20 packets each) and per-virtual-channel output queues.
//!   A packet arriving on an input buffer waits one router traversal
//!   latency, asks the router's [`routing::RouterAgent`] for an output port,
//!   moves to the corresponding output queue when it has space, and is then
//!   serialised onto the link when a credit for the downstream buffer is
//!   available.
//! * **Credit-based flow control**: a router may only send a packet to a
//!   neighbour when the neighbour's input buffer for the chosen virtual
//!   channel has a free slot; credits travel back with one link latency.
//!   The network is lossless.
//! * **Links** have 30 ns (local) / 300 ns (global) latency and 4 GB/s
//!   bandwidth, matching the paper's experimental setup.
//! * **NICs** hold an unbounded source queue per compute node (offered load
//!   beyond what the network accepts accumulates there, which is what lets
//!   the measured throughput saturate below the offered load).
//! * **Reinforcement-learning feedback**: whenever router *y* forwards a
//!   packet it received from router *x*, the engine delivers the per-hop
//!   delay (the RL reward) and *y*'s own remaining-time estimate back to
//!   *x*'s agent after one link latency, modelling the paper's piggy-backing
//!   of rewards on credit/control traffic.
//!
//! ## Scheduler and packet arena (the hot path)
//!
//! The event loop is the performance bottleneck of every experiment, so its
//! two central data structures are built for speed without giving up
//! determinism:
//!
//! * **Event scheduling** uses a two-level *calendar queue*
//!   ([`event::CalendarQueue`]): a power-of-two wheel of 1 ns buckets
//!   sized to the link/serialisation latencies (which bound how far ahead
//!   the fabric ever schedules) plus a binary-heap overflow level for the
//!   rare far-future event. Push and pop are O(1) amortised instead of the
//!   binary heap's O(log n), and pops walk a compact occupancy bitmap
//!   instead of chasing a heap. The classic `BinaryHeap` scheduler is kept
//!   behind the same [`event::Scheduler`] trait
//!   ([`config::SchedulerKind::BinaryHeap`]) as the reference
//!   implementation for differential tests and A/B benchmarks.
//! * **Packets** live in a slab-style [`arena::PacketArena`] for their
//!   whole life *within a shard*; events, NIC queues and router buffers
//!   move 4-byte [`arena::PacketRef`] handles instead of boxed packets, so
//!   a fabric hop performs no heap allocation and no pointer chase.
//!
//! Three further per-event overheads matter only once systems reach the
//! 100k-node scale, where the event count per run is in the millions and
//! every queue and mailbox is three orders of magnitude busier than on
//! the paper's 1,056 nodes:
//!
//! * **Same-tick ordering is a heap, not an insertion sort.** The
//!   calendar queue keeps each 1 ns bucket's events in a small min-heap
//!   ordered by `(key, seq)` rather than a sorted Vec with positional
//!   inserts: at scale a single nanosecond can hold hundreds of events
//!   for one bucket, and the positional insert's memmove made bucket
//!   maintenance quadratic in the tick population. The heap preserves
//!   the exact `(time, key, seq)` total order the determinism contract
//!   requires (pop order is identical; only the transient in-bucket
//!   layout differs).
//! * **Mailbox draining reuses buffers.** Window exchange drains
//!   cross-shard mail directly from the [`sync::MailGrid`] into a
//!   per-shard scratch buffer that lives for the whole run
//!   (`Shard::deliver_from_grid`), instead of collecting each window's
//!   mail into a fresh `Vec` — at half-lookahead window granularity the
//!   allocator was on the per-window critical path.
//! * **Queues are pre-sized for the fabric.** Event queues are sized
//!   from the entity count (routers + NICs) at construction and restore
//!   (`EventQueue::for_config_with_entities`), so the first measured
//!   window does not pay a cascade of geometric regrowths on a fabric
//!   whose steady-state event population is predictable up front.
//!
//! ## Sharded conservative-parallel execution
//!
//! One simulation can run across several cores ([`config::ShardKind`]):
//! routers are partitioned by **locality domain** — the topology's
//! sharding unit: Dragonfly groups, fat-tree pods (plus their slice of
//! the core switches), HyperX rows — into shards ([`sync::ShardPlan`]).
//! The [`dragonfly_topology::Topology`] contract guarantees each domain
//! is a contiguous router/node id range and that every link between
//! routers of different domains carries at least
//! `Topology::min_cross_domain_latency` (the global-link latency on all
//! shipped topologies). Each shard owns its own calendar queue, packet
//! arena and observer clone ([`shard::Shard`]), and shards execute
//! lockstep windows of one **lookahead** — that minimum cross-domain
//! latency, the minimum delay of any cross-shard interaction (packet
//! over a cross-domain link, returning credit, RL feedback). Cross-shard
//! events are exchanged
//! through per-pair mailboxes ([`sync::MailGrid`]) at window barriers;
//! packets cross **by value**, so a `PacketRef` is never dereferenced
//! outside the arena that issued it. Within a window every shard runs
//! lock-free; no null messages and no rollback are needed
//! (bounded-window conservative PDES).
//!
//! ## The two-phase window pipeline (overlapped windows)
//!
//! With [`config::EngineConfig::pipeline`] (the default), the lockstep
//! barrier is replaced by an **overlapped** schedule: windows shrink to
//! half a lookahead (`W = L/2`), each window splits into a *compute*
//! phase and an *exchange* phase over **double-buffered** per-pair
//! mailboxes (one buffer per window parity `w mod 2`), and shards are
//! paced by the lagged gate of a [`sync::WindowDeque`] — shard `k` may
//! start window `w` as soon as every shard has finished window `w − 2`.
//! Mail sent while computing window `w` fires at `≥ start(w) + L =
//! start(w + 2)`, so it only has to reach its destination two windows
//! later; posting into parity `w mod 2` at the end of window `w` and
//! draining the same parity at the start of window `w + 2` meets that
//! deadline exactly, while one shard's compute overlaps its neighbours'
//! compute *and* the previous window's exchange. `pipeline = false`
//! keeps the PR 3 lockstep barrier as the reference execution mode.
//!
//! **Work stealing — whole windows only.** The `WindowDeque` doubles as
//! a shared work frontier: an idle worker thread claims *any* shard
//! whose next window has passed the gate and executes it (drain →
//! compute → post) on that shard's own queue and arena. The granularity
//! rule is load-bearing: a work item is always **one whole window of one
//! shard**, never an individual event. Because a shard's windows execute
//! in order under the shard's lock, the event sequence each shard
//! processes is identical no matter which worker runs it — stealing
//! redistributes wall-clock work, not events. Stealing at event
//! granularity would interleave two shards' state and break both
//! locality and the ordering argument below.
//!
//! **Why determinism survives both.** Events are totally ordered by the
//! content-derived key (next section), so *when* a cross-shard message
//! is merged into the destination queue — at the barrier, one window
//! early from a racing parity drain, or two windows later after a
//! drained-while-filling race — cannot change the order in which events
//! are processed, only where in the queue the message briefly waits.
//! Combined with the whole-window stealing rule and injector-order
//! packet-id assignment under a single feeder cursor, `shards = 1` and
//! `shards = N` are bit-for-bit identical with pipelining on or off
//! (pinned by the `pipeline_differential` and `pipeline_determinism`
//! property suites on top of the PR 3 differentials).
//!
//! **Determinism contract:** events are totally ordered by
//! `(time, key, seq)` where `key` is a *content-derived* priority
//! ([`event::event_key`]: event class + targeted entity + packet id) and
//! `seq` (assigned at push) only breaks ties between identical events.
//! Because the key does not depend on push order, a cross-shard event
//! sorts into the destination queue exactly where the single-queue engine
//! would have processed it, making **every shard count bit-for-bit
//! identical** — `shards = 1` vs `shards = N` is pinned by the
//! `shard_differential` integration test, and calendar-vs-heap by
//! `scheduler_differential`. Arena slot assignment recycles through a
//! per-shard LIFO free list and packet ids are assigned by the coordinator
//! in injector order, so neither introduces run-to-run or
//! across-shard-count variation.
//!
//! The engine is deterministic for a fixed seed, traffic injector and
//! routing algorithm — independent of scheduler choice, shard count and
//! thread scheduling.
//!
//! **Streaming statistics and determinism.** The contract extends to the
//! measurement side. Per-shard observers are merged in ascending shard
//! order, but order alone is not enough for floating-point aggregates: a
//! sharded run hands each shard a *subset* of the samples, so a mean or
//! quantile computed from partial floating-point sums could differ from
//! the single-shard value in the last bit. The `dragonfly-metrics`
//! collectors therefore accumulate exclusively in **integers** — latency
//! sums in `u128` nanoseconds, log-binned sketch and histogram buckets as
//! `u64` counters, time-series bins as integer packet/byte tallies. Each
//! delivered packet increments exactly one bin, integer addition is
//! associative and commutative, so *any* partition of the packets across
//! shards merges to the same totals and every derived statistic (mean,
//! p99, sketch quantile) is computed once, at reporting time, from
//! identical integers. This is what lets `shards = 1` vs `shards = N`
//! stay bit-for-bit even with bounded-memory streaming sketches in place
//! of exact sample vectors.
//!
//! ## Closed-loop task programs (delivery-triggered wakeups)
//!
//! Besides open-loop injector traffic, every node can run a straight-line
//! task program ([`workload::Op`]: compute delays, asynchronous sends,
//! counting receives, phase markers) installed via
//! [`engine::Engine::install_workload`]. Execution is *closed-loop*: a
//! `Recv` op blocks its node until the network has actually delivered the
//! counted messages, so generation reacts to backpressure instead of
//! following a rate.
//!
//! Delivery-triggered wakeups preserve the determinism contract by
//! construction:
//!
//! * Every task transition fires from one of two new event classes —
//!   [`event::EventKind::TaskWake`] (program start, compute completion)
//!   keyed by the node, and [`event::EventKind::TaskRecv`] (one message
//!   delivered) keyed by `(destination, source)` — so same-tick
//!   transitions have a content-derived total order like every other
//!   event. Two same-key `TaskRecv`s are commutative "+1" counter bumps,
//!   the one shape `seq` ties are allowed to break.
//! * A packet is always ejected by the shard that owns its destination
//!   node (host ports never cross shards), so the `TaskRecv` wakeup is a
//!   **shard-local** push at the delivery time — no new cross-shard
//!   channel, no lookahead interaction, and windows planned from
//!   `next_local_time()` see task events automatically in all three
//!   execution modes.
//! * Workload sends post packets at the node's own NIC through the same
//!   generation path as injector traffic, with ids from a disjoint
//!   deterministic namespace ([`workload::workload_packet_id`]: source
//!   node + per-node sequence), so id assignment cannot depend on which
//!   mode executes a window first.
//!
//! `Recv` matching is MPI-style per-source counting (no tags): order of
//! arrival is irrelevant, which is exactly what makes the blocked/ready
//! state a pure function of delivered-message counts rather than event
//! interleaving.
//!
//! ## Fault injection, drop accounting and recovery
//!
//! The engine can kill and restore links and routers mid-run
//! ([`fault::FaultSchedule`], installed via
//! [`engine::Engine::install_faults`]): a compiled schedule of port/router
//! liveness flips whose times are **quantized up to lookahead-window
//! boundaries**, so a fault lands between the same two windows no matter
//! the shard count or execution mode and the determinism contract above
//! survives fault injection unchanged. Routing agents see liveness
//! through [`routing::RouterCtx::port_up`] and fall back deterministically
//! (no extra RNG draws) when a candidate port is dead; packets stranded at
//! a fully dead router are **dropped with accounting** rather than lost:
//! the upstream credit is refunded, the observer hears
//! `packet_dropped`, and the source NIC receives a drop notice that
//! triggers a bounded, exponentially backed-off retransmit
//! ([`config::EngineConfig::max_retries`]). Conservation —
//! `generated == delivered + dropped + outstanding` — holds at every
//! instant of a faulted run ([`EngineStats::outstanding`]).
//!
//! ## Checkpoint / resume
//!
//! The engine can snapshot its complete mutable state between runs under
//! **any execution mode** — sharded, pipelined or sequential
//! ([`engine::Engine::checkpoint`] / [`engine::Engine::restore`], state
//! shapes in [`checkpoint`]): router buffers, NIC queues, the packet
//! arena, the pending event set *with its sequence counters* (so
//! tie-breaks replay identically), fault cursor, task programs, agent
//! RNG/Q-table state and the injector position. Snapshots are taken at a
//! window boundary, which is a globally consistent cut (no cross-shard
//! message is in flight), and are normalized to a canonical
//! **single-shard-equivalent form** that is independent of the partition
//! that produced it: a checkpoint taken at `shards = N` restores onto an
//! engine running `shards = M` for any `M`, pipeline on or off.
//! Restoring into a freshly built engine resumes **bit-for-bit**: the
//! resumed run is indistinguishable from the uninterrupted one, which
//! the `checkpoint_resume` differential suite in `dragonfly-sim` pins at
//! full-report equality across shard counts, pipeline modes and all
//! three fabrics.
//!
//! ## Who plugs in what
//!
//! * Routing algorithms implement [`routing::RoutingAlgorithm`] /
//!   [`routing::RouterAgent`] (see `dragonfly-routing` and
//!   `qadaptive-core`).
//! * Open-loop workloads implement [`injector::TrafficInjector`]
//!   (see `dragonfly-sim`, which adapts `dragonfly-traffic` patterns);
//!   closed-loop workloads compile to [`workload::NodeProgram`]s
//!   (see `dragonfly-workload`).
//! * Measurement code implements [`observer::SimObserver`]
//!   (see `dragonfly-metrics` collectors in `dragonfly-sim`).

pub mod arena;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod event;
pub mod fault;
pub mod injector;
pub mod nic;
pub mod observer;
pub mod packet;
pub mod router;
pub mod routing;
pub mod shard;
pub mod sync;
pub mod testing;
pub mod time;
pub mod workload;

pub use arena::{PacketArena, PacketRef};
pub use checkpoint::{AgentCheckpoint, EngineCheckpoint, InjectorCheckpoint};
pub use config::{EngineConfig, SchedulerKind, ShardKind};
pub use engine::{Engine, EngineStats, ShardDrain};
pub use fault::{CompiledFault, FaultOp, FaultSchedule};
pub use injector::{Injection, TrafficInjector};
pub use observer::{ShardObserver, SimObserver};
pub use packet::{Packet, RouteInfo};
pub use routing::{
    Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm, DEAD_PORT_PENALTY_NS,
};
pub use sync::ShardPlan;
pub use time::SimTime;
pub use workload::{NodeProgram, Op};
