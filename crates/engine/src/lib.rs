//! # dragonfly-engine
//!
//! A flit-level, event-driven Dragonfly network simulator — the substrate
//! the Q-adaptive paper builds on (the paper uses SST/Merlin; this crate is
//! a from-scratch Rust equivalent at the same modelling granularity).
//!
//! ## Model
//!
//! * **Packets** are single 128 B flits (the paper's configuration), so the
//!   flit and packet level coincide. Serialisation over a 4 GB/s link takes
//!   32 ns per packet.
//! * **Routers** are input-output queued: every port has per-virtual-channel
//!   input buffers (20 packets each) and per-virtual-channel output queues.
//!   A packet arriving on an input buffer waits one router traversal
//!   latency, asks the router's [`routing::RouterAgent`] for an output port,
//!   moves to the corresponding output queue when it has space, and is then
//!   serialised onto the link when a credit for the downstream buffer is
//!   available.
//! * **Credit-based flow control**: a router may only send a packet to a
//!   neighbour when the neighbour's input buffer for the chosen virtual
//!   channel has a free slot; credits travel back with one link latency.
//!   The network is lossless.
//! * **Links** have 30 ns (local) / 300 ns (global) latency and 4 GB/s
//!   bandwidth, matching the paper's experimental setup.
//! * **NICs** hold an unbounded source queue per compute node (offered load
//!   beyond what the network accepts accumulates there, which is what lets
//!   the measured throughput saturate below the offered load).
//! * **Reinforcement-learning feedback**: whenever router *y* forwards a
//!   packet it received from router *x*, the engine delivers the per-hop
//!   delay (the RL reward) and *y*'s own remaining-time estimate back to
//!   *x*'s agent after one link latency, modelling the paper's piggy-backing
//!   of rewards on credit/control traffic.
//!
//! ## Scheduler and packet arena (the hot path)
//!
//! The event loop is the performance bottleneck of every experiment, so its
//! two central data structures are built for speed without giving up
//! determinism:
//!
//! * **Event scheduling** uses a two-level *calendar queue*
//!   ([`event::CalendarQueue`]): a power-of-two wheel of 1 ns FIFO buckets
//!   sized to the link/serialisation latencies (which bound how far ahead
//!   the fabric ever schedules) plus a binary-heap overflow level for the
//!   rare far-future event. Push and pop are O(1) amortised instead of the
//!   binary heap's O(log n), and pops walk a compact occupancy bitmap
//!   instead of chasing a heap. The classic `BinaryHeap` scheduler is kept
//!   behind the same [`event::Scheduler`] trait
//!   ([`config::SchedulerKind::BinaryHeap`]) as the reference
//!   implementation for differential tests and A/B benchmarks.
//! * **Packets** live in a slab-style [`arena::PacketArena`] for their
//!   whole life; events, NIC queues and router buffers move 4-byte
//!   [`arena::PacketRef`] handles instead of boxed packets, so a fabric
//!   hop performs no heap allocation and no pointer chase.
//!
//! **Determinism contract:** events are totally ordered by
//! `(time, sequence)` where the sequence number is assigned at push time.
//! Every scheduler implementation must pop exactly this order, which makes
//! simulation outputs bit-for-bit identical across scheduler choices — the
//! `scheduler_differential` integration test enforces this by running
//! identical seeded workloads through both schedulers. Arena slot
//! assignment recycles through a LIFO free list and therefore also depends
//! only on the (deterministic) event order.
//!
//! The engine is deterministic for a fixed seed, traffic injector and
//! routing algorithm.
//!
//! ## Who plugs in what
//!
//! * Routing algorithms implement [`routing::RoutingAlgorithm`] /
//!   [`routing::RouterAgent`] (see `dragonfly-routing` and
//!   `qadaptive-core`).
//! * Workloads implement [`injector::TrafficInjector`]
//!   (see `dragonfly-sim`, which adapts `dragonfly-traffic` patterns).
//! * Measurement code implements [`observer::SimObserver`]
//!   (see `dragonfly-metrics` collectors in `dragonfly-sim`).

pub mod arena;
pub mod config;
pub mod engine;
pub mod event;
pub mod injector;
pub mod nic;
pub mod observer;
pub mod packet;
pub mod router;
pub mod routing;
pub mod testing;
pub mod time;

pub use arena::{PacketArena, PacketRef};
pub use config::{EngineConfig, SchedulerKind};
pub use engine::Engine;
pub use injector::{Injection, TrafficInjector};
pub use observer::SimObserver;
pub use packet::{Packet, RouteInfo};
pub use routing::{Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm};
pub use time::SimTime;
