//! # dragonfly-engine
//!
//! A flit-level, event-driven Dragonfly network simulator — the substrate
//! the Q-adaptive paper builds on (the paper uses SST/Merlin; this crate is
//! a from-scratch Rust equivalent at the same modelling granularity).
//!
//! ## Model
//!
//! * **Packets** are single 128 B flits (the paper's configuration), so the
//!   flit and packet level coincide. Serialisation over a 4 GB/s link takes
//!   32 ns per packet.
//! * **Routers** are input-output queued: every port has per-virtual-channel
//!   input buffers (20 packets each) and per-virtual-channel output queues.
//!   A packet arriving on an input buffer waits one router traversal
//!   latency, asks the router's [`routing::RouterAgent`] for an output port,
//!   moves to the corresponding output queue when it has space, and is then
//!   serialised onto the link when a credit for the downstream buffer is
//!   available.
//! * **Credit-based flow control**: a router may only send a packet to a
//!   neighbour when the neighbour's input buffer for the chosen virtual
//!   channel has a free slot; credits travel back with one link latency.
//!   The network is lossless.
//! * **Links** have 30 ns (local) / 300 ns (global) latency and 4 GB/s
//!   bandwidth, matching the paper's experimental setup.
//! * **NICs** hold an unbounded source queue per compute node (offered load
//!   beyond what the network accepts accumulates there, which is what lets
//!   the measured throughput saturate below the offered load).
//! * **Reinforcement-learning feedback**: whenever router *y* forwards a
//!   packet it received from router *x*, the engine delivers the per-hop
//!   delay (the RL reward) and *y*'s own remaining-time estimate back to
//!   *x*'s agent after one link latency, modelling the paper's piggy-backing
//!   of rewards on credit/control traffic.
//!
//! The engine is deterministic for a fixed seed, traffic injector and
//! routing algorithm.
//!
//! ## Who plugs in what
//!
//! * Routing algorithms implement [`routing::RoutingAlgorithm`] /
//!   [`routing::RouterAgent`] (see `dragonfly-routing` and
//!   `qadaptive-core`).
//! * Workloads implement [`injector::TrafficInjector`]
//!   (see `dragonfly-sim`, which adapts `dragonfly-traffic` patterns).
//! * Measurement code implements [`observer::SimObserver`]
//!   (see `dragonfly-metrics` collectors in `dragonfly-sim`).

pub mod config;
pub mod engine;
pub mod event;
pub mod injector;
pub mod nic;
pub mod observer;
pub mod packet;
pub mod router;
pub mod routing;
pub mod testing;
pub mod time;

pub use config::EngineConfig;
pub use engine::Engine;
pub use injector::{Injection, TrafficInjector};
pub use observer::SimObserver;
pub use packet::{Packet, RouteInfo};
pub use routing::{Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm};
pub use time::SimTime;
