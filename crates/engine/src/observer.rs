//! Measurement hooks.
//!
//! The engine reports packet lifecycle events to a [`SimObserver`]; metric
//! collection (latency statistics, throughput time series, ...) lives
//! outside the engine so that the hot simulation loop stays small and the
//! measurement policy (warmup windows, binning) is decided by the caller.

use crate::packet::Packet;
use crate::time::SimTime;
use dragonfly_topology::ids::NodeId;

/// Receiver of packet lifecycle notifications.
pub trait SimObserver: Send {
    /// A message was generated at its source node (entered the NIC source
    /// queue).
    fn packet_generated(&mut self, packet: &Packet, now: SimTime) {
        let _ = (packet, now);
    }

    /// A packet left its NIC and entered the router fabric.
    fn packet_injected(&mut self, packet: &Packet, now: SimTime) {
        let _ = (packet, now);
    }

    /// A packet was delivered to its destination node. `now` is the
    /// delivery time (including the final ejection link).
    fn packet_delivered(&mut self, packet: &Packet, now: SimTime) {
        let _ = (packet, now);
    }

    /// A closed-loop task program completed phase `phase` on `node` at
    /// `now` (see [`crate::workload::Op::Phase`]).
    fn task_phase_completed(&mut self, node: NodeId, phase: u32, now: SimTime) {
        let _ = (node, phase, now);
    }

    /// `node`'s task program ran to completion at `now`.
    fn task_rank_finished(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }

    /// `node` spent `waited_ns` blocked in a `Recv`; `barrier` is set for
    /// the synchronising receives of barrier/collective lowerings.
    fn task_blocked_wait(&mut self, node: NodeId, waited_ns: u64, barrier: bool) {
        let _ = (node, waited_ns, barrier);
    }

    /// A packet was dropped by the fabric (dead router/port under fault
    /// injection, or TTL exceeded). Dropped packets are never also
    /// delivered; conservation is `generated = delivered + dropped +
    /// in-flight`.
    fn packet_dropped(&mut self, packet: &Packet, now: SimTime) {
        let _ = (packet, now);
    }

    /// The source NIC re-generated a dropped workload message (a new packet
    /// instance with the same workload id). Counted in addition to the
    /// `packet_generated` call the retransmission also triggers.
    fn packet_retransmitted(&mut self, packet: &Packet, now: SimTime) {
        let _ = (packet, now);
    }

    /// The source NIC exhausted its retransmit budget for a workload
    /// message from `src` to `dst` and gave up; the destination will never
    /// observe the message (an unreachable pair while faults persist).
    fn message_gave_up(&mut self, src: NodeId, dst: NodeId, now: SimTime) {
        let _ = (src, dst, now);
    }
}

/// An observer that can be split across conservative-parallel shards and
/// merged back.
///
/// Each shard owns an independent clone of the observer and sees only the
/// lifecycle events of packets generated at / delivered to its own nodes;
/// [`ShardObserver::absorb`] folds the per-shard results together (the
/// engine absorbs in ascending shard order). For the merged result to be
/// identical to a single-shard run, implementations must accumulate in
/// order-independent form — integer sums, histograms, sample multisets —
/// rather than order-sensitive floating-point folds.
pub trait ShardObserver: SimObserver + Clone + Send {
    /// Fold another shard's observations into this one.
    fn absorb(&mut self, other: Self);
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

impl ShardObserver for NullObserver {
    fn absorb(&mut self, _other: Self) {}
}

/// An observer that just counts events — convenient in tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingObserver {
    /// Messages generated.
    pub generated: u64,
    /// Packets injected into the fabric.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of delivered-packet latencies in ns.
    pub total_latency_ns: u128,
    /// Sum of delivered-packet hop counts.
    pub total_hops: u64,
    /// Packets dropped by the fabric (faults / TTL).
    pub dropped: u64,
    /// Retransmitted packet instances.
    pub retransmits: u64,
    /// Messages abandoned after exhausting the retransmit budget.
    pub gave_up: u64,
}

impl SimObserver for CountingObserver {
    fn packet_generated(&mut self, _packet: &Packet, _now: SimTime) {
        self.generated += 1;
    }

    fn packet_injected(&mut self, _packet: &Packet, _now: SimTime) {
        self.injected += 1;
    }

    fn packet_delivered(&mut self, packet: &Packet, now: SimTime) {
        self.delivered += 1;
        self.total_latency_ns += packet.latency_ns(now) as u128;
        self.total_hops += packet.hops as u64;
    }

    fn packet_dropped(&mut self, _packet: &Packet, _now: SimTime) {
        self.dropped += 1;
    }

    fn packet_retransmitted(&mut self, _packet: &Packet, _now: SimTime) {
        self.retransmits += 1;
    }

    fn message_gave_up(&mut self, _src: NodeId, _dst: NodeId, _now: SimTime) {
        self.gave_up += 1;
    }
}

impl ShardObserver for CountingObserver {
    fn absorb(&mut self, other: Self) {
        self.generated += other.generated;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.total_latency_ns += other.total_latency_ns;
        self.total_hops += other.total_hops;
        self.dropped += other.dropped;
        self.retransmits += other.retransmits;
        self.gave_up += other.gave_up;
    }
}

impl CountingObserver {
    /// Mean delivered latency in ns (0 if nothing delivered).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / self.delivered as f64
        }
    }

    /// Mean hop count of delivered packets (0 if nothing delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteInfo;
    use dragonfly_topology::ids::{GroupId, NodeId, RouterId};

    fn packet(created: SimTime, hops: u8) -> Packet {
        Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            src_router: RouterId(0),
            dst_router: RouterId(0),
            dst_group: GroupId(0),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: created,
            injected_ns: created,
            hops,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }

    #[test]
    fn counting_observer_aggregates() {
        let mut obs = CountingObserver::default();
        obs.packet_generated(&packet(0, 0), 0);
        obs.packet_injected(&packet(0, 0), 10);
        obs.packet_delivered(&packet(0, 3), 500);
        obs.packet_delivered(&packet(100, 5), 700);
        assert_eq!(obs.generated, 1);
        assert_eq!(obs.injected, 1);
        assert_eq!(obs.delivered, 2);
        assert_eq!(obs.mean_latency_ns(), (500.0 + 600.0) / 2.0);
        assert_eq!(obs.mean_hops(), 4.0);
    }

    #[test]
    fn empty_observer_reports_zero_means() {
        let obs = CountingObserver::default();
        assert_eq!(obs.mean_latency_ns(), 0.0);
        assert_eq!(obs.mean_hops(), 0.0);
    }
}
