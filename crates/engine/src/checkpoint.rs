//! Checkpoint/resume of a running single-shard engine.
//!
//! A checkpoint is a complete, serialisable snapshot of the simulation
//! state between two [`crate::Engine::run_until`] calls: router buffers,
//! NIC queues, the packet arena, the pending event set (with its sequence
//! counters, so tie-breaking stays identical), the fault schedule cursor,
//! closed-loop task state, and the mutable state of every routing agent
//! and of the traffic injector (RNG streams, Q-tables, heap positions).
//!
//! Restoring a checkpoint into a freshly built engine — same topology,
//! configuration, routing algorithm, injector kind and seed — resumes the
//! run **bit-for-bit**: the resumed half produces exactly the events, in
//! exactly the order, that the uninterrupted run would have produced. The
//! differential tests in `dragonfly-sim` pin this down to full-report
//! equality.
//!
//! Checkpointing is restricted to single-shard sequential engines: a
//! sharded engine's state is spread across per-shard arenas and in-flight
//! mailboxes, and the same simulation can always be checkpointed by
//! re-running it with `shards = Single` (shard count never changes
//! results).
//!
//! The immutable parts — topology, engine configuration, routing
//! algorithm, per-router agent seeds — are deliberately **not** stored;
//! the caller rebuilds them from its experiment spec and the checkpoint
//! only carries the mutable remainder. The `dragonfly-sim` layer embeds
//! the full spec next to the engine state so a resume can verify it is
//! rebuilding the same experiment.

use crate::event::SchedulerCheckpoint;
use crate::fault::CompiledFault;
use crate::injector::Injection;
use crate::nic::NicState;
use crate::packet::Packet;
use crate::router::RouterState;
use crate::sync::QueuedInjection;
use crate::time::SimTime;
use crate::workload::NodeTask;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Mutable state of one routing agent (see
/// [`crate::routing::RouterAgent::save_state`]).
///
/// The shape is deliberately algorithm-agnostic: every shipped agent is a
/// combination of an RNG stream, a flat Q-value table and a few counters,
/// and everything else is rebuilt from `(topology, config, seed)` by the
/// algorithm factory. Stateless agents (pure minimal routing) use the
/// `Default` value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AgentCheckpoint {
    /// xoshiro256++ RNG state, for agents that draw randomness.
    pub rng: Option<[u64; 4]>,
    /// Flattened Q-table values, for learning agents. When `q_rows` is
    /// empty this is the **full** row-major table; otherwise it holds only
    /// the listed rows (row-major per row), the sparse form paged tables
    /// use.
    pub q_values: Vec<f64>,
    /// Algorithm-specific counters (e.g. Q-adaptive decision statistics).
    pub counters: Vec<u64>,
    /// Ascending row indices of the rows carried in `q_values` — the
    /// materialised rows of a paged Q-table. Empty for dense tables
    /// (including every checkpoint written before paged tables existed,
    /// which this serde default keeps readable). Restoring the listed
    /// rows into a fresh paged table reproduces both the learned values
    /// and the page-materialisation pattern.
    #[serde(default)]
    pub q_rows: Vec<u32>,
}

/// Mutable state of a traffic injector (see
/// [`crate::injector::TrafficInjector::save_state`]).
///
/// Like [`AgentCheckpoint`], the shape covers every shipped injector:
/// a scripted injector stores its cursor in `counters`, a pattern
/// injector its RNG, per-node generation heap and fractional residuals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InjectorCheckpoint {
    /// xoshiro256++ RNG state, for randomised injectors.
    pub rng: Option<[u64; 4]>,
    /// Pending `(time, node)` entries of a per-node generation heap.
    pub heap: Vec<(u64, u32)>,
    /// Per-node fractional inter-arrival remainders.
    pub residual: Vec<f64>,
    /// Injector-specific counters (messages generated, script cursor...).
    pub counters: Vec<u64>,
}

/// The packet arena: every slot ever allocated plus the LIFO free list
/// (slot reuse order is part of the determinism contract, so the free
/// list is restored verbatim).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArenaCheckpoint {
    /// All slots, live and freed (freed slots hold stale packet data that
    /// the next allocation overwrites, exactly as at run time).
    pub slots: Vec<Packet>,
    /// The free list, bottom of the stack first.
    pub free: Vec<u32>,
}

/// Complete mutable state of the engine's single shard.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The shard clock (time of the last processed event).
    pub now: SimTime,
    /// Messages generated at NICs.
    pub generated: u64,
    /// Packets injected into the fabric.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (faults / TTL / exhausted retries).
    pub dropped: u64,
    /// NIC retransmissions performed.
    pub retransmits: u64,
    /// Every router's buffers, credits, link timers and waiter lists.
    pub routers: Vec<RouterState>,
    /// Mutable agent state, parallel to `routers`.
    pub agents: Vec<AgentCheckpoint>,
    /// Every NIC's source queue and credit/link state.
    pub nics: Vec<NicState>,
    /// The pending event set with its sequence counters.
    pub queue: SchedulerCheckpoint,
    /// The packet arena.
    pub arena: ArenaCheckpoint,
    /// The compiled (already quantized) fault schedule.
    pub faults: Vec<CompiledFault>,
    /// Index of the next unapplied fault entry.
    pub fault_cursor: usize,
    /// Retransmit attempts per workload packet id.
    pub retry_counts: BTreeMap<u64, u32>,
    /// Injections distributed by the coordinator but not yet materialised.
    pub pending_injections: VecDeque<QueuedInjection>,
    /// Closed-loop task state per owned node (empty when no workload).
    pub tasks: Vec<Option<NodeTask>>,
    /// Whether a workload was installed.
    pub has_tasks: bool,
}

/// A complete engine snapshot (see [`crate::Engine::checkpoint`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// The engine clock.
    pub now: SimTime,
    /// Next injector-traffic packet id to assign.
    pub next_packet_id: u64,
    /// The one-element injector lookahead (pulled but not yet distributed).
    pub pending_injection: Option<Injection>,
    /// Mutable traffic-injector state.
    pub injector: InjectorCheckpoint,
    /// The single shard's state.
    pub shard: ShardCheckpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use crate::fault::{CompiledFault, FaultOp, FaultSchedule};
    use crate::injector::{Injection, ScriptedInjector};
    use crate::observer::CountingObserver;
    use crate::testing::MinimalTestRouting;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::{NodeId, RouterId};
    use dragonfly_topology::Dragonfly;

    /// A single-shard tiny-Dragonfly engine with deterministic scripted
    /// traffic and a router kill/restore pair straddling the checkpoint
    /// time used by the tests.
    fn faulted_engine() -> Engine<CountingObserver> {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..600u64)
            .map(|i| {
                let src = i.wrapping_mul(7) % n;
                let mut dst = i.wrapping_mul(13).wrapping_add(5) % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                Injection {
                    time: i * 211,
                    src: NodeId::from_index(src as usize),
                    dst: NodeId::from_index(dst as usize),
                }
            })
            .collect();
        let algo = MinimalTestRouting;
        let cfg = EngineConfig::paper(crate::routing::RoutingAlgorithm::num_vcs(&algo));
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            7,
        );
        engine.install_faults(&FaultSchedule {
            events: vec![
                CompiledFault {
                    at_ns: 30_000,
                    ops: vec![FaultOp::RouterDown {
                        router: RouterId(1),
                    }],
                },
                CompiledFault {
                    at_ns: 250_000,
                    ops: vec![FaultOp::RouterUp {
                        router: RouterId(1),
                    }],
                },
            ],
        });
        engine
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_across_a_fault() {
        // Reference: one uninterrupted run.
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);
        let ref_stats = reference.stats();
        let ref_obs = *reference.observer();
        assert!(ref_stats.dropped > 0, "the router kill must actually bite");
        assert!(ref_stats.delivered > 0);

        // Interrupted run: stop while the router is still dead (kill
        // applied, restore pending), so resume must replay the liveness
        // prefix and keep the un-applied tail of the schedule.
        let mut first = faulted_engine();
        first.run_until(90_000);
        let ck = first.checkpoint();
        let json = serde_json::to_string(&ck).expect("checkpoint serializes");
        let back: EngineCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");
        assert_eq!(back.now, ck.now);
        assert_eq!(back.shard.fault_cursor, 1, "kill applied, restore pending");

        let mut resumed = faulted_engine();
        resumed.restore(&back);
        // The engine checkpoint deliberately excludes the observer (the
        // sim layer snapshots its collector separately); carry it over.
        *resumed.observer_mut() = *first.observer();
        resumed.run_to_drain(2_000_000);

        assert_eq!(resumed.stats(), ref_stats, "stats diverged after resume");
        assert_eq!(resumed.now(), reference.now(), "finish time diverged");
        assert_eq!(*resumed.observer(), ref_obs, "observer diverged");
    }

    #[test]
    fn checkpoint_before_any_event_resumes_the_whole_run() {
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let first = faulted_engine();
        let ck = first.checkpoint();
        let mut resumed = faulted_engine();
        resumed.restore(&ck);
        resumed.run_to_drain(2_000_000);
        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(*resumed.observer(), *reference.observer());
    }

    #[test]
    fn repeated_checkpoints_compose() {
        // Checkpoint → resume → checkpoint again → resume again must equal
        // the uninterrupted run (the --checkpoint-every use case).
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let mut leg = faulted_engine();
        leg.run_until(60_000);
        let ck1 = leg.checkpoint();
        let obs1 = *leg.observer();

        let mut leg2 = faulted_engine();
        leg2.restore(&ck1);
        *leg2.observer_mut() = obs1;
        leg2.run_until(300_000);
        let ck2 = leg2.checkpoint();
        let obs2 = *leg2.observer();

        let mut leg3 = faulted_engine();
        leg3.restore(&ck2);
        *leg3.observer_mut() = obs2;
        leg3.run_to_drain(2_000_000);

        assert_eq!(leg3.stats(), reference.stats());
        assert_eq!(*leg3.observer(), *reference.observer());
    }
}
