//! Checkpoint/resume of a running engine — sequential, sharded, or
//! pipelined.
//!
//! A checkpoint is a complete, serialisable snapshot of the simulation
//! state between two [`crate::Engine::run_until`] calls: router buffers,
//! NIC queues, the packet arena, the pending event set (with its sequence
//! counters, so tie-breaking stays identical), the fault schedule cursor,
//! closed-loop task state, and the mutable state of every routing agent
//! and of the traffic injector (RNG streams, Q-tables, heap positions).
//!
//! Restoring a checkpoint into a freshly built engine — same topology,
//! configuration, routing algorithm, injector kind and seed — resumes the
//! run **bit-for-bit**: the resumed half produces exactly the events, in
//! exactly the order, that the uninterrupted run would have produced. The
//! differential tests in `dragonfly-sim` pin this down to full-report
//! equality.
//!
//! # The canonical single-shard-equivalent form
//!
//! Sharded and pipelined engines checkpoint through the **same**
//! [`ShardCheckpoint`] shape a single-shard engine uses. Between two
//! `run_until` calls every shard sits at the same window boundary (the
//! engine clock `t_cap`, a lookahead-window multiple), so the union of
//! per-shard states is a globally consistent cut. [`merge_shards`] folds
//! the N per-shard snapshots into one canonical partition-independent
//! snapshot: cross-shard mail is drained into the owning queues first
//! (exactly what the next window would do), packet slots are re-numbered
//! into one canonical arena by a deterministic walk, events are merged in
//! `(time, key, seq)` order and re-sequenced, and counters are summed.
//! [`split_for_plan`] is the inverse: it carves the canonical snapshot
//! into per-shard snapshots for **any** target [`crate::sync::ShardPlan`].
//! Because the canonical form is partition-independent, a snapshot taken
//! at `shards = N` resumes bit-identically at `shards = M` for any `M`,
//! pipeline on or off — the same execution-mode invariance the engine
//! guarantees for uninterrupted runs.
//!
//! Event keys are content-derived and embed the owning entity, so two
//! events from different shards can never tie on `(time, key)`; the merged
//! order is well-defined and re-sequencing by merged position keeps
//! tie-breaking deterministic. `TrafficArrival` markers (key 0, one per
//! pending injection) are dropped at merge and regenerated from
//! `pending_injections` at restore, which keeps the marker↔FIFO
//! correspondence intact across re-partitioning.
//!
//! The immutable parts — topology, engine configuration, routing
//! algorithm, per-router agent seeds — are deliberately **not** stored;
//! the caller rebuilds them from its experiment spec and the checkpoint
//! only carries the mutable remainder. The `dragonfly-sim` layer embeds
//! the full spec next to the engine state so a resume can verify it is
//! rebuilding the same experiment.

use crate::arena::PacketRef;
use crate::event::{EventKind, SchedulerCheckpoint};
use crate::fault::CompiledFault;
use crate::injector::Injection;
use crate::nic::NicState;
use crate::packet::Packet;
use crate::router::RouterState;
use crate::sync::{QueuedInjection, ShardPlan};
use crate::time::SimTime;
use crate::workload::{NodeTask, WORKLOAD_ID_BIT, WORKLOAD_SEQ_BITS};
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::{AnyTopology, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Mutable state of one routing agent (see
/// [`crate::routing::RouterAgent::save_state`]).
///
/// The shape is deliberately algorithm-agnostic: every shipped agent is a
/// combination of an RNG stream, a flat Q-value table and a few counters,
/// and everything else is rebuilt from `(topology, config, seed)` by the
/// algorithm factory. Stateless agents (pure minimal routing) use the
/// `Default` value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AgentCheckpoint {
    /// xoshiro256++ RNG state, for agents that draw randomness.
    pub rng: Option<[u64; 4]>,
    /// Flattened Q-table values, for learning agents. When `q_rows` is
    /// empty this is the **full** row-major table; otherwise it holds only
    /// the listed rows (row-major per row), the sparse form paged tables
    /// use.
    pub q_values: Vec<f64>,
    /// Algorithm-specific counters (e.g. Q-adaptive decision statistics).
    pub counters: Vec<u64>,
    /// Ascending row indices of the rows carried in `q_values` — the
    /// materialised rows of a paged Q-table. Empty for dense tables
    /// (including every checkpoint written before paged tables existed,
    /// which this serde default keeps readable). Restoring the listed
    /// rows into a fresh paged table reproduces both the learned values
    /// and the page-materialisation pattern.
    #[serde(default)]
    pub q_rows: Vec<u32>,
}

/// Mutable state of a traffic injector (see
/// [`crate::injector::TrafficInjector::save_state`]).
///
/// Like [`AgentCheckpoint`], the shape covers every shipped injector:
/// a scripted injector stores its cursor in `counters`, a pattern
/// injector its RNG, per-node generation heap and fractional residuals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InjectorCheckpoint {
    /// xoshiro256++ RNG state, for randomised injectors.
    pub rng: Option<[u64; 4]>,
    /// Pending `(time, node)` entries of a per-node generation heap.
    pub heap: Vec<(u64, u32)>,
    /// Per-node fractional inter-arrival remainders.
    pub residual: Vec<f64>,
    /// Injector-specific counters (messages generated, script cursor...).
    pub counters: Vec<u64>,
}

/// The packet arena: every slot ever allocated plus the LIFO free list
/// (slot reuse order is part of the determinism contract, so the free
/// list is restored verbatim).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArenaCheckpoint {
    /// All slots, live and freed (freed slots hold stale packet data that
    /// the next allocation overwrites, exactly as at run time).
    pub slots: Vec<Packet>,
    /// The free list, bottom of the stack first.
    pub free: Vec<u32>,
}

/// Complete mutable state of the simulation in canonical
/// single-shard-equivalent form (see the module docs): entity state in
/// global id order, one merged event set, one packed arena. A
/// single-shard engine's state already is this form; sharded engines
/// reach it through [`merge_shards`] / [`split_for_plan`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The shard clock (time of the last processed event).
    pub now: SimTime,
    /// Messages generated at NICs.
    pub generated: u64,
    /// Packets injected into the fabric.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (faults / TTL / exhausted retries).
    pub dropped: u64,
    /// NIC retransmissions performed.
    pub retransmits: u64,
    /// Every router's buffers, credits, link timers and waiter lists.
    pub routers: Vec<RouterState>,
    /// Mutable agent state, parallel to `routers`.
    pub agents: Vec<AgentCheckpoint>,
    /// Every NIC's source queue and credit/link state.
    pub nics: Vec<NicState>,
    /// The pending event set with its sequence counters.
    pub queue: SchedulerCheckpoint,
    /// The packet arena.
    pub arena: ArenaCheckpoint,
    /// The compiled (already quantized) fault schedule.
    pub faults: Vec<CompiledFault>,
    /// Index of the next unapplied fault entry.
    pub fault_cursor: usize,
    /// Retransmit attempts per workload packet id.
    pub retry_counts: BTreeMap<u64, u32>,
    /// Injections distributed by the coordinator but not yet materialised.
    pub pending_injections: VecDeque<QueuedInjection>,
    /// Closed-loop task state per owned node (empty when no workload).
    pub tasks: Vec<Option<NodeTask>>,
    /// Whether a workload was installed.
    pub has_tasks: bool,
}

/// A complete engine snapshot (see [`crate::Engine::checkpoint`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// The engine clock.
    pub now: SimTime,
    /// Next injector-traffic packet id to assign.
    pub next_packet_id: u64,
    /// The one-element injector lookahead (pulled but not yet distributed).
    pub pending_injection: Option<Injection>,
    /// Mutable traffic-injector state.
    pub injector: InjectorCheckpoint,
    /// The simulation state in canonical single-shard-equivalent form.
    /// (The field name predates sharded checkpointing; v1/v2 files — which
    /// were always single-shard — deserialise here unchanged.)
    pub shard: ShardCheckpoint,
}

/// Shard that owns an event's keyed entity under `plan`, or `None` for
/// the `TrafficArrival` markers (which are regenerated from
/// `pending_injections` at restore rather than carried across a
/// re-partition).
fn owner_shard(kind: &EventKind, plan: &ShardPlan, topo: &AnyTopology) -> Option<usize> {
    match *kind {
        EventKind::TrafficArrival => None,
        EventKind::NicTryInject { node }
        | EventKind::NicCredit { node }
        | EventKind::TaskWake { node }
        | EventKind::TaskRecv { node, .. }
        | EventKind::DropNotice { node, .. }
        | EventKind::NicResend { node, .. } => {
            Some(plan.shard_of_router(topo.router_of_node(node)))
        }
        EventKind::RouterArrive { router, .. }
        | EventKind::SwitchAttempt { router, .. }
        | EventKind::OutputAttempt { router, .. }
        | EventKind::CreditArrive { router, .. }
        | EventKind::RlFeedback { router, .. } => Some(plan.shard_of_router(router)),
    }
}

/// Shard that owns one `retry_counts` entry: keys are workload packet
/// ids, which embed the source node (the retry bookkeeping lives with the
/// shard owning that node's NIC).
fn retry_owner(id: u64, plan: &ShardPlan, topo: &AnyTopology) -> usize {
    debug_assert!(
        id & WORKLOAD_ID_BIT != 0,
        "retry_counts keys are workload packet ids"
    );
    let node = NodeId::from_index(((id & !WORKLOAD_ID_BIT) >> WORKLOAD_SEQ_BITS) as usize);
    plan.shard_of_router(topo.router_of_node(node))
}

/// Rewrite every [`PacketRef`] reachable from one shard snapshot —
/// router buffers in id order (inputs then outputs per router), NIC
/// source queues in id order, then `RouterArrive` events in queue order —
/// through `translate`. This walk order defines the canonical arena slot
/// numbering; merge and split both use it, so it must never change
/// without a format-version bump.
fn map_refs(ck: &mut ShardCheckpoint, translate: &mut impl FnMut(PacketRef) -> PacketRef) {
    for router in &mut ck.routers {
        router.map_packet_refs(translate);
    }
    for nic in &mut ck.nics {
        for r in nic.source_queue.iter_mut() {
            *r = translate(*r);
        }
    }
    for ev in &mut ck.queue.events {
        if let EventKind::RouterArrive { packet, .. } = &mut ev.kind {
            *packet = translate(*packet);
        }
    }
}

/// Merge N per-shard snapshots (ascending shard order, mailboxes already
/// drained) into the canonical single-shard-equivalent form.
///
/// `now` is the engine clock (the window-boundary cut time `t_cap`): the
/// per-shard clocks are partition-dependent (each shard's clock lags at
/// its own last local event) and must not leak into the canonical form.
/// Storing `t_cap` instead is safe everywhere the clock is read back:
/// injections re-materialise at `time.max(now)` with every pending
/// injection time beyond the cut, `run_window` re-derives per-event time,
/// and fault quantization puts every unapplied fault at or beyond the cut.
pub(crate) fn merge_shards(now: SimTime, shards: Vec<ShardCheckpoint>) -> ShardCheckpoint {
    debug_assert!(!shards.is_empty());
    let live_total: usize = shards
        .iter()
        .map(|s| s.arena.slots.len() - s.arena.free.len())
        .sum();
    debug_assert!(
        shards
            .windows(2)
            .all(|w| w[0].fault_cursor == w[1].fault_cursor),
        "fault cursors diverged across shards at a window boundary"
    );

    let mut merged = ShardCheckpoint {
        now,
        faults: shards[0].faults.clone(),
        fault_cursor: shards[0].fault_cursor,
        has_tasks: shards[0].has_tasks,
        ..ShardCheckpoint::default()
    };
    let mut slots: Vec<Packet> = Vec::with_capacity(live_total);
    let mut pending: Vec<QueuedInjection> = Vec::new();

    for mut s in shards {
        let shard_slots = std::mem::take(&mut s.arena.slots);
        let mut translate = |r: PacketRef| -> PacketRef {
            let canonical = PacketRef(slots.len() as u32);
            slots.push(shard_slots[r.index()].clone());
            canonical
        };
        map_refs(&mut s, &mut translate);

        merged.generated += s.generated;
        merged.injected += s.injected;
        merged.delivered += s.delivered;
        merged.dropped += s.dropped;
        merged.retransmits += s.retransmits;
        merged.routers.append(&mut s.routers);
        merged.agents.append(&mut s.agents);
        merged.nics.append(&mut s.nics);
        merged.tasks.append(&mut s.tasks);
        merged.queue.popped += s.queue.popped;
        merged
            .queue
            .events
            .extend(s.queue.events.into_iter().filter(|e| {
                // Markers are regenerated from pending_injections at
                // restore; carrying them would double-schedule.
                !matches!(e.kind, EventKind::TrafficArrival)
            }));
        // Disjoint key spaces: each shard only tracks retries for the
        // workload ids of its own source nodes.
        merged.retry_counts.extend(s.retry_counts);
        pending.extend(s.pending_injections);
    }

    // Entity-embedding keys make cross-shard `(time, key)` ties
    // impossible, so the merged order is total and re-sequencing by
    // merged position reproduces exactly the tie-break a single-shard
    // run would have used.
    merged
        .queue
        .events
        .sort_unstable_by_key(|e| (e.time, e.key, e.seq));
    for (i, ev) in merged.queue.events.iter_mut().enumerate() {
        ev.seq = i as u64;
    }
    merged.queue.next_seq = merged.queue.events.len() as u64;

    // Injections were distributed by the coordinator in global id order;
    // ids are assigned sequentially, so sorting by id restores it.
    pending.sort_unstable_by_key(|q| q.id);
    merged.pending_injections = pending.into();

    merged.arena = ArenaCheckpoint {
        slots,
        free: Vec::new(),
    };
    debug_assert_eq!(merged.arena.slots.len(), live_total);
    merged
}

/// Split the canonical single-shard-equivalent snapshot into one
/// [`ShardCheckpoint`] per shard of `plan` — the inverse of
/// [`merge_shards`], for any target partition (including the identity
/// single-shard plan).
///
/// Global counters and the pop counter are carried whole on shard 0:
/// only their sums are observable (per-shard counter splits are a
/// partition artifact, not simulation state). Event sequence numbers are
/// kept canonical — per-shard queues share the canonical `next_seq`, so
/// newly pushed events sequence after every restored one on any shard.
pub(crate) fn split_for_plan(
    canonical: &ShardCheckpoint,
    plan: &ShardPlan,
    topo: &AnyTopology,
) -> Vec<ShardCheckpoint> {
    let n = plan.num_shards();
    (0..n)
        .map(|k| {
            let domains = plan.domains_of(k);
            let routers = topo.router_range_of_domain(domains.start).start
                ..topo.router_range_of_domain(domains.end - 1).end;
            let nodes = topo.node_range_of_domain(domains.start).start
                ..topo.node_range_of_domain(domains.end - 1).end;

            let mut part = ShardCheckpoint {
                now: canonical.now,
                generated: if k == 0 { canonical.generated } else { 0 },
                injected: if k == 0 { canonical.injected } else { 0 },
                delivered: if k == 0 { canonical.delivered } else { 0 },
                dropped: if k == 0 { canonical.dropped } else { 0 },
                retransmits: if k == 0 { canonical.retransmits } else { 0 },
                routers: canonical.routers[routers.clone()].to_vec(),
                agents: canonical.agents[routers].to_vec(),
                nics: canonical.nics[nodes.clone()].to_vec(),
                queue: SchedulerCheckpoint {
                    events: canonical
                        .queue
                        .events
                        .iter()
                        .filter(|e| owner_shard(&e.kind, plan, topo) == Some(k))
                        .copied()
                        .collect(),
                    next_seq: canonical.queue.next_seq,
                    popped: if k == 0 { canonical.queue.popped } else { 0 },
                },
                arena: ArenaCheckpoint::default(),
                faults: canonical.faults.clone(),
                fault_cursor: canonical.fault_cursor,
                retry_counts: canonical
                    .retry_counts
                    .iter()
                    .filter(|(id, _)| retry_owner(**id, plan, topo) == k)
                    .map(|(id, c)| (*id, *c))
                    .collect(),
                pending_injections: canonical
                    .pending_injections
                    .iter()
                    .filter(|inj| plan.shard_of_router(topo.router_of_node(inj.src)) == k)
                    .copied()
                    .collect(),
                tasks: if canonical.tasks.is_empty() {
                    Vec::new()
                } else {
                    canonical.tasks[nodes].to_vec()
                },
                has_tasks: canonical.has_tasks,
            };

            // Re-allocate this shard's packets into a local arena by the
            // canonical walk order (allocation order is deterministic and
            // matches what a fresh run of this partition would produce:
            // ascending slot indices, no free list).
            let mut slots: Vec<Packet> = Vec::new();
            let mut translate = |r: PacketRef| -> PacketRef {
                let local = PacketRef(slots.len() as u32);
                slots.push(canonical.arena.slots[r.index()].clone());
                local
            };
            map_refs(&mut part, &mut translate);
            part.arena = ArenaCheckpoint {
                slots,
                free: Vec::new(),
            };
            part
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use crate::fault::{CompiledFault, FaultOp, FaultSchedule};
    use crate::injector::{Injection, ScriptedInjector};
    use crate::observer::CountingObserver;
    use crate::testing::MinimalTestRouting;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::{NodeId, RouterId};
    use dragonfly_topology::Dragonfly;

    /// A tiny-Dragonfly engine in the given execution mode, with
    /// deterministic scripted traffic and a router kill/restore pair
    /// straddling the checkpoint time used by the tests.
    fn faulted_engine_with(
        shards: crate::config::ShardKind,
        pipeline: bool,
    ) -> Engine<CountingObserver> {
        let topo = Dragonfly::new(DragonflyConfig::tiny());
        let n = topo.num_nodes() as u64;
        let script: Vec<Injection> = (0..600u64)
            .map(|i| {
                let src = i.wrapping_mul(7) % n;
                let mut dst = i.wrapping_mul(13).wrapping_add(5) % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                Injection {
                    time: i * 211,
                    src: NodeId::from_index(src as usize),
                    dst: NodeId::from_index(dst as usize),
                }
            })
            .collect();
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(crate::routing::RoutingAlgorithm::num_vcs(&algo));
        cfg.shards = shards;
        cfg.pipeline = pipeline;
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            7,
        );
        engine.install_faults(&FaultSchedule {
            events: vec![
                CompiledFault {
                    at_ns: 30_000,
                    ops: vec![FaultOp::RouterDown {
                        router: RouterId(1),
                    }],
                },
                CompiledFault {
                    at_ns: 250_000,
                    ops: vec![FaultOp::RouterUp {
                        router: RouterId(1),
                    }],
                },
            ],
        });
        engine
    }

    /// The single-shard sequential fixture the original tests use.
    fn faulted_engine() -> Engine<CountingObserver> {
        faulted_engine_with(crate::config::ShardKind::Single, false)
    }

    /// Aggregate counters that are comparable across shard counts (the
    /// full [`crate::EngineStats`] embeds per-shard drain state, which is
    /// partition-dependent by construction).
    fn global_counts(e: &Engine<CountingObserver>) -> (u64, u64, u64, u64, u64) {
        let s = e.stats();
        (
            s.generated,
            s.injected,
            s.delivered,
            s.dropped,
            s.retransmits,
        )
    }

    #[test]
    fn sharded_checkpoint_resumes_bit_identically_at_any_shard_count() {
        use crate::config::ShardKind;
        // Uninterrupted single-shard reference.
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);
        let ref_counts = global_counts(&reference);
        let ref_obs = reference.merged_observer();
        assert!(reference.stats().dropped > 0, "the router kill must bite");

        // Checkpoint a 4-shard pipelined run mid-fault (kill applied,
        // restore pending), then resume under every execution mode the
        // acceptance matrix names: 1 shard sequential, 2 shards lockstep,
        // 4 shards pipelined.
        let mut first = faulted_engine_with(ShardKind::Fixed(4), true);
        assert_eq!(first.num_shards(), 4);
        first.run_until(90_000);
        let obs_at_cut = first.merged_observer();
        let ck = first.checkpoint();
        assert_eq!(ck.shard.fault_cursor, 1, "kill applied, restore pending");
        let json = serde_json::to_string(&ck).expect("checkpoint serializes");
        let back: EngineCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");

        for (shards, pipeline) in [
            (ShardKind::Single, false),
            (ShardKind::Fixed(2), false),
            (ShardKind::Fixed(4), true),
        ] {
            let mut resumed = faulted_engine_with(shards, pipeline);
            resumed.restore(&back);
            resumed.seed_observer(obs_at_cut);
            resumed.run_to_drain(2_000_000);
            assert_eq!(
                global_counts(&resumed),
                ref_counts,
                "counters diverged resuming at {shards:?} pipeline={pipeline}"
            );
            assert_eq!(
                resumed.now(),
                reference.now(),
                "finish time diverged at {shards:?} pipeline={pipeline}"
            );
            assert_eq!(
                resumed.merged_observer(),
                ref_obs,
                "observer diverged at {shards:?} pipeline={pipeline}"
            );
        }
    }

    #[test]
    fn single_shard_checkpoint_resumes_on_a_sharded_engine() {
        use crate::config::ShardKind;
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let mut first = faulted_engine();
        first.run_until(90_000);
        let obs = *first.observer();
        let ck = first.checkpoint();

        let mut resumed = faulted_engine_with(ShardKind::Fixed(2), true);
        resumed.restore(&ck);
        resumed.seed_observer(obs);
        resumed.run_to_drain(2_000_000);
        assert_eq!(global_counts(&resumed), global_counts(&reference));
        assert_eq!(resumed.merged_observer(), reference.merged_observer());
    }

    #[test]
    fn legacy_checkpoints_with_stray_arrival_markers_still_restore() {
        use crate::event::{Event, EventKind};
        // Pre-v3 files restored their queue verbatim, so a file written
        // by an older build may carry `TrafficArrival` markers (key 0).
        // The v3 restore path strips markers and regenerates them from
        // the pending-injection FIFO; a stray marker from a legacy file
        // must therefore vanish rather than corrupt the resumed run.
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let mut first = faulted_engine();
        first.run_until(90_000);
        let obs = *first.observer();
        let mut ck = first.checkpoint();
        ck.shard.queue.events.insert(
            0,
            Event {
                time: 100_000,
                key: 0,
                seq: ck.shard.queue.next_seq,
                kind: EventKind::TrafficArrival,
            },
        );
        ck.shard
            .queue
            .events
            .sort_unstable_by_key(|e| (e.time, e.key, e.seq));
        ck.shard.queue.next_seq += 1;

        let mut resumed = faulted_engine();
        resumed.restore(&ck);
        *resumed.observer_mut() = obs;
        resumed.run_to_drain(2_000_000);
        assert_eq!(global_counts(&resumed), global_counts(&reference));
        assert_eq!(*resumed.observer(), *reference.observer());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_across_a_fault() {
        // Reference: one uninterrupted run.
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);
        let ref_stats = reference.stats();
        let ref_obs = *reference.observer();
        assert!(ref_stats.dropped > 0, "the router kill must actually bite");
        assert!(ref_stats.delivered > 0);

        // Interrupted run: stop while the router is still dead (kill
        // applied, restore pending), so resume must replay the liveness
        // prefix and keep the un-applied tail of the schedule.
        let mut first = faulted_engine();
        first.run_until(90_000);
        let ck = first.checkpoint();
        let json = serde_json::to_string(&ck).expect("checkpoint serializes");
        let back: EngineCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");
        assert_eq!(back.now, ck.now);
        assert_eq!(back.shard.fault_cursor, 1, "kill applied, restore pending");

        let mut resumed = faulted_engine();
        resumed.restore(&back);
        // The engine checkpoint deliberately excludes the observer (the
        // sim layer snapshots its collector separately); carry it over.
        *resumed.observer_mut() = *first.observer();
        resumed.run_to_drain(2_000_000);

        assert_eq!(resumed.stats(), ref_stats, "stats diverged after resume");
        assert_eq!(resumed.now(), reference.now(), "finish time diverged");
        assert_eq!(*resumed.observer(), ref_obs, "observer diverged");
    }

    #[test]
    fn checkpoint_before_any_event_resumes_the_whole_run() {
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let mut first = faulted_engine();
        let ck = first.checkpoint();
        let mut resumed = faulted_engine();
        resumed.restore(&ck);
        resumed.run_to_drain(2_000_000);
        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(*resumed.observer(), *reference.observer());
    }

    #[test]
    fn repeated_checkpoints_compose() {
        // Checkpoint → resume → checkpoint again → resume again must equal
        // the uninterrupted run (the --checkpoint-every use case).
        let mut reference = faulted_engine();
        reference.run_to_drain(2_000_000);

        let mut leg = faulted_engine();
        leg.run_until(60_000);
        let ck1 = leg.checkpoint();
        let obs1 = *leg.observer();

        let mut leg2 = faulted_engine();
        leg2.restore(&ck1);
        *leg2.observer_mut() = obs1;
        leg2.run_until(300_000);
        let ck2 = leg2.checkpoint();
        let obs2 = *leg2.observer();

        let mut leg3 = faulted_engine();
        leg3.restore(&ck2);
        *leg3.observer_mut() = obs2;
        leg3.run_to_drain(2_000_000);

        assert_eq!(leg3.stats(), reference.stats());
        assert_eq!(*leg3.observer(), *reference.observer());
    }
}
