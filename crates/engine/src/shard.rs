//! One conservative-parallel shard: the routers, NICs and agents of a
//! contiguous range of locality domains (Dragonfly groups, fat-tree
//! pods, HyperX rows), with their own event queue and packet arena.
//!
//! A shard is the unit of parallelism. Within a lookahead window it runs
//! completely lock-free on its own [`EventQueue`]; anything addressed to a
//! router it does not own — a packet crossing a cross-domain link, a
//! returning credit, RL feedback — is appended to a per-destination outbox and
//! shipped through the [`crate::sync::MailGrid`] at the window barrier.
//! Packets leave the sender's [`PacketArena`] **by value** and are
//! re-allocated on arrival, so [`PacketRef`] handles never cross a shard
//! boundary.
//!
//! The event handlers in this module are the former single-engine loop of
//! `engine.rs`, reworked to index shard-local state and to route the three
//! upstream/downstream interactions that can cross a shard boundary.

use crate::arena::{PacketArena, PacketRef};
use crate::config::EngineConfig;
use crate::event::{EventKind, EventQueue, Scheduler};
use crate::nic::NicState;
use crate::observer::ShardObserver;
use crate::packet::{Packet, RouteInfo};
use crate::router::{RouterState, Waiter};
use crate::routing::{Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm};
use crate::sync::{QueuedInjection, ShardMsg, ShardPlan, NO_EVENT};
use crate::time::SimTime;
use crate::workload::{workload_packet_id, NodeProgram, NodeTask, Op, WORKLOAD_ID_BIT};
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use dragonfly_topology::paths::HopKind;
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::{AnyTopology, Topology};
use std::collections::VecDeque;

/// Per-shard simulation state and event handlers.
pub struct Shard<O: ShardObserver> {
    id: usize,
    topo: AnyTopology,
    cfg: EngineConfig,
    plan: ShardPlan,
    /// Global index of the first router owned by this shard.
    router_base: usize,
    /// Global index of the first node owned by this shard.
    node_base: usize,
    routers: Vec<RouterState>,
    agents: Vec<Box<dyn RouterAgent>>,
    nics: Vec<NicState>,
    queue: EventQueue,
    arena: PacketArena,
    observer: O,
    now: SimTime,
    /// Messages generated at this shard's NICs.
    pub generated: u64,
    /// Packets injected into the fabric by this shard's NICs.
    pub injected: u64,
    /// Packets delivered to this shard's nodes.
    pub delivered: u64,
    /// Injections distributed by the coordinator, FIFO; popped by
    /// `TrafficArrival` marker events.
    pending_injections: VecDeque<QueuedInjection>,
    /// Cross-shard messages produced in the current window, per
    /// destination shard (`outboxes[self.id]` stays empty).
    outboxes: Vec<Vec<ShardMsg>>,
    /// Earliest firing time of any message sent in the current window.
    min_sent: SimTime,
    /// Closed-loop task state per owned node (parallel to `nics`; empty
    /// unless a workload was installed).
    tasks: Vec<Option<NodeTask>>,
    /// Whether any task program was installed (gates the per-delivery
    /// `TaskRecv` notification, so open-loop runs are untouched).
    has_tasks: bool,
}

impl<O: ShardObserver> Shard<O> {
    /// Build the shard owning `plan.domains_of(id)`. The topology's
    /// domain contract (contiguous router/node ranges per domain) makes
    /// both id spaces of a shard contiguous runs.
    pub fn new(
        topo: &AnyTopology,
        cfg: &EngineConfig,
        algorithm: &dyn RoutingAlgorithm,
        observer: O,
        seed: u64,
        plan: ShardPlan,
        id: usize,
    ) -> Self {
        let domains = plan.domains_of(id);
        let router_base = topo.router_range_of_domain(domains.start).start;
        let router_end = topo.router_range_of_domain(domains.end - 1).end;
        let router_count = router_end - router_base;
        let node_base = topo.node_range_of_domain(domains.start).start;
        let node_end = topo.node_range_of_domain(domains.end - 1).end;
        let node_count = node_end - node_base;
        let routers: Vec<RouterState> = (0..router_count)
            .map(|local| RouterState::new(topo, RouterId::from_index(router_base + local), cfg))
            .collect();
        let agents: Vec<Box<dyn RouterAgent>> = (0..router_count)
            .map(|local| {
                let r = RouterId::from_index(router_base + local);
                // Same per-router seed derivation for every shard count.
                let router_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(r.index() as u64);
                algorithm.make_agent(topo, cfg, r, router_seed)
            })
            .collect();
        let nics = (0..node_count).map(|_| NicState::new(cfg)).collect();
        let num_shards = plan.num_shards();
        Self {
            id,
            topo: topo.clone(),
            cfg: *cfg,
            plan,
            router_base,
            node_base,
            routers,
            agents,
            nics,
            queue: EventQueue::for_config(cfg),
            arena: PacketArena::new(),
            observer,
            now: 0,
            generated: 0,
            injected: 0,
            delivered: 0,
            pending_injections: VecDeque::new(),
            outboxes: (0..num_shards).map(|_| Vec::new()).collect(),
            min_sent: NO_EVENT,
            tasks: Vec::new(),
            has_tasks: false,
        }
    }

    // ------------------------------------------------------------------
    // Indexing helpers
    // ------------------------------------------------------------------

    #[inline]
    fn rlocal(&self, router: RouterId) -> usize {
        debug_assert_eq!(self.plan.shard_of_router(router), self.id);
        router.index() - self.router_base
    }

    #[inline]
    fn nlocal(&self, node: NodeId) -> usize {
        node.index() - self.node_base
    }

    // ------------------------------------------------------------------
    // Accessors used by the coordinator
    // ------------------------------------------------------------------

    /// This shard's index in the plan.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Shard-local simulation time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed by this shard so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Time of the earliest pending local event.
    pub fn next_local_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Earliest firing time among messages sent in the last window.
    pub fn min_sent(&self) -> SimTime {
        self.min_sent
    }

    /// Borrow this shard's observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutably borrow this shard's observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consume the shard, returning its observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Borrow this shard's packet arena.
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Borrow the agent of a router owned by this shard.
    pub fn agent(&self, router: RouterId) -> &dyn RouterAgent {
        self.agents[self.rlocal(router)].as_ref()
    }

    /// Packets buffered in this shard's router fabric.
    pub fn fabric_occupancy(&self) -> usize {
        self.routers.iter().map(|r| r.buffered_packets()).sum()
    }

    /// Packets waiting in this shard's NIC source queues.
    pub fn nic_backlog(&self) -> usize {
        self.nics.iter().map(|n| n.backlog()).sum()
    }

    // ------------------------------------------------------------------
    // Window plumbing
    // ------------------------------------------------------------------

    /// Accept one coordinator-distributed injection (called in global
    /// injector order).
    pub fn accept_injection(&mut self, injection: QueuedInjection) {
        debug_assert!(
            self.plan
                .shard_of_router(self.topo.router_of_node(injection.src))
                == self.id,
            "injection routed to the wrong shard"
        );
        self.queue
            .push(injection.time.max(self.now), EventKind::TrafficArrival);
        self.pending_injections.push_back(injection);
    }

    /// Deliver a batch of cross-shard messages (drained from the mail
    /// grid at a window barrier). Packets are re-allocated into this
    /// shard's arena here — the handle translation point.
    pub fn deliver(&mut self, msgs: Vec<ShardMsg>) {
        for msg in msgs {
            match msg {
                ShardMsg::RouterArrive {
                    time,
                    router,
                    port,
                    vc,
                    packet,
                } => {
                    let pref = self.arena.alloc(packet);
                    self.queue.push(
                        time,
                        EventKind::RouterArrive {
                            router,
                            port,
                            vc,
                            packet: pref,
                        },
                    );
                }
                ShardMsg::CreditArrive {
                    time,
                    router,
                    port,
                    vc,
                } => {
                    self.queue
                        .push(time, EventKind::CreditArrive { router, port, vc });
                }
                ShardMsg::RlFeedback { time, router, msg } => {
                    self.queue.push(time, EventKind::RlFeedback { router, msg });
                }
            }
        }
    }

    /// Move this window's outboxes into the shared mail grid, into the
    /// buffers of the given window parity (`w % 2` in the pipelined mode;
    /// the lockstep barrier mode always posts parity 0 and drains both).
    pub fn flush_outboxes(&mut self, grid: &crate::sync::MailGrid, parity: usize) {
        for dst in 0..self.outboxes.len() {
            if dst != self.id {
                grid.post(self.id, dst, parity, &mut self.outboxes[dst]);
            }
        }
    }

    /// Run every pending event with `time <= end_incl`, returning the
    /// number processed. Resets the sent-message watermark first.
    pub fn run_window(&mut self, end_incl: SimTime) -> u64 {
        self.min_sent = NO_EVENT;
        let mut processed = 0;
        while let Some(event) = self.queue.pop_before(end_incl) {
            debug_assert!(event.time >= self.now, "time must not go backwards");
            self.now = event.time;
            self.dispatch(event.kind);
            processed += 1;
        }
        processed
    }

    /// Schedule an event on a router that may live in another shard.
    #[inline]
    fn send_to_router(&mut self, dst: RouterId, time: SimTime, make: impl FnOnce() -> ShardMsg) {
        let shard = self.plan.shard_of_router(dst);
        if shard == self.id {
            match make() {
                ShardMsg::CreditArrive {
                    time,
                    router,
                    port,
                    vc,
                } => self
                    .queue
                    .push(time, EventKind::CreditArrive { router, port, vc }),
                ShardMsg::RlFeedback { time, router, msg } => {
                    self.queue.push(time, EventKind::RlFeedback { router, msg })
                }
                ShardMsg::RouterArrive { .. } => {
                    unreachable!("local RouterArrive events are pushed directly")
                }
            }
        } else {
            debug_assert!(
                time >= self.now + self.plan.lookahead(),
                "cross-shard message inside the lookahead window"
            );
            self.min_sent = self.min_sent.min(time);
            self.outboxes[shard].push(make());
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch (the former engine loop)
    // ------------------------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TrafficArrival => self.handle_traffic_arrival(),
            EventKind::NicTryInject { node } => {
                let n = self.nlocal(node);
                self.nics[n].retry_pending = false;
                self.try_nic_inject(node);
            }
            EventKind::NicCredit { node } => {
                let nic = &mut self.nics[node.index() - self.node_base];
                nic.credits += 1;
                debug_assert!(nic.credits <= self.cfg.vc_buffer_packets);
                self.try_nic_inject(node);
            }
            EventKind::RouterArrive {
                router,
                port,
                vc,
                packet,
            } => self.handle_router_arrive(router, port, vc, packet),
            EventKind::SwitchAttempt { router, port, vc } => {
                self.handle_switch_attempt(router, port, vc)
            }
            EventKind::OutputAttempt { router, port } => self.handle_output_attempt(router, port),
            EventKind::CreditArrive { router, port, vc } => {
                let r = self.rlocal(router);
                self.routers[r].return_credit(port, vc, &self.cfg);
                self.schedule_output_attempt(router, port, self.now);
            }
            EventKind::RlFeedback { router, msg } => {
                let r = self.rlocal(router);
                self.agents[r].feedback(&msg);
            }
            EventKind::TaskWake { node } => {
                let n = self.nlocal(node);
                if let Some(task) = self.tasks[n].as_mut() {
                    debug_assert_eq!(task.resume_at.unwrap_or(self.now), self.now);
                    task.resume_at = None;
                }
                self.advance_task(node);
            }
            EventKind::TaskRecv { node, src } => {
                let n = self.nlocal(node);
                if let Some(task) = self.tasks[n].as_mut() {
                    task.record_delivery(src);
                }
                self.advance_task(node);
            }
        }
    }

    // ------------------------------------------------------------------
    // Closed-loop task programs
    // ------------------------------------------------------------------

    /// Install the task program of one owned node and schedule its start
    /// at `t = 0` (called by `Engine::install_workload` before the run).
    pub fn install_task(&mut self, node: NodeId, ops: NodeProgram) {
        debug_assert_eq!(
            self.plan.shard_of_router(self.topo.router_of_node(node)),
            self.id,
            "task installed on the wrong shard"
        );
        if self.tasks.is_empty() {
            self.tasks = (0..self.nics.len()).map(|_| None).collect();
        }
        self.has_tasks = true;
        let n = self.nlocal(node);
        self.tasks[n] = Some(NodeTask::new(ops));
        self.queue.push(0, EventKind::TaskWake { node });
    }

    /// Number of owned task programs that ran to completion.
    pub fn tasks_finished(&self) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.as_ref().is_some_and(|t| t.done))
            .count() as u64
    }

    /// Execute ops of `node`'s program until it blocks (`Recv` short of
    /// messages), yields (`Compute` in flight) or finishes. Every call
    /// site is a shard-local event with a content-derived key, so the
    /// execution order — and with it every send this triggers — is
    /// identical across shard counts and execution modes.
    fn advance_task(&mut self, node: NodeId) {
        let n = self.nlocal(node);
        loop {
            let op = {
                let Some(task) = self.tasks[n].as_mut() else {
                    return;
                };
                if task.done || task.resume_at.is_some() {
                    // A `TaskRecv` landing mid-compute must not run past
                    // the pending wake.
                    return;
                }
                if task.pc >= task.ops.len() {
                    task.done = true;
                    None
                } else {
                    Some(task.ops[task.pc])
                }
            };
            let Some(op) = op else {
                self.observer.task_rank_finished(node, self.now);
                return;
            };
            match op {
                Op::Compute { delay_ns } => {
                    let at = self.now + delay_ns;
                    {
                        let task = self.tasks[n].as_mut().expect("checked above");
                        task.pc += 1;
                        task.resume_at = Some(at);
                    }
                    self.queue.push(at, EventKind::TaskWake { node });
                    return;
                }
                Op::Send { dst, messages } => {
                    for _ in 0..messages {
                        self.workload_send(node, dst);
                    }
                    self.tasks[n].as_mut().expect("checked above").pc += 1;
                }
                Op::Recv {
                    from,
                    messages,
                    barrier,
                } => {
                    let now = self.now;
                    let (consumed, waited) = {
                        let task = self.tasks[n].as_mut().expect("checked above");
                        if task.try_consume(from, messages) {
                            task.pc += 1;
                            (true, task.blocked_since.take().map(|since| now - since))
                        } else {
                            task.blocked_since.get_or_insert(now);
                            (false, None)
                        }
                    };
                    if let Some(waited) = waited {
                        self.observer.task_blocked_wait(node, waited, barrier);
                    }
                    if !consumed {
                        return;
                    }
                }
                Op::Phase { index } => {
                    self.tasks[n].as_mut().expect("checked above").pc += 1;
                    self.observer.task_phase_completed(node, index, self.now);
                }
            }
        }
    }

    /// Post one workload packet at `src`'s NIC — the same generation path
    /// as injector traffic, but with a deterministic id from the workload
    /// namespace (so id assignment cannot depend on execution order).
    fn workload_send(&mut self, src: NodeId, dst: NodeId) {
        debug_assert_ne!(src, dst, "lowerings never emit self-sends");
        let n = self.nlocal(src);
        let seq = {
            let task = self.tasks[n].as_mut().expect("sending node has a task");
            let seq = task.next_send_seq;
            task.next_send_seq += 1;
            seq
        };
        let inj = QueuedInjection {
            time: self.now,
            src,
            dst,
            id: workload_packet_id(src, seq),
        };
        let packet = self.make_packet(inj);
        let pref = self.arena.alloc(packet);
        self.observer
            .packet_generated(self.arena.get(pref), self.now);
        self.generated += 1;
        self.nics[n].generated += 1;
        self.nics[n].source_queue.push_back(pref);
        self.try_nic_inject(src);
    }

    // ------------------------------------------------------------------
    // Traffic generation and injection
    // ------------------------------------------------------------------

    fn handle_traffic_arrival(&mut self) {
        let inj = match self.pending_injections.pop_front() {
            Some(i) => i,
            None => return,
        };
        debug_assert!(inj.time <= self.now, "marker fired before its injection");
        let packet = self.make_packet(inj);
        let pref = self.arena.alloc(packet);
        self.observer
            .packet_generated(self.arena.get(pref), self.now);
        self.generated += 1;
        let nic = self.nlocal(inj.src);
        self.nics[nic].generated += 1;
        self.nics[nic].source_queue.push_back(pref);
        self.try_nic_inject(inj.src);
    }

    fn make_packet(&mut self, inj: QueuedInjection) -> Packet {
        let src_router = self.topo.router_of_node(inj.src);
        let dst_router = self.topo.router_of_node(inj.dst);
        Packet {
            id: inj.id,
            src: inj.src,
            dst: inj.dst,
            src_router,
            dst_router,
            dst_group: self.topo.domain_of_router(dst_router),
            src_group: self.topo.domain_of_router(src_router),
            src_slot: self.topo.node_slot(inj.src) as u8,
            size_bytes: self.cfg.packet_bytes,
            created_ns: self.now,
            injected_ns: self.now,
            hops: 0,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: self.now,
            pending_decision: None,
        }
    }

    fn try_nic_inject(&mut self, node: NodeId) {
        let ser = self.cfg.serialization_ns();
        let host_lat = self.cfg.host_latency_ns;
        let nic = &mut self.nics[node.index() - self.node_base];
        if nic.source_queue.is_empty() || nic.credits == 0 {
            // A NicCredit event (or new traffic) will retry later.
            return;
        }
        if nic.link_free_at > self.now {
            if !nic.retry_pending {
                nic.retry_pending = true;
                let at = nic.link_free_at;
                self.queue.push(at, EventKind::NicTryInject { node });
            }
            return;
        }
        let pref = nic.source_queue.pop_front().expect("checked non-empty");
        nic.credits -= 1;
        nic.injected += 1;
        nic.link_free_at = self.now + ser;
        let more = !nic.source_queue.is_empty() && nic.credits > 0 && !nic.retry_pending;
        if more {
            nic.retry_pending = true;
            let at = nic.link_free_at;
            self.queue.push(at, EventKind::NicTryInject { node });
        }
        {
            let packet = self.arena.get_mut(pref);
            packet.injected_ns = self.now;
            packet.last_decision_ns = self.now;
        }
        self.observer
            .packet_injected(self.arena.get(pref), self.now);
        self.injected += 1;
        let router = self.topo.router_of_node(node);
        let port = self.topo.ejection_port(node);
        self.queue.push(
            self.now + ser + host_lat,
            EventKind::RouterArrive {
                router,
                port,
                vc: 0,
                packet: pref,
            },
        );
    }

    // ------------------------------------------------------------------
    // Router pipeline
    // ------------------------------------------------------------------

    fn handle_router_arrive(&mut self, router: RouterId, port: Port, vc: u8, packet: PacketRef) {
        let state = &mut self.routers[router.index() - self.router_base];
        let len = state.push_input(port, vc, packet, &self.cfg);
        if len == 1 {
            self.queue.push(
                self.now + self.cfg.router_latency_ns,
                EventKind::SwitchAttempt { router, port, vc },
            );
        }
    }

    fn handle_switch_attempt(&mut self, router: RouterId, port: Port, vc: u8) {
        let r = self.rlocal(router);
        // Remove the head-of-line handle; the packet itself stays in the
        // arena, so the agent can mutate it while the router state stays
        // immutably borrowable.
        let pref = match self.routers[r].pop_input(port, vc) {
            Some(p) => p,
            None => return,
        };

        let decision = {
            let arena = &mut self.arena;
            let packet = arena.get_mut(pref);
            match packet.pending_decision {
                Some((p, v)) => Decision { port: p, vc: v },
                None => {
                    if packet.dst_router == router {
                        Decision {
                            port: self.topo.ejection_port(packet.dst),
                            vc: packet.vc,
                        }
                    } else {
                        let ctx = RouterCtx {
                            router,
                            topology: &self.topo,
                            config: &self.cfg,
                            now: self.now,
                            state: &self.routers[r],
                        };
                        let d = self.agents[r].decide(&ctx, packet);
                        debug_assert_ne!(
                            self.topo.port_kind(router, d.port),
                            PortKind::Host,
                            "agents must not route to host ports (ejection is engine-handled)"
                        );
                        debug_assert!(
                            (d.vc as usize) < self.cfg.num_vcs,
                            "agent selected VC {} but only {} exist",
                            d.vc,
                            self.cfg.num_vcs
                        );
                        d
                    }
                }
            }
        };

        if !self.routers[r].output_has_space(decision.port, decision.vc, &self.cfg) {
            // Blocked: remember the decision, restore head-of-line position
            // and wait for the output queue to drain.
            self.arena.get_mut(pref).pending_decision = Some((decision.port, decision.vc));
            self.routers[r].push_input_front(port, vc, pref);
            self.routers[r].add_waiter(decision.port, Waiter { in_port: port, vc });
            return;
        }

        // --- Committed: the packet leaves the input buffer. ---

        // 1. Return a credit upstream for the freed input slot.
        self.send_credit_upstream(router, port, vc);

        // 2. Deliver RL feedback to the router that forwarded the packet to
        //    us (the per-hop delay is the reward; our own estimate of the
        //    remaining time is the bootstrap value).
        let (last_router, last_out_port) = {
            let p = self.arena.get(pref);
            (p.last_router, p.last_out_port)
        };
        if let (Some(up_router), Some(up_port)) = (last_router, last_out_port) {
            let packet = self.arena.get(pref);
            let reward_ns = (self.now - packet.last_decision_ns) as f64;
            let downstream_estimate_ns = if packet.dst_router == router {
                self.cfg.ejection_ns() as f64
            } else {
                let ctx = RouterCtx {
                    router,
                    topology: &self.topo,
                    config: &self.cfg,
                    now: self.now,
                    state: &self.routers[r],
                };
                self.agents[r].estimate_after_decision(&ctx, packet, decision)
            };
            let msg = FeedbackMsg {
                packet_id: packet.id,
                src: packet.src,
                dst: packet.dst,
                dst_router: packet.dst_router,
                dst_group: packet.dst_group,
                src_slot: packet.src_slot,
                port: up_port,
                reward_ns,
                downstream_estimate_ns,
            };
            let latency = self.input_link_latency(router, port);
            let at = self.now + latency;
            self.send_to_router(up_router, at, || ShardMsg::RlFeedback {
                time: at,
                router: up_router,
                msg,
            });
        }

        // 3. Update per-packet bookkeeping and enqueue on the output side.
        let ejecting = self.topo.port_kind(router, decision.port) == PortKind::Host;
        {
            let packet = self.arena.get_mut(pref);
            if !ejecting {
                packet.hops += 1;
                packet.last_router = Some(router);
                packet.last_out_port = Some(decision.port);
                packet.last_decision_ns = self.now;
                packet.vc = decision.vc;
            }
            packet.pending_decision = None;
        }
        self.routers[r].push_output(decision.port, decision.vc, pref);
        self.schedule_output_attempt(router, decision.port, self.now);

        // 4. The next packet in this input VC (if any) can now attempt the
        //    switch; it has already been charged the router latency while
        //    waiting behind the head-of-line packet.
        if self.routers[r].input_buffer_len(port, vc) > 0 {
            self.queue
                .push(self.now, EventKind::SwitchAttempt { router, port, vc });
        }
    }

    fn handle_output_attempt(&mut self, router: RouterId, port: Port) {
        let r = self.rlocal(router);
        self.routers[r].set_output_event_pending(port, false);

        if self.routers[r].link_free_at(port) > self.now {
            let at = self.routers[r].link_free_at(port);
            self.schedule_output_attempt(router, port, at);
            return;
        }
        let vc = match self.routers[r].select_output_vc(port) {
            Some(vc) => vc,
            // Nothing sendable: either all queues empty or no credits.
            // A credit arrival or a new enqueue will reschedule us.
            None => return,
        };
        let pref = self.routers[r]
            .pop_output(port, vc)
            .expect("select_output_vc returned a non-empty queue");
        let ser = self.cfg.serialization_ns();
        self.routers[r].set_link_busy_until(port, self.now + ser);

        // A slot was freed in this port's output queues: wake every blocked
        // input VC waiting on it (they re-register if still blocked).
        while let Some(w) = self.routers[r].pop_waiter(port) {
            self.queue.push(
                self.now,
                EventKind::SwitchAttempt {
                    router,
                    port: w.in_port,
                    vc: w.vc,
                },
            );
        }

        match self.topo.port_kind(router, port) {
            PortKind::Host => {
                // Ejection: deliver to the attached node and recycle the
                // packet's arena slot.
                let delivery = self.now + ser + self.cfg.host_latency_ns;
                debug_assert_eq!(self.topo.ejection_port(self.arena.get(pref).dst), port);
                self.observer
                    .packet_delivered(self.arena.get(pref), delivery);
                self.delivered += 1;
                if self.has_tasks {
                    // Closed-loop notification: the destination node is
                    // always attached to this shard (host ports never
                    // cross shards), so the wakeup is a local event at
                    // the delivery time — no lookahead interaction.
                    let (p_src, p_dst, p_id) = {
                        let p = self.arena.get(pref);
                        (p.src, p.dst, p.id)
                    };
                    if p_id & WORKLOAD_ID_BIT != 0 {
                        self.queue.push(
                            delivery,
                            EventKind::TaskRecv {
                                node: p_dst,
                                src: p_src,
                            },
                        );
                    }
                }
                self.arena.free(pref);
            }
            PortKind::Local | PortKind::Global => {
                self.routers[r].consume_credit(port, vc);
                let (down_router, down_port) = match self.topo.neighbor(router, port) {
                    Neighbor::Router { router, port } => (router, port),
                    Neighbor::Node(_) => unreachable!("fabric port resolved to a node"),
                };
                let latency = self.output_link_latency(router, port);
                let at = self.now + ser + latency;
                let dst_shard = self.plan.shard_of_router(down_router);
                if dst_shard == self.id {
                    self.queue.push(
                        at,
                        EventKind::RouterArrive {
                            router: down_router,
                            port: down_port,
                            vc,
                            packet: pref,
                        },
                    );
                } else {
                    // The packet leaves this shard: extract it from the
                    // local arena and ship it by value. The receiving
                    // shard allocates its own slot (handle translation).
                    debug_assert!(
                        at >= self.now + self.plan.lookahead(),
                        "cross-shard packet inside the lookahead window"
                    );
                    let packet = self.arena.get(pref).clone();
                    self.arena.free(pref);
                    self.min_sent = self.min_sent.min(at);
                    self.outboxes[dst_shard].push(ShardMsg::RouterArrive {
                        time: at,
                        router: down_router,
                        port: down_port,
                        vc,
                        packet,
                    });
                }
            }
        }

        if self.routers[r].output_queue_len(port) > 0 {
            self.schedule_output_attempt(router, port, self.now + ser);
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn schedule_output_attempt(&mut self, router: RouterId, port: Port, at: SimTime) {
        let state = &mut self.routers[router.index() - self.router_base];
        if state.output_event_pending(port) {
            return;
        }
        state.set_output_event_pending(port, true);
        self.queue
            .push(at.max(self.now), EventKind::OutputAttempt { router, port });
    }

    /// Latency of the link feeding input `port` of `router` (used for
    /// credit returns and feedback messages travelling upstream).
    fn input_link_latency(&self, router: RouterId, port: Port) -> SimTime {
        match self.topo.port_kind(router, port) {
            PortKind::Host => self.cfg.host_latency_ns,
            PortKind::Local => self.cfg.link_latency_ns(HopKind::Local),
            PortKind::Global => self.cfg.link_latency_ns(HopKind::Global),
        }
    }

    /// Latency of the link driven by output `port` of `router`.
    fn output_link_latency(&self, router: RouterId, port: Port) -> SimTime {
        match self.topo.port_kind(router, port) {
            PortKind::Host => self.cfg.host_latency_ns,
            PortKind::Local => self.cfg.link_latency_ns(HopKind::Local),
            PortKind::Global => self.cfg.link_latency_ns(HopKind::Global),
        }
    }

    fn send_credit_upstream(&mut self, router: RouterId, port: Port, vc: u8) {
        match self.topo.port_kind(router, port) {
            PortKind::Host => {
                // The packet came from a NIC: give the NIC its credit back.
                let node = match self.topo.neighbor(router, port) {
                    Neighbor::Node(n) => n,
                    Neighbor::Router { .. } => unreachable!("host port resolved to a router"),
                };
                self.queue.push(
                    self.now + self.cfg.host_latency_ns,
                    EventKind::NicCredit { node },
                );
            }
            PortKind::Local | PortKind::Global => {
                let (up_router, up_port) = match self.topo.neighbor(router, port) {
                    Neighbor::Router { router, port } => (router, port),
                    Neighbor::Node(_) => unreachable!("fabric port resolved to a node"),
                };
                let latency = self.input_link_latency(router, port);
                let at = self.now + latency;
                self.send_to_router(up_router, at, || ShardMsg::CreditArrive {
                    time: at,
                    router: up_router,
                    port: up_port,
                    vc,
                });
            }
        }
    }
}
