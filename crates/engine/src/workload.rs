//! Execution-level closed-loop task programs.
//!
//! A workload front-end (the `dragonfly-workload` crate) lowers collective
//! and mini-app descriptions to one [`NodeProgram`] per node: a straight-
//! line list of [`Op`]s executed by the owning [`crate::shard::Shard`].
//! The engine knows nothing about collectives — only about these four
//! primitive ops — which keeps the determinism argument local:
//!
//! * every op transition fires from a shard-local event ([`TaskWake`] /
//!   [`TaskRecv`], see [`crate::event::EventKind`]) with a content-derived
//!   key, so transitions sort identically whatever the shard count;
//! * `Send` posts packets at the node's own NIC (same code path as
//!   injector traffic), and deliveries land in the shard that owns the
//!   destination node, so no new cross-shard channel exists.
//!
//! [`TaskWake`]: crate::event::EventKind::TaskWake
//! [`TaskRecv`]: crate::event::EventKind::TaskRecv

use crate::time::SimTime;
use dragonfly_topology::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Workload packets carry ids in a namespace disjoint from the injector's
/// sequential ids (which start at 0 and count up): the top bit is set and
/// the low bits encode `(source node, per-node send sequence)`, so id
/// assignment is deterministic no matter which shard materialises the
/// packet first.
pub const WORKLOAD_ID_BIT: u64 = 1 << 63;

/// Bits reserved for the per-node send sequence inside a workload packet
/// id. The RL-feedback event key truncates packet ids to 36 bits, so the
/// source node occupies bits 20..36 — unique for systems below 65,536
/// nodes and up to ~1M sends per node, the same exhaustion class as the
/// injector's 36-bit id space.
pub const WORKLOAD_SEQ_BITS: u32 = 20;

/// The deterministic id of the `seq`-th workload packet sent by `node`.
#[inline]
pub fn workload_packet_id(node: NodeId, seq: u64) -> u64 {
    debug_assert!(seq < (1 << WORKLOAD_SEQ_BITS) as u64);
    WORKLOAD_ID_BIT | ((node.index() as u64) << WORKLOAD_SEQ_BITS) | seq
}

/// One primitive step of a node's task program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Busy the node for `delay_ns` (no network activity); the program
    /// resumes via a `TaskWake` event.
    Compute {
        /// Duration in ns.
        delay_ns: u64,
    },
    /// Post `messages` packets to `dst` at the node's NIC and continue
    /// immediately (sends are asynchronous; backpressure shows up in
    /// delivery times, not here).
    Send {
        /// Destination node.
        dst: NodeId,
        /// Number of packets to post.
        messages: u32,
    },
    /// Block until `messages` packets from `from` (cumulative, MPI-style
    /// per-source counting — no tags) have been delivered and not yet
    /// consumed by an earlier `Recv`.
    Recv {
        /// Source node to count deliveries from.
        from: NodeId,
        /// Number of packets to consume.
        messages: u32,
        /// Whether the blocked time counts as barrier wait (set by the
        /// barrier/collective lowerings for their synchronising receives).
        barrier: bool,
    },
    /// Marker: reaching this op completes phase `index` for this rank
    /// (reported through the observer; purely observational).
    Phase {
        /// Phase slot, already clamped by the front-end.
        index: u32,
    },
}

/// The straight-line program of one node.
pub type NodeProgram = Vec<Op>;

/// Runtime state of one node's program (owned by its shard).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeTask {
    /// The compiled program.
    pub(crate) ops: NodeProgram,
    /// Index of the next op to execute.
    pub(crate) pc: usize,
    /// Per-source delivered-but-unconsumed message counts, sorted by
    /// source node for binary search (never iterated, so order could not
    /// matter anyway).
    pub(crate) avail: Vec<(NodeId, u64)>,
    /// Set while a `Compute` is in flight: a `TaskRecv` arriving mid-
    /// compute must not advance the program past the pending wake.
    pub(crate) resume_at: Option<SimTime>,
    /// When the current head `Recv` first blocked (for wait accounting).
    pub(crate) blocked_since: Option<SimTime>,
    /// Per-node send sequence (feeds [`workload_packet_id`]).
    pub(crate) next_send_seq: u64,
    /// The program ran to completion.
    pub(crate) done: bool,
}

impl NodeTask {
    /// Fresh state for a compiled program.
    pub fn new(ops: NodeProgram) -> Self {
        Self {
            ops,
            pc: 0,
            avail: Vec::new(),
            resume_at: None,
            blocked_since: None,
            next_send_seq: 0,
            done: false,
        }
    }

    /// Record one delivered message from `src`.
    pub(crate) fn record_delivery(&mut self, src: NodeId) {
        match self.avail.binary_search_by_key(&src, |&(s, _)| s) {
            Ok(i) => self.avail[i].1 += 1,
            Err(i) => self.avail.insert(i, (src, 1)),
        }
    }

    /// Try to consume `messages` delivered messages from `src`; returns
    /// whether enough were available (and consumes them if so).
    pub(crate) fn try_consume(&mut self, src: NodeId, messages: u32) -> bool {
        match self.avail.binary_search_by_key(&src, |&(s, _)| s) {
            Ok(i) if self.avail[i].1 >= messages as u64 => {
                self.avail[i].1 -= messages as u64;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_are_disjoint_from_injector_ids_and_unique() {
        let a = workload_packet_id(NodeId(0), 0);
        let b = workload_packet_id(NodeId(1), 0);
        let c = workload_packet_id(NodeId(0), 1);
        assert!(a & WORKLOAD_ID_BIT != 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The 36-bit truncation used by the RL-feedback key stays unique
        // across nodes below 2^16.
        assert_ne!(a & 0xF_FFFF_FFFF, b & 0xF_FFFF_FFFF);
    }

    #[test]
    fn recv_counters_consume_cumulatively() {
        let mut t = NodeTask::new(vec![]);
        let src = NodeId(7);
        assert!(!t.try_consume(src, 1));
        t.record_delivery(src);
        t.record_delivery(src);
        assert!(!t.try_consume(src, 3));
        assert!(t.try_consume(src, 2));
        assert!(!t.try_consume(src, 1));
    }
}
