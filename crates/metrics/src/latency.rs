//! Packet-latency statistics.
//!
//! The paper reports the mean, the quartiles (box plots of Figures 6 and 9)
//! and the 95th/99th percentiles. [`LatencyStats`] offers two accumulation
//! modes behind one API:
//!
//! * **Exact** (the default): every sample is retained in nanoseconds and a
//!   sorted copy is built lazily when a quantile is first requested.
//!   Memory grows linearly with delivered packets — fine for the ~1k-node
//!   smoke runs and required by the differential suites.
//! * **Streaming** ([`LatencyStats::streaming`]): samples land in a
//!   log-binned HDR-style sketch with [`MANTISSA_BITS`] mantissa bits per
//!   octave (64 sub-buckets, ≤ 1/64 ≈ 1.6 % relative bucket width), fixed
//!   worst-case size (< 4k `u64` counters for the whole `u64` range). The
//!   mean stays exact (integer sum), min/max are tracked exactly, and
//!   quantiles are answered at bucket granularity. Because every
//!   accumulator is an integer counter, [`LatencyStats::merge`] is plain
//!   elementwise addition — order-independent and therefore **bit-for-bit
//!   identical** for any sharding of the sample stream.

use serde::{Deserialize, Serialize};

/// Mantissa bits per octave of the streaming sketch: 2^6 = 64 sub-buckets,
/// bounding the relative bucket width at 1/64.
pub const MANTISSA_BITS: u32 = 6;

const LINEAR_LIMIT: u64 = 1 << MANTISSA_BITS;

/// Sketch bucket index of a sample value. Values below [`LINEAR_LIMIT`]
/// map to themselves (exact); above it, each octave is split into
/// 2^[`MANTISSA_BITS`] equal-width sub-buckets.
fn bucket_of(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let high = 63 - value.leading_zeros(); // >= MANTISSA_BITS
    let block = (high - MANTISSA_BITS + 1) as usize;
    let mantissa = (value >> (high - MANTISSA_BITS)) as usize - LINEAR_LIMIT as usize;
    block * LINEAR_LIMIT as usize + mantissa
}

/// Lower bound of a sketch bucket (the deterministic representative every
/// quantile query answers with).
fn bucket_lower_bound(index: usize) -> u64 {
    let m = LINEAR_LIMIT as usize;
    if index < 2 * m {
        // Linear region plus the first octave, where buckets are exact.
        return index as u64;
    }
    let block = index / m;
    let pos = (index % m) as u64;
    (LINEAR_LIMIT + pos) << (block - 1)
}

/// Width of the sketch bucket containing `value` — the worst-case error of
/// a streaming quantile answer for sample sets containing `value`.
pub fn bucket_width_ns(value: u64) -> u64 {
    if value < 2 * LINEAR_LIMIT {
        return 1;
    }
    let high = 63 - value.leading_zeros();
    1u64 << (high - MANTISSA_BITS)
}

/// A collection of latency samples (nanoseconds).
///
/// Serialized exact-mode values from earlier layouts (plain
/// `samples` + `sum`) deserialize unchanged: every streaming-mode field
/// defaults to the exact-mode value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: Option<Vec<u64>>,
    sum: u128,
    /// Streaming mode: samples are folded into `bins` and dropped.
    #[serde(default)]
    streaming: bool,
    /// Sketch counters, dense up to the highest touched bucket.
    #[serde(default)]
    bins: Vec<u64>,
    /// Sample count (streaming mode only; exact mode uses `samples.len()`).
    #[serde(default)]
    count: u64,
    /// Exact minimum sample (streaming mode only).
    #[serde(default)]
    min: u64,
    /// Exact maximum sample (streaming mode only).
    #[serde(default)]
    max: u64,
}

impl LatencyStats {
    /// An empty collection in exact (sample-retaining) mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collection in streaming (log-binned sketch) mode.
    pub fn streaming() -> Self {
        Self {
            streaming: true,
            ..Self::default()
        }
    }

    /// Whether this collection is a streaming sketch.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Record one latency sample in nanoseconds.
    pub fn record(&mut self, latency_ns: u64) {
        self.sum += latency_ns as u128;
        if self.streaming {
            let idx = bucket_of(latency_ns);
            if idx >= self.bins.len() {
                self.bins.resize(idx + 1, 0);
            }
            self.bins[idx] += 1;
            if self.count == 0 {
                self.min = latency_ns;
                self.max = latency_ns;
            } else {
                self.min = self.min.min(latency_ns);
                self.max = self.max.max(latency_ns);
            }
            self.count += 1;
        } else {
            self.samples.push(latency_ns);
            self.sorted = None;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        if self.streaming {
            self.count as usize
        } else {
            self.samples.len()
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean latency in nanoseconds (0 when empty). Exact in both modes
    /// (the sum is an integer accumulator).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Mean latency in microseconds (the paper's unit).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }

    fn sorted(&mut self) -> &[u64] {
        if self.sorted.is_none() {
            let mut v = self.samples.clone();
            v.sort_unstable();
            self.sorted = Some(v);
        }
        self.sorted.as_deref().unwrap()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation;
    /// 0 when empty. Exact mode answers with the ranked sample; streaming
    /// mode answers with the lower bound of the bucket holding that rank
    /// (clamped into `[min, max]`), so the answer is within one bucket
    /// width of the exact quantile.
    pub fn quantile_ns(&mut self, q: f64) -> u64 {
        let q = q.clamp(0.0, 1.0);
        if self.streaming {
            if self.count == 0 {
                return 0;
            }
            let rank = ((self.count - 1) as f64 * q).round() as u64;
            let mut seen = 0u64;
            for (idx, &c) in self.bins.iter().enumerate() {
                seen += c;
                if seen > rank {
                    return bucket_lower_bound(idx).clamp(self.min, self.max);
                }
            }
            return self.max;
        }
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Median (50th percentile) in nanoseconds.
    pub fn median_ns(&mut self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// First quartile in nanoseconds.
    pub fn q1_ns(&mut self) -> u64 {
        self.quantile_ns(0.25)
    }

    /// Third quartile in nanoseconds.
    pub fn q3_ns(&mut self) -> u64 {
        self.quantile_ns(0.75)
    }

    /// 95th percentile in nanoseconds.
    pub fn p95_ns(&mut self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99_ns(&mut self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Maximum sample (0 when empty). Exact in both modes.
    pub fn max_ns(&mut self) -> u64 {
        if self.streaming {
            return self.max;
        }
        self.sorted().last().copied().unwrap_or(0)
    }

    /// Minimum sample (0 when empty). Exact in both modes.
    pub fn min_ns(&mut self) -> u64 {
        if self.streaming {
            return self.min;
        }
        self.sorted().first().copied().unwrap_or(0)
    }

    /// Fraction of samples strictly below `threshold_ns`
    /// (e.g. the paper's "80.99 % of packets below 2 µs").
    ///
    /// Streaming mode answers at bucket granularity: samples in the bucket
    /// containing `threshold_ns` count as not-below. When the threshold is
    /// a bucket boundary (powers of two times small integers — 2 µs is
    /// one), the answer is exact.
    pub fn fraction_below(&mut self, threshold_ns: u64) -> f64 {
        if self.streaming {
            if self.count == 0 {
                return 0.0;
            }
            let cut = bucket_of(threshold_ns);
            let below: u64 = self.bins.iter().take(cut).sum();
            return below as f64 / self.count as f64;
        }
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0.0;
        }
        let below = sorted.partition_point(|&x| x < threshold_ns);
        below as f64 / sorted.len() as f64
    }

    /// Merge another collection into this one.
    ///
    /// * streaming ← streaming: elementwise integer bin addition plus
    ///   integer sum/count and min/max folds — order-independent, so any
    ///   shard partition of a delivery stream merges to the bit-identical
    ///   unpartitioned sketch.
    /// * exact ← exact: merges the two **sorted runs** in O(n + m) and
    ///   keeps the result as the sorted cache (no clone-and-resort on the
    ///   next quantile query).
    /// * streaming ← exact: the other side's samples are folded into the
    ///   sketch. The reverse (exact ← streaming) panics — a sketch cannot
    ///   reconstruct its samples. Sharded runs never mix modes: every
    ///   shard observer is a clone of one collector.
    pub fn merge(&mut self, other: &LatencyStats) {
        if self.streaming {
            if other.streaming {
                if other.bins.len() > self.bins.len() {
                    self.bins.resize(other.bins.len(), 0);
                }
                for (bin, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
                    *bin += theirs;
                }
                self.sum += other.sum;
                if other.count > 0 {
                    if self.count == 0 {
                        self.min = other.min;
                        self.max = other.max;
                    } else {
                        self.min = self.min.min(other.min);
                        self.max = self.max.max(other.max);
                    }
                }
                self.count += other.count;
            } else {
                for &s in &other.samples {
                    self.record(s);
                }
            }
            return;
        }
        assert!(
            !other.streaming,
            "cannot merge a streaming sketch into exact-mode LatencyStats"
        );
        // Build both sorted runs, then merge them linearly.
        self.sorted();
        let mut theirs = other.sorted.clone().unwrap_or_else(|| {
            let mut v = other.samples.clone();
            v.sort_unstable();
            v
        });
        let mine = self.sorted.take().unwrap_or_default();
        let mut merged = Vec::with_capacity(mine.len() + theirs.len());
        let (mut i, mut j) = (0, 0);
        while i < mine.len() && j < theirs.len() {
            if mine[i] <= theirs[j] {
                merged.push(mine[i]);
                i += 1;
            } else {
                merged.push(theirs[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&mine[i..]);
        merged.extend_from_slice(&theirs[j..]);
        theirs.clear();
        self.samples.extend_from_slice(&other.samples);
        self.sorted = Some(merged);
        self.sum += other.sum;
    }

    /// Heap footprint of this collection in bytes (the `memory_bytes`
    /// rollup unit): retained samples plus the sorted cache in exact mode,
    /// the fixed-size bin array in streaming mode.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.samples.capacity() * std::mem::size_of::<u64>();
        if let Some(sorted) = &self.sorted {
            bytes += sorted.capacity() * std::mem::size_of::<u64>();
        }
        bytes + self.bins.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(values: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for v in values {
            s.record(*v);
        }
        s
    }

    fn sketch(values: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::streaming();
        for v in values {
            s.record(*v);
        }
        s
    }

    #[test]
    fn empty_stats_report_zeroes() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.fraction_below(100), 0.0);
    }

    #[test]
    fn mean_and_units() {
        let s = stats(&[1_000, 2_000, 3_000]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 2_000.0);
        assert_eq!(s.mean_us(), 2.0);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let values: Vec<u64> = (1..=100).collect();
        let mut s = stats(&values);
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.max_ns(), 100);
        assert_eq!(s.median_ns(), 51);
        assert_eq!(s.q1_ns(), 26);
        assert_eq!(s.q3_ns(), 75);
        assert_eq!(s.p95_ns(), 95);
        assert_eq!(s.p99_ns(), 99);
    }

    #[test]
    fn fraction_below_counts_strictly_less() {
        let mut s = stats(&[1, 2, 2, 3, 10]);
        assert_eq!(s.fraction_below(2), 0.2);
        assert_eq!(s.fraction_below(3), 0.6);
        assert_eq!(s.fraction_below(100), 1.0);
    }

    #[test]
    fn recording_after_a_quantile_query_invalidates_the_cache() {
        let mut s = stats(&[10, 20, 30]);
        assert_eq!(s.max_ns(), 30);
        s.record(100);
        assert_eq!(s.max_ns(), 100);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a = stats(&[1, 2, 3]);
        let b = stats(&[10, 20]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.mean_ns(), 7.2);
        assert_eq!(a.max_ns(), 20);
    }

    #[test]
    fn exact_merge_after_quantile_queries_stays_sorted() {
        // Both sides have warm sorted caches; the merged cache must be the
        // merged sorted run, not a stale or unsorted vector.
        let mut a = stats(&[5, 1, 9]);
        let mut b = stats(&[4, 8, 2]);
        assert_eq!(a.median_ns(), 5);
        assert_eq!(b.median_ns(), 4);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.min_ns(), 1);
        assert_eq!(a.max_ns(), 9);
        assert_eq!(a.median_ns(), 5);
        // And merging un-queried (cold-cache) sides works too.
        let mut c = stats(&[100, 50]);
        c.merge(&stats(&[75]));
        assert_eq!(c.median_ns(), 75);
    }

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..128u64 {
            assert_eq!(bucket_of(v), v as usize, "value {v}");
            assert_eq!(bucket_lower_bound(v as usize), v, "value {v}");
            assert_eq!(bucket_width_ns(v), 1, "value {v}");
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        let mut probe = vec![
            0u64,
            1,
            63,
            64,
            127,
            128,
            129,
            1_999,
            2_000,
            2_001,
            u64::MAX,
        ];
        let mut x = 1u64;
        for _ in 0..500 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            probe.push(x);
            probe.push(x >> (x % 48));
        }
        for &v in &probe {
            let idx = bucket_of(v);
            let lo = bucket_lower_bound(idx);
            let width = bucket_width_ns(v);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            assert!(
                v - lo < width,
                "value {v} outside bucket [{lo}, {lo}+{width})"
            );
            // Relative width bound: 1/64 above the exact region.
            if v >= 128 {
                assert!(width as f64 / lo as f64 <= 1.0 / 64.0 + 1e-12, "value {v}");
            }
        }
    }

    #[test]
    fn streaming_mean_min_max_are_exact() {
        let values = [3u64, 77, 12_345, 999_999_999, 1];
        let mut s = sketch(&values);
        let mut e = stats(&values);
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean_ns(), e.mean_ns());
        assert_eq!(s.min_ns(), e.min_ns());
        assert_eq!(s.max_ns(), e.max_ns());
    }

    #[test]
    fn streaming_quantiles_within_one_bucket_of_exact() {
        // Deterministic xorshift sample sets across several magnitudes.
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for scale in [100u64, 10_000, 5_000_000] {
            let values: Vec<u64> = (0..1_000).map(|_| next() % scale + 1).collect();
            let mut e = stats(&values);
            let mut s = sketch(&values);
            for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
                let exact = e.quantile_ns(q);
                let approx = s.quantile_ns(q);
                let width = bucket_width_ns(exact);
                assert!(
                    approx <= exact && exact - approx <= width,
                    "q={q} scale={scale}: sketch {approx} vs exact {exact} (width {width})"
                );
            }
        }
    }

    #[test]
    fn streaming_fraction_below_is_exact_at_bucket_boundaries() {
        let values: Vec<u64> = (1..=4_000).collect();
        let mut e = stats(&values);
        let mut s = sketch(&values);
        // 2_000 ns is a bucket lower bound in the 6-mantissa-bit sketch.
        assert_eq!(bucket_lower_bound(bucket_of(2_000)), 2_000);
        assert_eq!(s.fraction_below(2_000), e.fraction_below(2_000));
    }

    #[test]
    fn streaming_merge_equals_unpartitioned_sketch_bit_for_bit() {
        let values: Vec<u64> = (0..500u64).map(|i| i * i % 70_000 + 1).collect();
        let whole = sketch(&values);
        // Partition round-robin into three shards, merge in shard order and
        // in reverse order: all three encodings must be byte-identical.
        let mut shards = vec![LatencyStats::streaming(); 3];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut fwd = LatencyStats::streaming();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = LatencyStats::streaming();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        let enc = |s: &LatencyStats| serde_json::to_string(s).unwrap();
        assert_eq!(enc(&fwd), enc(&whole));
        assert_eq!(enc(&rev), enc(&whole));
    }

    #[test]
    fn streaming_memory_is_bounded() {
        let mut s = LatencyStats::streaming();
        for i in 0..1_000_000u64 {
            s.record(i % 10_000_000 + 1);
        }
        assert_eq!(s.count(), 1_000_000);
        // Far below one u64 per sample: the sketch is a few KB.
        assert!(s.memory_bytes() < 64 * 1024, "{}", s.memory_bytes());
    }

    #[test]
    fn legacy_exact_serialization_still_deserializes() {
        let json = r#"{"samples":[5,1,9],"sum":15}"#;
        let mut s: LatencyStats = serde_json::from_str(json).unwrap();
        assert!(!s.is_streaming());
        assert_eq!(s.count(), 3);
        assert_eq!(s.median_ns(), 5);
    }
}
