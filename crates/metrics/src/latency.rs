//! Packet-latency statistics.
//!
//! The paper reports the mean, the quartiles (box plots of Figures 6 and 9)
//! and the 95th/99th percentiles. Samples are stored in nanoseconds and a
//! sorted copy is built lazily when a quantile is first requested.

use serde::{Deserialize, Serialize};

/// A collection of latency samples (nanoseconds).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: Option<Vec<u64>>,
    sum: u128,
}

impl LatencyStats {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in nanoseconds.
    pub fn record(&mut self, latency_ns: u64) {
        self.samples.push(latency_ns);
        self.sum += latency_ns as u128;
        self.sorted = None;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.samples.len() as f64
        }
    }

    /// Mean latency in microseconds (the paper's unit).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }

    fn sorted(&mut self) -> &[u64] {
        if self.sorted.is_none() {
            let mut v = self.samples.clone();
            v.sort_unstable();
            self.sorted = Some(v);
        }
        self.sorted.as_deref().unwrap()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation;
    /// 0 when empty.
    pub fn quantile_ns(&mut self, q: f64) -> u64 {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Median (50th percentile) in nanoseconds.
    pub fn median_ns(&mut self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// First quartile in nanoseconds.
    pub fn q1_ns(&mut self) -> u64 {
        self.quantile_ns(0.25)
    }

    /// Third quartile in nanoseconds.
    pub fn q3_ns(&mut self) -> u64 {
        self.quantile_ns(0.75)
    }

    /// 95th percentile in nanoseconds.
    pub fn p95_ns(&mut self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99_ns(&mut self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Maximum sample (0 when empty).
    pub fn max_ns(&mut self) -> u64 {
        self.sorted().last().copied().unwrap_or(0)
    }

    /// Minimum sample (0 when empty).
    pub fn min_ns(&mut self) -> u64 {
        self.sorted().first().copied().unwrap_or(0)
    }

    /// Fraction of samples strictly below `threshold_ns`
    /// (e.g. the paper's "80.99 % of packets below 2 µs").
    pub fn fraction_below(&mut self, threshold_ns: u64) -> f64 {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0.0;
        }
        let below = sorted.partition_point(|&x| x < threshold_ns);
        below as f64 / sorted.len() as f64
    }

    /// Merge another collection into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(values: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for v in values {
            s.record(*v);
        }
        s
    }

    #[test]
    fn empty_stats_report_zeroes() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.fraction_below(100), 0.0);
    }

    #[test]
    fn mean_and_units() {
        let s = stats(&[1_000, 2_000, 3_000]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 2_000.0);
        assert_eq!(s.mean_us(), 2.0);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let values: Vec<u64> = (1..=100).collect();
        let mut s = stats(&values);
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.max_ns(), 100);
        assert_eq!(s.median_ns(), 51);
        assert_eq!(s.q1_ns(), 26);
        assert_eq!(s.q3_ns(), 75);
        assert_eq!(s.p95_ns(), 95);
        assert_eq!(s.p99_ns(), 99);
    }

    #[test]
    fn fraction_below_counts_strictly_less() {
        let mut s = stats(&[1, 2, 2, 3, 10]);
        assert_eq!(s.fraction_below(2), 0.2);
        assert_eq!(s.fraction_below(3), 0.6);
        assert_eq!(s.fraction_below(100), 1.0);
    }

    #[test]
    fn recording_after_a_quantile_query_invalidates_the_cache() {
        let mut s = stats(&[10, 20, 30]);
        assert_eq!(s.max_ns(), 30);
        s.record(100);
        assert_eq!(s.max_ns(), 100);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a = stats(&[1, 2, 3]);
        let b = stats(&[10, 20]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.mean_ns(), 7.2);
        assert_eq!(a.max_ns(), 20);
    }
}
