//! A small fixed-bin histogram, used for hop-count distributions.

use serde::{Deserialize, Serialize};

/// Histogram over non-negative integer values with unit-width bins
/// `[0, max]`; values above `max` land in the overflow bin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
    weighted_sum: u128,
}

impl Histogram {
    /// Create a histogram covering `0..=max`.
    pub fn new(max: usize) -> Self {
        Self {
            bins: vec![0; max + 1],
            overflow: 0,
            total: 0,
            weighted_sum: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: usize) {
        if value < self.bins.len() {
            self.bins[value] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.weighted_sum += value as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations equal to `value` (0 for values beyond the range).
    pub fn bin(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Observations above the covered range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.weighted_sum as f64 / self.total as f64
        }
    }

    /// The largest value with a non-empty bin, ignoring overflow
    /// (`None` when empty).
    pub fn max_observed(&self) -> Option<usize> {
        self.bins.iter().rposition(|&c| c > 0)
    }

    /// Fraction of observations equal to `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bin(value) as f64 / self.total as f64
        }
    }

    /// Merge another histogram into this one. All accumulators are integer
    /// sums, so merging any partition of a sample stream reproduces the
    /// unpartitioned histogram exactly (what the sharded engine relies on).
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (value, count) in other.bins.iter().enumerate() {
            self.bins[value] += count;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.weighted_sum += other.weighted_sum;
    }

    /// Heap footprint of the bin storage in bytes (bounded by the bin
    /// range, independent of how many values were recorded).
    pub fn memory_bytes(&self) -> usize {
        self.bins.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new(8);
        for v in [3, 3, 4, 5, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bin(3), 3);
        assert_eq!(h.bin(4), 1);
        assert_eq!(h.bin(7), 0);
        assert_eq!(h.mean(), 3.6);
        assert_eq!(h.max_observed(), Some(5));
        assert_eq!(h.fraction(3), 0.6);
    }

    #[test]
    fn overflow_is_tracked_separately() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        // The mean still uses the true values.
        assert_eq!(h.mean(), 5.5);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_observed(), None);
        assert_eq!(h.fraction(0), 0.0);
    }
}
