//! # dragonfly-metrics
//!
//! Measurement primitives for the network simulations: packet-latency
//! statistics (mean, quartiles, tail percentiles), hop-count statistics,
//! throughput accounting normalised by injection bandwidth, binned time
//! series for convergence/dynamic-load plots, and the
//! [`report::SimulationReport`] record that the experiment harness and the
//! figure-reproduction binaries consume.
//!
//! The crate is deliberately free of any simulator dependency so it can be
//! unit-tested in isolation and reused by other tools.

pub mod histogram;
pub mod latency;
pub mod report;
pub mod throughput;
pub mod timeseries;

pub use latency::LatencyStats;
pub use report::SimulationReport;
pub use throughput::ThroughputMeter;
pub use timeseries::TimeSeries;
