//! Binned time series used for the convergence (Figure 7) and dynamic-load
//! (Figure 8) plots: packet latency and delivered bytes are aggregated into
//! fixed-width time bins.

use serde::{Deserialize, Serialize};

/// One bin of the time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Number of packets delivered in the bin.
    pub packets: u64,
    /// Sum of their latencies (ns).
    pub latency_sum_ns: u128,
    /// Sum of their sizes (bytes).
    pub bytes: u128,
}

impl Bin {
    /// Mean latency of the bin in microseconds (0 when empty).
    pub fn mean_latency_us(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.packets as f64 / 1_000.0
        }
    }
}

/// A time series with fixed-width bins starting at t = 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width_ns: u64,
    bins: Vec<Bin>,
}

impl TimeSeries {
    /// Create a series with the given bin width (e.g. 10 µs = 10_000 ns).
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0);
        Self {
            bin_width_ns,
            bins: Vec::new(),
        }
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// Record one delivered packet.
    pub fn record(&mut self, delivered_at_ns: u64, latency_ns: u64, bytes: u32) {
        let idx = (delivered_at_ns / self.bin_width_ns) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, Bin::default());
        }
        let bin = &mut self.bins[idx];
        bin.packets += 1;
        bin.latency_sum_ns += latency_ns as u128;
        bin.bytes += bytes as u128;
    }

    /// Merge another series into this one bin by bin. Panics if the bin
    /// widths differ. All bin fields are integer sums, so merging any
    /// partition of a delivery stream reproduces the unpartitioned series
    /// exactly (what the sharded engine relies on).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bin_width_ns, other.bin_width_ns,
            "cannot merge time series with different bin widths"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), Bin::default());
        }
        for (bin, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            bin.packets += theirs.packets;
            bin.latency_sum_ns += theirs.latency_sum_ns;
            bin.bytes += theirs.bytes;
        }
    }

    /// Number of bins (up to the latest recorded delivery).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Heap footprint of the bin storage in bytes (grows with simulated
    /// time / bin width, independent of how many packets were recorded).
    pub fn memory_bytes(&self) -> usize {
        self.bins.capacity() * std::mem::size_of::<Bin>()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Access a bin (empty default if out of range).
    pub fn bin(&self, idx: usize) -> Bin {
        self.bins.get(idx).copied().unwrap_or_default()
    }

    /// Iterate `(bin_start_ns, bin)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Bin)> {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, b)| (i as u64 * self.bin_width_ns, b))
    }

    /// Per-bin mean latency in µs, as `(time_us, latency_us)` points.
    pub fn latency_curve_us(&self) -> Vec<(f64, f64)> {
        self.iter()
            .map(|(t, b)| (t as f64 / 1_000.0, b.mean_latency_us()))
            .collect()
    }

    /// Per-bin normalised throughput, as `(time_us, throughput)` points.
    pub fn throughput_curve(&self, nodes: usize, injection_bytes_per_ns: f64) -> Vec<(f64, f64)> {
        let capacity = nodes as f64 * injection_bytes_per_ns * self.bin_width_ns as f64;
        self.iter()
            .map(|(t, b)| {
                let tp = if capacity > 0.0 {
                    b.bytes as f64 / capacity
                } else {
                    0.0
                };
                (t as f64 / 1_000.0, tp)
            })
            .collect()
    }

    /// The first bin index (if any) from which the mean latency stays
    /// within `tolerance` (relative) of the mean latency over the last
    /// `tail_bins` bins — a simple convergence-time detector used for the
    /// Figure 7 analysis.
    pub fn convergence_bin(&self, tail_bins: usize, tolerance: f64) -> Option<usize> {
        if self.bins.len() < tail_bins.max(1) {
            return None;
        }
        let tail: Vec<&Bin> = self.bins.iter().rev().take(tail_bins).collect();
        let (packets, latency): (u64, u128) = tail
            .iter()
            .fold((0, 0), |(p, l), b| (p + b.packets, l + b.latency_sum_ns));
        if packets == 0 {
            return None;
        }
        let target = latency as f64 / packets as f64;
        for start in 0..self.bins.len() {
            let ok = self.bins[start..].iter().all(|b| {
                b.packets == 0 || {
                    let m = b.latency_sum_ns as f64 / b.packets as f64;
                    (m - target).abs() <= tolerance * target
                }
            });
            if ok {
                return Some(start);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bins() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(500, 100, 128);
        ts.record(1_500, 300, 128);
        ts.record(1_999, 500, 128);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.bin(0).packets, 1);
        assert_eq!(ts.bin(1).packets, 2);
        assert_eq!(ts.bin(1).mean_latency_us(), 0.4);
        assert_eq!(ts.bin(7).packets, 0);
    }

    #[test]
    fn curves_report_time_in_microseconds() {
        let mut ts = TimeSeries::new(10_000);
        ts.record(25_000, 2_000, 128);
        let lat = ts.latency_curve_us();
        assert_eq!(lat.len(), 3);
        assert_eq!(lat[2], (20.0, 2.0));
        // One 128-byte packet in a 10 us bin of a 1-node system at 4 B/ns:
        // 128 / 40_000.
        let tp = ts.throughput_curve(1, 4.0);
        assert!((tp[2].1 - 128.0 / 40_000.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_detector_finds_the_settling_point() {
        let mut ts = TimeSeries::new(1_000);
        // 5 noisy bins then 15 stable bins at ~100 ns.
        for i in 0..5u64 {
            ts.record(i * 1_000 + 10, 1_000 + i * 500, 128);
        }
        for i in 5..20u64 {
            ts.record(i * 1_000 + 10, 100, 128);
        }
        let c = ts.convergence_bin(5, 0.1).unwrap();
        assert_eq!(c, 5);
    }

    #[test]
    fn convergence_detector_handles_empty_series() {
        let ts = TimeSeries::new(1_000);
        assert_eq!(ts.convergence_bin(5, 0.1), None);
    }
}
