//! System-throughput accounting.
//!
//! The paper defines system throughput as the aggregated message receiving
//! rate across the system, normalised so it is directly comparable with the
//! offered load: delivered bytes per nanosecond divided by the total
//! injection bandwidth (nodes × per-node injection bandwidth). A value of
//! 0.88 therefore means "88 % of the full injection bandwidth was
//! delivered".

use serde::{Deserialize, Serialize};

/// Accumulates delivered bytes over a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    delivered_bytes: u128,
    delivered_packets: u64,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a delivered packet of `bytes` bytes.
    pub fn record(&mut self, bytes: u32) {
        self.delivered_bytes += bytes as u128;
        self.delivered_packets += 1;
    }

    /// Total delivered packets.
    pub fn packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Total delivered bytes.
    pub fn bytes(&self) -> u128 {
        self.delivered_bytes
    }

    /// Delivered bytes per nanosecond over a window of `window_ns`.
    pub fn bytes_per_ns(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / window_ns as f64
    }

    /// Normalised system throughput in `[0, 1]`: delivered bandwidth over
    /// the total injection bandwidth (`nodes × injection_bytes_per_ns`).
    pub fn normalized(&self, window_ns: u64, nodes: usize, injection_bytes_per_ns: f64) -> f64 {
        let capacity = nodes as f64 * injection_bytes_per_ns;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.bytes_per_ns(window_ns) / capacity
    }

    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &ThroughputMeter) {
        self.delivered_bytes += other.delivered_bytes;
        self.delivered_packets += other.delivered_packets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_bytes_and_packets() {
        let mut m = ThroughputMeter::new();
        m.record(128);
        m.record(128);
        m.record(64);
        assert_eq!(m.packets(), 3);
        assert_eq!(m.bytes(), 320);
    }

    #[test]
    fn normalisation_matches_the_paper_definition() {
        // 72 nodes at 4 B/ns injection bandwidth, 100 us window.
        let mut m = ThroughputMeter::new();
        // Deliver exactly half the system capacity: 72 * 4 * 100_000 / 2.
        let target_bytes = 72u64 * 4 * 100_000 / 2;
        let packets = target_bytes / 128;
        for _ in 0..packets {
            m.record(128);
        }
        let tp = m.normalized(100_000, 72, 4.0);
        assert!((tp - 0.5).abs() < 1e-9, "throughput = {tp}");
    }

    #[test]
    fn degenerate_windows_and_capacities_yield_zero() {
        let mut m = ThroughputMeter::new();
        m.record(128);
        assert_eq!(m.bytes_per_ns(0), 0.0);
        assert_eq!(m.normalized(100, 0, 4.0), 0.0);
    }

    #[test]
    fn merge_sums_both_meters() {
        let mut a = ThroughputMeter::new();
        let mut b = ThroughputMeter::new();
        a.record(128);
        b.record(128);
        b.record(128);
        a.merge(&b);
        assert_eq!(a.packets(), 3);
        assert_eq!(a.bytes(), 384);
    }
}
