//! The per-simulation result record consumed by the experiment harness,
//! the examples and the figure-reproduction binaries.

use serde::{Deserialize, Serialize};

/// Everything measured in one simulation run (one routing algorithm, one
/// traffic pattern, one offered load).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Routing algorithm label (e.g. "Q-adp").
    pub routing: String,
    /// Traffic pattern label (e.g. "ADV+1").
    pub traffic: String,
    /// Offered load in `[0, 1]`.
    pub offered_load: f64,
    /// Measurement-window length in ns.
    pub window_ns: u64,
    /// Packets generated during the measurement window.
    pub packets_generated: u64,
    /// Packets delivered during the measurement window.
    pub packets_delivered: u64,
    /// Normalised system throughput in `[0, 1]`.
    pub throughput: f64,
    /// Mean packet latency (µs).
    pub mean_latency_us: f64,
    /// Median packet latency (µs).
    pub median_latency_us: f64,
    /// First-quartile latency (µs).
    pub q1_latency_us: f64,
    /// Third-quartile latency (µs).
    pub q3_latency_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_latency_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: f64,
    /// Maximum observed latency (µs).
    pub max_latency_us: f64,
    /// Mean hop count of delivered packets.
    pub mean_hops: f64,
    /// Fraction of delivered packets with latency below 2 µs (the paper's
    /// Figure 6(c) discussion).
    pub fraction_below_2us: f64,
    /// Wall-clock seconds the simulation took (for performance reporting).
    pub wall_seconds: f64,
    /// Simulated events processed.
    pub events_processed: u64,
    /// Job completion time in µs: when the last rank's task program
    /// finished (closed-loop workload runs only; 0 otherwise).
    #[serde(default)]
    pub job_completion_us: f64,
    /// Ranks whose task program ran to completion (equals the node count
    /// when the job drained fully).
    #[serde(default)]
    pub ranks_finished: u64,
    /// Completion time of each workload phase in µs (the last rank to
    /// pass the phase marker; index = phase slot).
    #[serde(default)]
    pub phase_completion_us: Vec<f64>,
    /// Total time ranks spent blocked in barrier receives, in µs.
    #[serde(default)]
    pub barrier_wait_us: f64,
    /// Collective skew in µs: the spread between the last and the first
    /// rank to finish the job.
    #[serde(default)]
    pub collective_skew_us: f64,
    /// Packets dropped during the whole run (fault-killed resources, TTL
    /// expiry, exhausted retry budgets); 0 on fault-free runs.
    #[serde(default)]
    pub dropped_packets: u64,
    /// NIC retransmissions triggered by drop notifications.
    #[serde(default)]
    pub retransmits: u64,
    /// Distinct `(src, dst)` node pairs that abandoned at least one
    /// message after exhausting the retry budget.
    #[serde(default)]
    pub unreachable_pairs: u64,
    /// Time from the first injected fault until the per-bin mean latency
    /// returned to within 10 % of its pre-fault baseline, in µs (0 when
    /// the run had no faults or no time series).
    #[serde(default)]
    pub recovery_time_us: f64,
    /// Approximate resident bytes held by the simulation state at the end
    /// of the run: Q-tables and per-agent scratch, the packet arena, and
    /// the metrics accumulators (sketches, histograms, time series). Used
    /// by the bounded-memory scale benchmarks.
    #[serde(default)]
    pub memory_bytes: u64,
}

impl SimulationReport {
    /// The CSV header matching [`SimulationReport::csv_row`].
    pub fn csv_header() -> String {
        "routing,traffic,offered_load,throughput,mean_latency_us,median_latency_us,\
         q1_latency_us,q3_latency_us,p95_latency_us,p99_latency_us,mean_hops,\
         packets_delivered,packets_generated,job_completion_us,ranks_finished,\
         barrier_wait_us,collective_skew_us,dropped_packets,retransmits,\
         unreachable_pairs,recovery_time_us,phase_completion_us"
            .to_string()
    }

    /// One CSV row. The per-phase completion vector is ';'-joined so it
    /// stays a single CSV column.
    pub fn csv_row(&self) -> String {
        let phases = self
            .phase_completion_us
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(";");
        format!(
            "{},{},{:.3},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{:.3},{},{:.3},{:.3},{},{},{},{:.3},{}",
            self.routing,
            self.traffic,
            self.offered_load,
            self.throughput,
            self.mean_latency_us,
            self.median_latency_us,
            self.q1_latency_us,
            self.q3_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.mean_hops,
            self.packets_delivered,
            self.packets_generated,
            self.job_completion_us,
            self.ranks_finished,
            self.barrier_wait_us,
            self.collective_skew_us,
            self.dropped_packets,
            self.retransmits,
            self.unreachable_pairs,
            self.recovery_time_us,
            phases,
        )
    }

    /// A compact single-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:<10} {:<14} load={:.2}  tput={:.3}  lat(mean/p95/p99)={:.2}/{:.2}/{:.2} us  hops={:.2}",
            self.routing,
            self.traffic,
            self.offered_load,
            self.throughput,
            self.mean_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.mean_hops
        );
        if self.ranks_finished > 0 {
            s.push_str(&format!(
                "  jct={:.2} us ({} ranks, skew {:.2} us)",
                self.job_completion_us, self.ranks_finished, self.collective_skew_us
            ));
        }
        s
    }

    /// Delivered-to-generated ratio of the measurement window (1.0 means
    /// the network kept up with the offered load).
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_generated == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / self.packets_generated as f64
        }
    }
}

/// Mean and standard error of one measured quantity across repetitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanSe {
    /// Sample mean across the repetitions.
    pub mean: f64,
    /// Standard error of the mean (sample std-dev / sqrt(n)); 0 for n = 1.
    pub se: f64,
}

impl MeanSe {
    /// Compute mean and standard error of `values`.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self::default();
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self { mean, se: 0.0 };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Self {
            mean,
            se: (var / n as f64).sqrt(),
        }
    }

    /// `mean ± se` rendered with three decimals.
    pub fn display(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.se)
    }
}

/// One sweep point aggregated across `seeds_per_point` repetitions: the
/// mean and standard error of every headline metric.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregatedReport {
    /// Routing algorithm label.
    pub routing: String,
    /// Traffic pattern label.
    pub traffic: String,
    /// Offered load in `[0, 1]`.
    pub offered_load: f64,
    /// Number of repetitions aggregated.
    pub runs: usize,
    /// Normalised throughput.
    pub throughput: MeanSe,
    /// Mean packet latency (µs).
    pub mean_latency_us: MeanSe,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: MeanSe,
    /// Mean hop count.
    pub mean_hops: MeanSe,
    /// Packets delivered in the measurement window.
    pub packets_delivered: MeanSe,
}

impl AggregatedReport {
    /// Aggregate a group of repetitions of the same `(routing, traffic,
    /// load)` point. Panics on an empty group.
    pub fn from_group(reports: &[&SimulationReport]) -> Self {
        let first = reports
            .first()
            .expect("aggregation group must be non-empty");
        let col = |f: fn(&SimulationReport) -> f64| {
            MeanSe::of(&reports.iter().map(|r| f(r)).collect::<Vec<_>>())
        };
        Self {
            routing: first.routing.clone(),
            traffic: first.traffic.clone(),
            offered_load: first.offered_load,
            runs: reports.len(),
            throughput: col(|r| r.throughput),
            mean_latency_us: col(|r| r.mean_latency_us),
            p99_latency_us: col(|r| r.p99_latency_us),
            mean_hops: col(|r| r.mean_hops),
            packets_delivered: col(|r| r.packets_delivered as f64),
        }
    }

    /// The CSV header matching [`AggregatedReport::csv_row`].
    pub fn csv_header() -> String {
        "routing,traffic,offered_load,runs,throughput_mean,throughput_se,\
         mean_latency_us_mean,mean_latency_us_se,p99_latency_us_mean,p99_latency_us_se,\
         mean_hops_mean,mean_hops_se,packets_delivered_mean"
            .to_string()
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{:.4},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1}",
            self.routing,
            self.traffic,
            self.offered_load,
            self.runs,
            self.throughput.mean,
            self.throughput.se,
            self.mean_latency_us.mean,
            self.mean_latency_us.se,
            self.p99_latency_us.mean,
            self.p99_latency_us.se,
            self.mean_hops.mean,
            self.mean_hops.se,
            self.packets_delivered.mean,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimulationReport {
        SimulationReport {
            routing: "Q-adp".to_string(),
            traffic: "UR".to_string(),
            offered_load: 0.8,
            window_ns: 100_000,
            packets_generated: 1_000,
            packets_delivered: 990,
            throughput: 0.79,
            mean_latency_us: 0.76,
            median_latency_us: 0.7,
            q1_latency_us: 0.6,
            q3_latency_us: 0.9,
            p95_latency_us: 1.2,
            p99_latency_us: 1.42,
            max_latency_us: 3.0,
            mean_hops: 2.9,
            fraction_below_2us: 0.99,
            wall_seconds: 0.5,
            events_processed: 12345,
            job_completion_us: 41.5,
            ranks_finished: 72,
            phase_completion_us: vec![20.0, 41.5],
            barrier_wait_us: 3.25,
            collective_skew_us: 1.75,
            dropped_packets: 7,
            retransmits: 5,
            unreachable_pairs: 1,
            recovery_time_us: 12.5,
            memory_bytes: 4096,
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_fields = SimulationReport::csv_header().split(',').count();
        let row_fields = report().csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn phase_vector_stays_one_csv_column() {
        let row = report().csv_row();
        assert_eq!(
            row.split(',').count(),
            SimulationReport::csv_header().split(',').count()
        );
        assert!(row.ends_with("20.000;41.500"), "{row}");
    }

    #[test]
    fn reports_without_completion_fields_still_deserialize() {
        // A PR-5-era report JSON has none of the closed-loop fields.
        let legacy = r#"{"routing":"MIN","traffic":"UR","offered_load":0.5,
            "window_ns":1000,"packets_generated":10,"packets_delivered":10,
            "throughput":0.5,"mean_latency_us":1.0,"median_latency_us":1.0,
            "q1_latency_us":1.0,"q3_latency_us":1.0,"p95_latency_us":1.0,
            "p99_latency_us":1.0,"max_latency_us":1.0,"mean_hops":2.0,
            "fraction_below_2us":1.0,"wall_seconds":0.1,"events_processed":99}"#;
        let r: SimulationReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.ranks_finished, 0);
        assert_eq!(r.job_completion_us, 0.0);
        assert!(r.phase_completion_us.is_empty());
        // Resilience fields (PR 7) default to zero as well.
        assert_eq!(r.dropped_packets, 0);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.unreachable_pairs, 0);
        assert_eq!(r.recovery_time_us, 0.0);
        // Memory accounting (PR 8) defaults to zero.
        assert_eq!(r.memory_bytes, 0);
    }

    #[test]
    fn summary_contains_the_key_numbers() {
        let s = report().summary();
        assert!(s.contains("Q-adp"));
        assert!(s.contains("UR"));
        assert!(s.contains("0.80") || s.contains("0.8"));
        assert!(s.contains("1.42"));
    }

    #[test]
    fn delivery_ratio() {
        assert!((report().delivery_ratio() - 0.99).abs() < 1e-12);
        let empty = SimulationReport::default();
        assert_eq!(empty.delivery_ratio(), 0.0);
    }

    #[test]
    fn mean_se_basics() {
        assert_eq!(MeanSe::of(&[]), MeanSe::default());
        let single = MeanSe::of(&[4.0]);
        assert_eq!((single.mean, single.se), (4.0, 0.0));
        // Known case: values 1..5 have mean 3, sample sd sqrt(2.5),
        // se = sqrt(2.5/5) = sqrt(0.5).
        let m = MeanSe::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((m.mean - 3.0).abs() < 1e-12);
        assert!((m.se - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn aggregation_across_repetitions() {
        let mut a = report();
        let mut b = report();
        a.throughput = 0.7;
        b.throughput = 0.9;
        a.packets_delivered = 900;
        b.packets_delivered = 1_100;
        let agg = AggregatedReport::from_group(&[&a, &b]);
        assert_eq!(agg.runs, 2);
        assert!((agg.throughput.mean - 0.8).abs() < 1e-12);
        assert!(agg.throughput.se > 0.0);
        assert!((agg.packets_delivered.mean - 1_000.0).abs() < 1e-12);
        assert_eq!(agg.routing, "Q-adp");
    }

    #[test]
    fn aggregated_csv_row_matches_header_arity() {
        let agg = AggregatedReport::from_group(&[&report()]);
        let header_fields = AggregatedReport::csv_header().split(',').count();
        let row_fields = agg.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert_eq!(agg.runs, 1);
        assert_eq!(agg.throughput.se, 0.0, "single run has zero std error");
    }
}
