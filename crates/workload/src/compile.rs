//! Lowering [`WorkloadSpec`]s to per-node task programs.
//!
//! A *communicator* is a contiguous range of node ids; rank `r` of a
//! communicator starting at `s` is node `s + r`. The top-level spec runs
//! on the all-nodes communicator; `mix` splits it into contiguous chunks.
//! Every lowering is structurally matched — each `Send{dst, m}` has a
//! `Recv{from, m}` counterpart in `dst`'s program and no node ever sends
//! to itself — which is what lets the closed-loop engine drain to
//! completion (pinned by the tests below and the determinism suites).
//!
//! Offered *intensity* scales collective message counts (`max(1,
//! ceil(m × intensity))`) so load sweeps can reuse one spec; barrier
//! messages stay at one packet — a barrier's cost is latency, not volume.

use crate::spec::{usable_axes, WorkloadSpec};
use dragonfly_engine::workload::{NodeProgram, Op};
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::{AnyTopology, Topology};
use dragonfly_traffic::grid::Grid3D;

/// Phase indices reported to observers are clamped below this bound, so
/// per-phase metric vectors stay small for arbitrarily long workloads.
pub const MAX_PHASES: u32 = 32;

/// A contiguous rank → node mapping.
#[derive(Debug, Clone, Copy)]
struct Comm {
    start: usize,
    len: usize,
}

impl Comm {
    fn node(&self, rank: usize) -> NodeId {
        debug_assert!(rank < self.len);
        NodeId::from_index(self.start + rank)
    }
}

impl WorkloadSpec {
    /// Validate against `topo` and lower to one program per node.
    ///
    /// `intensity` scales collective message counts (1.0 = the spec's
    /// literal counts); it plays the role the offered-load dial plays for
    /// open-loop traffic, so load-vs-completion-time sweeps can vary it.
    pub fn compile(&self, topo: &AnyTopology, intensity: f64) -> Result<Vec<NodeProgram>, String> {
        self.validate(topo)?;
        if intensity <= 0.0 || !intensity.is_finite() {
            return Err(format!(
                "workload intensity must be a positive finite number, got {intensity}"
            ));
        }
        let grid = Grid3D::for_system(topo);
        let axes = usable_axes(&grid);
        let mut lowering = Lowering {
            grid,
            axes,
            intensity,
            programs: vec![Vec::new(); topo.num_nodes()],
            next_phase: 0,
        };
        lowering.lower(
            self,
            Comm {
                start: 0,
                len: topo.num_nodes(),
            },
        );
        Ok(lowering.programs)
    }
}

struct Lowering {
    grid: Grid3D,
    /// Grid axes (0 = x, 1 = y, 2 = z) with at least two points.
    axes: Vec<usize>,
    intensity: f64,
    programs: Vec<NodeProgram>,
    next_phase: u32,
}

impl Lowering {
    fn push(&mut self, node: NodeId, op: Op) {
        self.programs[node.index()].push(op);
    }

    /// Collective message count under the current intensity.
    fn scale(&self, messages: u32) -> u32 {
        let scaled = (messages as f64 * self.intensity).ceil().max(1.0);
        (scaled as u64).min(u32::MAX as u64) as u32
    }

    /// Allocate the next phase index (clamped to [`MAX_PHASES`]) and mark
    /// it completed-on-reach for every rank of `comm`.
    fn mark_phase(&mut self, comm: Comm) {
        let index = self.next_phase.min(MAX_PHASES - 1);
        self.next_phase = self.next_phase.saturating_add(1);
        for rank in 0..comm.len {
            self.push(comm.node(rank), Op::Phase { index });
        }
    }

    /// One matched transfer: `messages` packets from rank `src` to rank
    /// `dst` of `comm` (a `Send` in src's program, a `Recv` in dst's).
    fn transfer(&mut self, comm: Comm, src: usize, dst: usize, messages: u32, barrier: bool) {
        debug_assert_ne!(src, dst);
        self.push(
            comm.node(src),
            Op::Send {
                dst: comm.node(dst),
                messages,
            },
        );
        self.push(
            comm.node(dst),
            Op::Recv {
                from: comm.node(src),
                messages,
                barrier,
            },
        );
    }

    fn lower(&mut self, spec: &WorkloadSpec, comm: Comm) {
        match spec {
            WorkloadSpec::AllReduce { messages } => self.lower_allreduce(comm, *messages),
            WorkloadSpec::AllToAll { messages } => self.lower_alltoall(comm, *messages),
            WorkloadSpec::Broadcast { root, messages } => {
                let s = self.scale(*messages);
                self.bcast_tree(comm, *root, 0, comm.len, s, false);
                self.mark_phase(comm);
            }
            WorkloadSpec::Scatter { root, messages } => {
                let s = self.scale(*messages);
                self.bcast_tree(comm, *root, 0, comm.len, s, true);
                self.mark_phase(comm);
            }
            WorkloadSpec::Gather { root, messages } => {
                let s = self.scale(*messages);
                self.gather_tree(comm, *root, 0, comm.len, s);
                self.mark_phase(comm);
            }
            WorkloadSpec::Barrier => self.lower_barrier(comm),
            WorkloadSpec::HaloExchange {
                phases,
                messages,
                compute_ns,
            } => self.lower_halo(comm, *phases, *messages, *compute_ns),
            WorkloadSpec::Compute { ns } => {
                for rank in 0..comm.len {
                    self.push(comm.node(rank), Op::Compute { delay_ns: *ns });
                }
                self.mark_phase(comm);
            }
            WorkloadSpec::Sequence(parts) => {
                for part in parts {
                    self.lower(part, comm);
                }
            }
            WorkloadSpec::Repeat { times, body } => {
                for _ in 0..*times {
                    self.lower(body, comm);
                }
            }
            WorkloadSpec::Mix(parts) => {
                let (n, k) = (comm.len, parts.len());
                let mut start = comm.start;
                for (i, part) in parts.iter().enumerate() {
                    let len = n / k + usize::from(i < n % k);
                    self.lower(part, Comm { start, len });
                    start += len;
                }
            }
        }
    }

    /// Recursive doubling with the standard pre/post fold for
    /// non-power-of-two sizes: ranks `p2..n` fold their contribution into
    /// `r − p2`, ranks `< p2` run `log₂ p2` exchange rounds (partner
    /// `r xor dist`), then results fold back out.
    fn lower_allreduce(&mut self, comm: Comm, messages: u32) {
        let n = comm.len;
        let s = self.scale(messages);
        let p2 = prev_pow2(n);
        for r in p2..n {
            self.transfer(comm, r, r - p2, s, false);
        }
        let mut dist = 1;
        while dist < p2 {
            // Emit all sends of a round before its receives so every
            // rank's packets are posted before anyone blocks.
            for r in 0..p2 {
                self.push(
                    comm.node(r),
                    Op::Send {
                        dst: comm.node(r ^ dist),
                        messages: s,
                    },
                );
            }
            for r in 0..p2 {
                self.push(
                    comm.node(r),
                    Op::Recv {
                        from: comm.node(r ^ dist),
                        messages: s,
                        barrier: false,
                    },
                );
            }
            dist <<= 1;
        }
        for r in p2..n {
            self.transfer(comm, r - p2, r, s, false);
        }
        self.mark_phase(comm);
    }

    /// Staggered ring: round `k` sends to `r + k`, receives from `r − k`,
    /// spreading load across distinct partner pairs each round.
    fn lower_alltoall(&mut self, comm: Comm, messages: u32) {
        let n = comm.len;
        let s = self.scale(messages);
        for k in 1..n {
            for r in 0..n {
                self.push(
                    comm.node(r),
                    Op::Send {
                        dst: comm.node((r + k) % n),
                        messages: s,
                    },
                );
            }
            for r in 0..n {
                self.push(
                    comm.node(r),
                    Op::Recv {
                        from: comm.node((r + n - k) % n),
                        messages: s,
                        barrier: false,
                    },
                );
            }
        }
        self.mark_phase(comm);
    }

    /// Dissemination barrier: `⌈log₂ n⌉` rounds; in round `k` rank `r`
    /// sends one packet to `r + 2^k` and waits for one from `r − 2^k`.
    /// Unit messages regardless of intensity.
    fn lower_barrier(&mut self, comm: Comm) {
        let n = comm.len;
        let mut dist = 1;
        while dist < n {
            for r in 0..n {
                self.push(
                    comm.node(r),
                    Op::Send {
                        dst: comm.node((r + dist) % n),
                        messages: 1,
                    },
                );
            }
            for r in 0..n {
                self.push(
                    comm.node(r),
                    Op::Recv {
                        from: comm.node((r + n - dist) % n),
                        messages: 1,
                        barrier: true,
                    },
                );
            }
            dist <<= 1;
        }
        self.mark_phase(comm);
    }

    /// Recursive-halving tree on virtual ranks (rotated so `root` is
    /// virtual rank 0). The holder of `[lo, hi)` hands `[mid, hi)` off to
    /// `mid` and recurses. With `weighted` (scatter) the edge carries
    /// `s × (hi − mid)` packets — the moved subtree — else a constant `s`
    /// (broadcast).
    fn bcast_tree(
        &mut self,
        comm: Comm,
        root: usize,
        lo: usize,
        hi: usize,
        s: u32,
        weighted: bool,
    ) {
        if hi - lo <= 1 {
            return;
        }
        let mid = lo + (hi - lo).div_ceil(2);
        let edge = if weighted {
            edge_messages(s, hi - mid)
        } else {
            s
        };
        let n = comm.len;
        self.transfer(comm, (lo + root) % n, (mid + root) % n, edge, false);
        self.bcast_tree(comm, root, lo, mid, s, weighted);
        self.bcast_tree(comm, root, mid, hi, s, weighted);
    }

    /// The reverse tree: children gather first, then `mid` forwards its
    /// whole subtree (`s × (hi − mid)` packets) to `lo`.
    fn gather_tree(&mut self, comm: Comm, root: usize, lo: usize, hi: usize, s: u32) {
        if hi - lo <= 1 {
            return;
        }
        let mid = lo + (hi - lo).div_ceil(2);
        self.gather_tree(comm, root, lo, mid, s);
        self.gather_tree(comm, root, mid, hi, s);
        let n = comm.len;
        self.transfer(
            comm,
            (mid + root) % n,
            (lo + root) % n,
            edge_messages(s, hi - mid),
            false,
        );
    }

    /// Phased halo exchange: phase `p` computes, then exchanges with the
    /// ±1 wrap-around neighbours along the `p`-th usable grid axis (one
    /// neighbour when the axis has exactly two points).
    fn lower_halo(&mut self, comm: Comm, phases: u32, messages: u32, compute_ns: u64) {
        let s = self.scale(messages);
        for p in 0..phases as usize {
            let axis = self.axes[p];
            for rank in 0..comm.len {
                let node = comm.node(rank);
                if compute_ns > 0 {
                    self.push(
                        node,
                        Op::Compute {
                            delay_ns: compute_ns,
                        },
                    );
                }
                for neighbour in self.axis_neighbors(node, axis) {
                    self.push(
                        node,
                        Op::Send {
                            dst: neighbour,
                            messages: s,
                        },
                    );
                }
            }
            for rank in 0..comm.len {
                let node = comm.node(rank);
                for neighbour in self.axis_neighbors(node, axis) {
                    self.push(
                        node,
                        Op::Recv {
                            from: neighbour,
                            messages: s,
                            barrier: false,
                        },
                    );
                }
            }
            self.mark_phase(comm);
        }
    }

    /// The ±1 wrap-around neighbours of `node` along one grid axis,
    /// deduplicated (a size-2 axis has one neighbour, not two). The
    /// relation is symmetric, so sends and receives pair up exactly.
    fn axis_neighbors(&self, node: NodeId, axis: usize) -> Vec<NodeId> {
        let (x, y, z) = self.grid.coords(node);
        let dims = [self.grid.x, self.grid.y, self.grid.z];
        let size = dims[axis];
        let mut out = Vec::with_capacity(2);
        for delta in [1, size - 1] {
            let mut c = [x, y, z];
            c[axis] = (c[axis] + delta) % size;
            let neighbour = self.grid.node(c[0], c[1], c[2]);
            if neighbour != node && !out.contains(&neighbour) {
                out.push(neighbour);
            }
        }
        out
    }
}

/// Largest power of two ≤ `n` (`n ≥ 1`).
fn prev_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// A tree edge moving `subtree` ranks' worth of `s`-packet payloads.
fn edge_messages(s: u32, subtree: usize) -> u32 {
    (s as u64 * subtree as u64).min(u32::MAX as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::{Dragonfly, HyperX, HyperXConfig};
    use std::collections::HashMap;

    fn tiny() -> AnyTopology {
        // 2 × 4 × 9 grid = 72 nodes (not a power of two).
        Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    fn pow2_topo() -> AnyTopology {
        // 2 nodes/router on a 4 × 4 router grid = 32 nodes.
        HyperX::new(HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        })
        .into()
    }

    /// Structural invariant of every lowering: per (src, dst) pair, the
    /// packets sent equal the packets expected, and nothing self-sends.
    fn assert_matched(programs: &[NodeProgram]) {
        let mut sent: HashMap<(usize, usize), u64> = HashMap::new();
        let mut expected: HashMap<(usize, usize), u64> = HashMap::new();
        for (i, program) in programs.iter().enumerate() {
            for op in program {
                match op {
                    Op::Send { dst, messages } => {
                        assert_ne!(dst.index(), i, "node {i} sends to itself");
                        *sent.entry((i, dst.index())).or_default() += *messages as u64;
                    }
                    Op::Recv { from, messages, .. } => {
                        *expected.entry((from.index(), i)).or_default() += *messages as u64;
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(sent, expected);
    }

    fn send_total(program: &NodeProgram) -> u64 {
        program
            .iter()
            .map(|op| match op {
                Op::Send { messages, .. } => *messages as u64,
                _ => 0,
            })
            .sum()
    }

    fn recv_total(program: &NodeProgram) -> u64 {
        program
            .iter()
            .map(|op| match op {
                Op::Recv { messages, .. } => *messages as u64,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn allreduce_on_a_power_of_two_sends_log2_rounds() {
        let topo = pow2_topo();
        let programs = WorkloadSpec::AllReduce { messages: 4 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&programs);
        // 32 ranks → 5 rounds of 4 messages from every rank.
        for program in &programs {
            assert_eq!(send_total(program), 5 * 4);
        }
    }

    #[test]
    fn allreduce_folds_non_power_of_two_sizes() {
        let topo = tiny(); // 72 = 64 + 8
        let programs = WorkloadSpec::AllReduce { messages: 2 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&programs);
        // The 8 folded ranks only fold in and out again.
        for program in &programs[64..] {
            assert_eq!(send_total(program), 2);
            assert_eq!(recv_total(program), 2);
        }
        // Participating ranks run 6 doubling rounds plus any fold edges.
        for program in &programs[..64] {
            assert!(send_total(program) >= 6 * 2);
        }
    }

    #[test]
    fn alltoall_reaches_every_peer() {
        let topo = tiny();
        let n = topo.num_nodes() as u64;
        let programs = WorkloadSpec::AllToAll { messages: 3 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&programs);
        for program in &programs {
            assert_eq!(send_total(program), (n - 1) * 3);
        }
    }

    #[test]
    fn barrier_messages_ignore_intensity() {
        let topo = tiny();
        let programs = WorkloadSpec::Barrier.compile(&topo, 5.0).unwrap();
        assert_matched(&programs);
        let rounds = (topo.num_nodes() as f64).log2().ceil() as u64;
        for program in &programs {
            assert_eq!(send_total(program), rounds);
            for op in program {
                if let Op::Send { messages, .. } = op {
                    assert_eq!(*messages, 1);
                }
                if let Op::Recv { barrier, .. } = op {
                    assert!(*barrier);
                }
            }
        }
    }

    #[test]
    fn scatter_and_gather_move_subtree_sized_edges() {
        let topo = tiny();
        let n = topo.num_nodes() as u64;
        let root = 5;
        let scatter = WorkloadSpec::Scatter { root, messages: 2 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&scatter);
        assert_eq!(send_total(&scatter[root]), (n - 1) * 2);
        let gather = WorkloadSpec::Gather { root, messages: 2 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&gather);
        assert_eq!(recv_total(&gather[root]), (n - 1) * 2);
        let bcast = WorkloadSpec::Broadcast { root, messages: 2 }
            .compile(&topo, 1.0)
            .unwrap();
        assert_matched(&bcast);
        // Broadcast edges are constant-size: every non-root receives s.
        for (i, program) in bcast.iter().enumerate() {
            if i != root {
                assert_eq!(recv_total(program), 2);
            }
        }
    }

    #[test]
    fn halo_phases_walk_the_usable_axes() {
        let topo = tiny(); // grid 2 × 4 × 9: all three axes usable
        let programs = WorkloadSpec::HaloExchange {
            phases: 2,
            messages: 4,
            compute_ns: 100,
        }
        .compile(&topo, 1.0)
        .unwrap();
        assert_matched(&programs);
        for program in &programs {
            // Phase 0 exchanges along x (size 2 → one neighbour), phase 1
            // along y (size 4 → two neighbours): 3 × 4 messages total.
            assert_eq!(send_total(program), (1 + 2) * 4);
            let computes = program
                .iter()
                .filter(|op| matches!(op, Op::Compute { .. }))
                .count();
            assert_eq!(computes, 2);
            let phases: Vec<u32> = program
                .iter()
                .filter_map(|op| match op {
                    Op::Phase { index } => Some(*index),
                    _ => None,
                })
                .collect();
            assert_eq!(phases, vec![0, 1]);
        }
    }

    #[test]
    fn intensity_scales_collective_messages() {
        let topo = pow2_topo();
        let programs = WorkloadSpec::AllReduce { messages: 4 }
            .compile(&topo, 2.5)
            .unwrap();
        // ceil(4 × 2.5) = 10 per round.
        for program in &programs {
            assert_eq!(send_total(program), 5 * 10);
        }
        // Intensity never scales a collective to zero.
        let faint = WorkloadSpec::AllReduce { messages: 4 }
            .compile(&topo, 1e-6)
            .unwrap();
        for program in &faint {
            assert_eq!(send_total(program), 5);
        }
        assert!(WorkloadSpec::Barrier.compile(&topo, 0.0).is_err());
    }

    #[test]
    fn combinators_compose_and_mix_partitions_contiguously() {
        let topo = tiny();
        let n = topo.num_nodes();
        let spec = WorkloadSpec::Sequence(vec![
            WorkloadSpec::Repeat {
                times: 2,
                body: Box::new(WorkloadSpec::AllReduce { messages: 2 }),
            },
            WorkloadSpec::Mix(vec![
                WorkloadSpec::AllToAll { messages: 1 },
                WorkloadSpec::Barrier,
            ]),
            WorkloadSpec::Barrier,
        ]);
        let programs = spec.compile(&topo, 1.0).unwrap();
        assert_matched(&programs);
        assert_eq!(programs.len(), n);
        assert!(programs.iter().all(|p| !p.is_empty()));
        // A pure mix never sends across its chunk boundary.
        let half = n / 2;
        let mix_only = WorkloadSpec::Mix(vec![
            WorkloadSpec::AllToAll { messages: 1 },
            WorkloadSpec::Barrier,
        ])
        .compile(&topo, 1.0)
        .unwrap();
        assert_matched(&mix_only);
        for (i, program) in mix_only.iter().enumerate() {
            for op in program {
                if let Op::Send { dst, .. } = op {
                    assert_eq!(
                        i < half,
                        dst.index() < half,
                        "mix chunk leaked: {i} -> {}",
                        dst.index()
                    );
                }
            }
        }
    }

    #[test]
    fn phase_indices_clamp_below_max_phases() {
        let topo = pow2_topo();
        let spec = WorkloadSpec::Repeat {
            times: MAX_PHASES + 8,
            body: Box::new(WorkloadSpec::Compute { ns: 10 }),
        };
        let programs = spec.compile(&topo, 1.0).unwrap();
        let max_index = programs[0]
            .iter()
            .filter_map(|op| match op {
                Op::Phase { index } => Some(*index),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_index, MAX_PHASES - 1);
    }

    #[test]
    fn compiled_collectives_drain_on_the_closed_loop_engine() {
        use dragonfly_engine::injector::EmptyInjector;
        use dragonfly_engine::observer::CountingObserver;
        use dragonfly_engine::routing::RoutingAlgorithm;
        use dragonfly_engine::testing::MinimalTestRouting;
        use dragonfly_engine::{Engine, EngineConfig, ShardKind};

        let topo = tiny();
        let n = topo.num_nodes();
        let spec = WorkloadSpec::Sequence(vec![
            WorkloadSpec::AllReduce { messages: 2 },
            WorkloadSpec::Barrier,
        ]);
        let programs = spec.compile(&topo, 1.0).unwrap();
        let expected_sends: u64 = programs.iter().map(send_total).sum();
        let algo = MinimalTestRouting;
        let mut cfg = EngineConfig::paper(algo.num_vcs());
        cfg.shards = ShardKind::Fixed(2);
        let mut engine = Engine::new(
            topo,
            cfg,
            &algo,
            Box::new(EmptyInjector),
            CountingObserver::default(),
            42,
        );
        engine.install_workload(programs);
        engine.run_to_drain(100_000_000);
        assert_eq!(engine.tasks_finished(), n as u64);
        let stats = engine.stats();
        assert_eq!(stats.generated, expected_sends);
        assert_eq!(stats.delivered, expected_sends);
    }
}
