//! [`WorkloadSpec`] — the serialisable "which application" description
//! used by experiment specs and scenario files.
//!
//! The wire form mirrors [`TopologySpec`]: an externally tagged map with a
//! lowercase tag, plus a parameterless string short form:
//!
//! ```toml
//! [workload.allreduce]
//! messages = 4
//!
//! # or, all defaults:
//! workload = "barrier"
//!
//! # combinators nest as inline arrays (the vendored TOML subset has no
//! # [[array of tables]]):
//! [workload]
//! sequence = [ { allreduce = { messages = 2 } }, "barrier" ]
//!
//! # repeat is a table with a body sub-table:
//! [workload.repeat]
//! times = 3
//! [workload.repeat.body.haloexchange]
//! phases = 2
//! ```
//!
//! [`TopologySpec`]: dragonfly_topology::spec::TopologySpec

use dragonfly_topology::{AnyTopology, Topology};
use dragonfly_traffic::grid::Grid3D;
use serde::{Deserialize, Error, Serialize, Value};

/// Default message count per partner for the collectives.
pub const DEFAULT_MESSAGES: u32 = 4;
/// Default compute block length (halo phases, `compute`).
pub const DEFAULT_COMPUTE_NS: u64 = 200;
/// Default number of halo phases.
pub const DEFAULT_PHASES: u32 = 2;

/// A serialisable closed-loop workload description: collectives, the
/// halo-exchange skeleton, compute blocks and combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Recursive-doubling all-reduce over the whole communicator.
    AllReduce {
        /// Packets exchanged with each partner per round.
        messages: u32,
    },
    /// Staggered-ring all-to-all (`n − 1` rounds).
    AllToAll {
        /// Packets sent to each peer.
        messages: u32,
    },
    /// Binomial-tree broadcast from `root`.
    Broadcast {
        /// Root rank within the communicator.
        root: usize,
        /// Packets forwarded along each tree edge.
        messages: u32,
    },
    /// Binomial-tree scatter from `root` (edge size ∝ moved subtree).
    Scatter {
        /// Root rank within the communicator.
        root: usize,
        /// Packets per destination rank.
        messages: u32,
    },
    /// Binomial-tree gather to `root` (edge size ∝ moved subtree).
    Gather {
        /// Root rank within the communicator.
        root: usize,
        /// Packets per source rank.
        messages: u32,
    },
    /// Dissemination barrier (`⌈log₂ n⌉` rounds of unit messages).
    Barrier,
    /// Phased nearest-neighbour exchange over the topology's logical
    /// grid: phase `p` exchanges along the `p`-th usable grid axis,
    /// preceded by a compute block.
    HaloExchange {
        /// Number of phases (each along one grid axis of size ≥ 2).
        phases: u32,
        /// Packets per neighbour per phase.
        messages: u32,
        /// Compute block before each phase's exchange, in ns.
        compute_ns: u64,
    },
    /// A pure compute delay on every rank.
    Compute {
        /// Duration in ns.
        ns: u64,
    },
    /// Parts run back to back on the same communicator.
    Sequence(Vec<WorkloadSpec>),
    /// The body iterated `times` times.
    Repeat {
        /// Iteration count (≥ 1).
        times: u32,
        /// The repeated workload.
        body: Box<WorkloadSpec>,
    },
    /// The communicator split into one contiguous chunk per part, parts
    /// running side by side.
    Mix(Vec<WorkloadSpec>),
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::AllReduce {
            messages: DEFAULT_MESSAGES,
        }
    }
}

impl WorkloadSpec {
    /// The lowercase wire tag of the variant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WorkloadSpec::AllReduce { .. } => "allreduce",
            WorkloadSpec::AllToAll { .. } => "alltoall",
            WorkloadSpec::Broadcast { .. } => "broadcast",
            WorkloadSpec::Scatter { .. } => "scatter",
            WorkloadSpec::Gather { .. } => "gather",
            WorkloadSpec::Barrier => "barrier",
            WorkloadSpec::HaloExchange { .. } => "haloexchange",
            WorkloadSpec::Compute { .. } => "compute",
            WorkloadSpec::Sequence(_) => "sequence",
            WorkloadSpec::Repeat { .. } => "repeat",
            WorkloadSpec::Mix(_) => "mix",
        }
    }

    /// A short human-readable label (used as the `traffic` column of
    /// closed-loop report rows).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::AllReduce { messages } => format!("AllReduce(m={messages})"),
            WorkloadSpec::AllToAll { messages } => format!("AllToAll(m={messages})"),
            WorkloadSpec::Broadcast { root, messages } => {
                format!("Bcast(root={root},m={messages})")
            }
            WorkloadSpec::Scatter { root, messages } => {
                format!("Scatter(root={root},m={messages})")
            }
            WorkloadSpec::Gather { root, messages } => format!("Gather(root={root},m={messages})"),
            WorkloadSpec::Barrier => "Barrier".to_string(),
            WorkloadSpec::HaloExchange {
                phases, messages, ..
            } => format!("Halo(phases={phases},m={messages})"),
            WorkloadSpec::Compute { ns } => format!("Compute({ns}ns)"),
            WorkloadSpec::Sequence(parts) => {
                let inner: Vec<String> = parts.iter().map(WorkloadSpec::label).collect();
                format!("Seq({})", inner.join("; "))
            }
            WorkloadSpec::Repeat { times, body } => format!("{times}x({})", body.label()),
            WorkloadSpec::Mix(parts) => {
                let inner: Vec<String> = parts.iter().map(WorkloadSpec::label).collect();
                format!("Mix({})", inner.join(" | "))
            }
        }
    }

    /// Validate against a concrete topology, returning a friendly message
    /// naming the workload kind and the violated constraint.
    pub fn validate(&self, topo: &AnyTopology) -> Result<(), String> {
        let axes = usable_axes(&Grid3D::for_system(topo));
        self.validate_inner(topo.num_nodes(), false, axes.len())
    }

    fn validate_inner(&self, n: usize, in_mix: bool, num_axes: usize) -> Result<(), String> {
        fn comm_of_two(kind: &str, n: usize) -> Result<(), String> {
            if n < 2 {
                Err(format!(
                    "{kind}: needs a communicator of at least 2 nodes, got {n}"
                ))
            } else {
                Ok(())
            }
        }
        fn messages_positive(kind: &str, messages: u32) -> Result<(), String> {
            if messages == 0 {
                Err(format!("{kind}: messages must be >= 1"))
            } else {
                Ok(())
            }
        }
        fn root_in_comm(kind: &str, root: usize, n: usize) -> Result<(), String> {
            comm_of_two(kind, n)?;
            if root >= n {
                Err(format!(
                    "{kind}: root rank {root} is outside the {n}-node communicator \
                     (ranks 0..={})",
                    n - 1
                ))
            } else {
                Ok(())
            }
        }
        match self {
            WorkloadSpec::AllReduce { messages } => {
                comm_of_two("allreduce", n)?;
                messages_positive("allreduce", *messages)
            }
            WorkloadSpec::AllToAll { messages } => {
                comm_of_two("alltoall", n)?;
                messages_positive("alltoall", *messages)
            }
            WorkloadSpec::Broadcast { root, messages } => {
                root_in_comm("broadcast", *root, n)?;
                messages_positive("broadcast", *messages)
            }
            WorkloadSpec::Scatter { root, messages } => {
                root_in_comm("scatter", *root, n)?;
                messages_positive("scatter", *messages)
            }
            WorkloadSpec::Gather { root, messages } => {
                root_in_comm("gather", *root, n)?;
                messages_positive("gather", *messages)
            }
            WorkloadSpec::Barrier => comm_of_two("barrier", n),
            WorkloadSpec::HaloExchange {
                phases, messages, ..
            } => {
                if in_mix {
                    return Err("haloexchange: cannot appear inside a mix (halo phases are \
                         defined over the whole machine's grid)"
                        .to_string());
                }
                if *phases == 0 {
                    return Err("haloexchange: phases must be >= 1".to_string());
                }
                if *phases as usize > num_axes {
                    return Err(format!(
                        "haloexchange: {phases} phases requested but this topology's \
                         logical grid only has {num_axes} usable axes (size >= 2)"
                    ));
                }
                messages_positive("haloexchange", *messages)
            }
            WorkloadSpec::Compute { .. } => Ok(()),
            WorkloadSpec::Sequence(parts) => {
                if parts.is_empty() {
                    return Err("sequence: must contain at least one workload".to_string());
                }
                for part in parts {
                    part.validate_inner(n, in_mix, num_axes)?;
                }
                Ok(())
            }
            WorkloadSpec::Repeat { times, body } => {
                if *times == 0 {
                    return Err("repeat: times must be >= 1".to_string());
                }
                body.validate_inner(n, in_mix, num_axes)
            }
            WorkloadSpec::Mix(parts) => {
                if parts.is_empty() {
                    return Err("mix: must contain at least one workload".to_string());
                }
                if parts.len() > n {
                    return Err(format!(
                        "mix: {} parts but only {n} nodes to partition",
                        parts.len()
                    ));
                }
                let k = parts.len();
                for (i, part) in parts.iter().enumerate() {
                    let chunk = n / k + usize::from(i < n % k);
                    part.validate_inner(chunk, true, num_axes)?;
                }
                Ok(())
            }
        }
    }

    /// Registered workload kinds with their parameter schemas — the data
    /// behind `qadaptive-cli workloads`.
    pub fn catalog() -> Vec<WorkloadKindInfo> {
        vec![
            WorkloadKindInfo {
                name: "allreduce",
                parameters: "messages (per partner per round, default 4)",
                constraints: "communicator >= 2 nodes; messages >= 1",
                example: "[workload.allreduce]\nmessages = 4",
            },
            WorkloadKindInfo {
                name: "alltoall",
                parameters: "messages (per peer, default 4)",
                constraints: "communicator >= 2 nodes; messages >= 1",
                example: "[workload.alltoall]\nmessages = 2",
            },
            WorkloadKindInfo {
                name: "broadcast",
                parameters: "root (rank, default 0), messages (default 4)",
                constraints: "root < communicator size; messages >= 1",
                example: "[workload.broadcast]\nroot = 0\nmessages = 4",
            },
            WorkloadKindInfo {
                name: "scatter",
                parameters: "root (rank, default 0), messages (per destination, default 4)",
                constraints: "root < communicator size; messages >= 1",
                example: "[workload.scatter]\nroot = 0\nmessages = 2",
            },
            WorkloadKindInfo {
                name: "gather",
                parameters: "root (rank, default 0), messages (per source, default 4)",
                constraints: "root < communicator size; messages >= 1",
                example: "[workload.gather]\nroot = 0\nmessages = 2",
            },
            WorkloadKindInfo {
                name: "barrier",
                parameters: "none (dissemination rounds of single messages)",
                constraints: "communicator >= 2 nodes",
                example: "workload = \"barrier\"",
            },
            WorkloadKindInfo {
                name: "haloexchange",
                parameters: "phases (default 2), messages (per neighbour, default 4), \
                             compute_ns (default 200)",
                constraints: "phases <= usable grid axes (size >= 2); not inside a mix",
                example: "[workload.haloexchange]\nphases = 2\nmessages = 4\ncompute_ns = 200",
            },
            WorkloadKindInfo {
                name: "compute",
                parameters: "ns (default 200)",
                constraints: "none",
                example: "[workload.compute]\nns = 1000",
            },
            WorkloadKindInfo {
                name: "sequence",
                parameters: "array of workloads, run back to back",
                constraints: "non-empty",
                example: "[workload]\nsequence = [ { allreduce = { messages = 2 } }, \"barrier\" ]",
            },
            WorkloadKindInfo {
                name: "repeat",
                parameters: "times (>= 1), body (a workload)",
                constraints: "times >= 1",
                example:
                    "[workload.repeat]\ntimes = 3\n\n[workload.repeat.body.allreduce]\nmessages = 2",
            },
            WorkloadKindInfo {
                name: "mix",
                parameters: "array of workloads, each on its own contiguous node chunk",
                constraints: "parts <= nodes; no haloexchange inside",
                example: "[workload]\nmix = [ { allreduce = { messages = 4 } }, \"barrier\" ]",
            },
        ]
    }
}

/// Catalog entry describing one registered workload kind.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadKindInfo {
    /// Wire tag.
    pub name: &'static str,
    /// Parameter summary.
    pub parameters: &'static str,
    /// Constraints checked by validation.
    pub constraints: &'static str,
    /// Minimal scenario-file snippet.
    pub example: &'static str,
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The grid axes a halo exchange can phase over: x, y, z indices (0, 1, 2)
/// of every axis with at least two points, in that order.
pub(crate) fn usable_axes(grid: &Grid3D) -> Vec<usize> {
    [grid.x, grid.y, grid.z]
        .into_iter()
        .enumerate()
        .filter(|&(_, size)| size >= 2)
        .map(|(axis, _)| axis)
        .collect()
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        fn tagged(tag: &str, params: Vec<(String, Value)>) -> Value {
            Value::Map(vec![(tag.to_string(), Value::Map(params))])
        }
        fn int(v: impl TryInto<i128>) -> Value {
            Value::Int(v.try_into().unwrap_or(i128::MAX))
        }
        match self {
            WorkloadSpec::AllReduce { messages } => {
                tagged("allreduce", vec![("messages".to_string(), int(*messages))])
            }
            WorkloadSpec::AllToAll { messages } => {
                tagged("alltoall", vec![("messages".to_string(), int(*messages))])
            }
            WorkloadSpec::Broadcast { root, messages } => tagged(
                "broadcast",
                vec![
                    ("root".to_string(), int(*root as u64)),
                    ("messages".to_string(), int(*messages)),
                ],
            ),
            WorkloadSpec::Scatter { root, messages } => tagged(
                "scatter",
                vec![
                    ("root".to_string(), int(*root as u64)),
                    ("messages".to_string(), int(*messages)),
                ],
            ),
            WorkloadSpec::Gather { root, messages } => tagged(
                "gather",
                vec![
                    ("root".to_string(), int(*root as u64)),
                    ("messages".to_string(), int(*messages)),
                ],
            ),
            WorkloadSpec::Barrier => Value::Str("barrier".to_string()),
            WorkloadSpec::HaloExchange {
                phases,
                messages,
                compute_ns,
            } => tagged(
                "haloexchange",
                vec![
                    ("phases".to_string(), int(*phases)),
                    ("messages".to_string(), int(*messages)),
                    ("compute_ns".to_string(), int(*compute_ns)),
                ],
            ),
            WorkloadSpec::Compute { ns } => tagged("compute", vec![("ns".to_string(), int(*ns))]),
            WorkloadSpec::Sequence(parts) => Value::Map(vec![(
                "sequence".to_string(),
                Value::Seq(parts.iter().map(Serialize::to_value).collect()),
            )]),
            WorkloadSpec::Repeat { times, body } => tagged(
                "repeat",
                vec![
                    ("times".to_string(), int(*times)),
                    ("body".to_string(), body.to_value()),
                ],
            ),
            WorkloadSpec::Mix(parts) => Value::Map(vec![(
                "mix".to_string(),
                Value::Seq(parts.iter().map(Serialize::to_value).collect()),
            )]),
        }
    }
}

/// Read an optional non-negative integer field with a default.
fn int_field(inner: &Value, key: &str, default: u64) -> Result<u64, Error> {
    match inner.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(other) => Err(Error::msg(format!(
            "workload field `{key}` must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

fn u32_field(inner: &Value, key: &str, default: u32) -> Result<u32, Error> {
    let v = int_field(inner, key, default as u64)?;
    u32::try_from(v).map_err(|_| Error::msg(format!("workload field `{key}` is too large: {v}")))
}

/// The parts array of a `sequence` / `mix` — either the tag's value
/// directly (`sequence = [ ... ]`) or a `parts` field inside it.
fn parts_field(tag: &str, inner: &Value) -> Result<Vec<WorkloadSpec>, Error> {
    let items = match inner {
        Value::Seq(items) => items,
        Value::Map(_) => match inner.get("parts") {
            Some(Value::Seq(items)) => items,
            _ => {
                return Err(Error::msg(format!(
                    "`{tag}` needs an array of workloads: `{tag} = [ ... ]`"
                )))
            }
        },
        other => {
            return Err(Error::msg(format!(
                "`{tag}` needs an array of workloads, found {}",
                other.kind()
            )))
        }
    };
    items.iter().map(WorkloadSpec::from_value).collect()
}

/// Parse one `tag = params` pair; `Ok(None)` means the tag is unknown.
fn parse_tagged(tag: &str, inner: &Value) -> Result<Option<WorkloadSpec>, Error> {
    let norm = tag.to_ascii_lowercase().replace(['_', '-'], "");
    let spec = match norm.as_str() {
        "allreduce" => WorkloadSpec::AllReduce {
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
        },
        "alltoall" => WorkloadSpec::AllToAll {
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
        },
        "broadcast" | "bcast" => WorkloadSpec::Broadcast {
            root: int_field(inner, "root", 0)? as usize,
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
        },
        "scatter" => WorkloadSpec::Scatter {
            root: int_field(inner, "root", 0)? as usize,
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
        },
        "gather" => WorkloadSpec::Gather {
            root: int_field(inner, "root", 0)? as usize,
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
        },
        "barrier" => WorkloadSpec::Barrier,
        "haloexchange" | "halo" => WorkloadSpec::HaloExchange {
            phases: u32_field(inner, "phases", DEFAULT_PHASES)?,
            messages: u32_field(inner, "messages", DEFAULT_MESSAGES)?,
            compute_ns: int_field(inner, "compute_ns", DEFAULT_COMPUTE_NS)?,
        },
        "compute" => WorkloadSpec::Compute {
            ns: int_field(inner, "ns", DEFAULT_COMPUTE_NS)?,
        },
        "sequence" | "seq" => WorkloadSpec::Sequence(parts_field("sequence", inner)?),
        "mix" => WorkloadSpec::Mix(parts_field("mix", inner)?),
        "repeat" => {
            let times = u32_field(inner, "times", 1)?;
            let body = inner
                .get("body")
                .ok_or_else(|| Error::msg("`repeat` needs a `body` workload"))?;
            WorkloadSpec::Repeat {
                times,
                body: Box::new(WorkloadSpec::from_value(body)?),
            }
        }
        _ => return Ok(None),
    };
    Ok(Some(spec))
}

fn unknown_workload_error(found: &str) -> Error {
    Error::msg(format!(
        "unknown workload `{found}`: expected one of `allreduce`, `alltoall`, \
         `broadcast`, `scatter`, `gather`, `barrier`, `haloexchange`, `compute`, \
         or a combinator (`sequence = [ ... ]`, `mix = [ ... ]`, `[workload.repeat]` \
         with `times` and `body`); a bare string like `workload = \"barrier\"` \
         uses the kind's defaults"
    ))
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Parameterless string short form: `workload = "allreduce"`.
            Value::Str(tag) => parse_tagged(tag, &Value::Map(Vec::new()))?
                .ok_or_else(|| unknown_workload_error(tag)),
            Value::Map(entries) => {
                if let [(tag, inner)] = entries.as_slice() {
                    if let Some(spec) = parse_tagged(tag, inner)? {
                        return Ok(spec);
                    }
                    return Err(unknown_workload_error(tag));
                }
                Err(unknown_workload_error(&format!(
                    "map with {} entries",
                    entries.len()
                )))
            }
            other => Err(Error::msg(format!(
                "workload must be a tagged map or a kind string, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::{Dragonfly, HyperX, HyperXConfig};

    fn tiny() -> AnyTopology {
        Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    fn representative_specs() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::AllReduce { messages: 4 },
            WorkloadSpec::AllToAll { messages: 2 },
            WorkloadSpec::Broadcast {
                root: 3,
                messages: 1,
            },
            WorkloadSpec::Scatter {
                root: 0,
                messages: 2,
            },
            WorkloadSpec::Gather {
                root: 1,
                messages: 2,
            },
            WorkloadSpec::Barrier,
            WorkloadSpec::HaloExchange {
                phases: 2,
                messages: 4,
                compute_ns: 200,
            },
            WorkloadSpec::Compute { ns: 1000 },
            WorkloadSpec::Sequence(vec![
                WorkloadSpec::AllReduce { messages: 2 },
                WorkloadSpec::Barrier,
            ]),
            WorkloadSpec::Repeat {
                times: 3,
                body: Box::new(WorkloadSpec::HaloExchange {
                    phases: 1,
                    messages: 2,
                    compute_ns: 100,
                }),
            },
            WorkloadSpec::Mix(vec![
                WorkloadSpec::AllReduce { messages: 4 },
                WorkloadSpec::Barrier,
            ]),
        ]
    }

    #[test]
    fn every_form_round_trips_through_values() {
        for spec in representative_specs() {
            let value = spec.to_value();
            assert_eq!(WorkloadSpec::from_value(&value).unwrap(), spec, "{spec}");
        }
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Doc {
        workload: WorkloadSpec,
    }

    #[test]
    fn every_form_round_trips_through_toml_text() {
        for workload in representative_specs() {
            let doc = Doc { workload };
            let text = toml::to_string(&doc).unwrap();
            let back: Doc = toml::from_str(&text).unwrap();
            assert_eq!(back, doc, "TOML was:\n{text}");
        }
    }

    #[test]
    fn string_short_forms_parse_with_defaults() {
        let doc: Doc = toml::from_str("workload = \"barrier\"\n").unwrap();
        assert_eq!(doc.workload, WorkloadSpec::Barrier);
        let doc: Doc = toml::from_str("workload = \"allreduce\"\n").unwrap();
        assert_eq!(
            doc.workload,
            WorkloadSpec::AllReduce {
                messages: DEFAULT_MESSAGES
            }
        );
        let doc: Doc = toml::from_str("workload = \"halo\"\n").unwrap();
        assert_eq!(
            doc.workload,
            WorkloadSpec::HaloExchange {
                phases: DEFAULT_PHASES,
                messages: DEFAULT_MESSAGES,
                compute_ns: DEFAULT_COMPUTE_NS,
            }
        );
    }

    #[test]
    fn inline_sequence_toml_parses() {
        let doc: Doc = toml::from_str(
            "[workload]\nsequence = [ { allreduce = { messages = 2 } }, \"barrier\" ]\n",
        )
        .unwrap();
        assert_eq!(
            doc.workload,
            WorkloadSpec::Sequence(vec![
                WorkloadSpec::AllReduce { messages: 2 },
                WorkloadSpec::Barrier,
            ])
        );
    }

    #[test]
    fn unknown_kinds_get_a_helpful_error() {
        let err = WorkloadSpec::from_value(&Value::Str("fft".to_string()))
            .unwrap_err()
            .to_string();
        assert!(err.contains("allreduce"), "{err}");
        assert!(err.contains("sequence"), "{err}");
        assert!(err.contains("fft"), "{err}");
    }

    #[test]
    fn validation_rejects_collectives_on_one_node_chunks() {
        // 4 nodes split 4 ways: each mix chunk has a single node.
        let four_nodes: AnyTopology = HyperX::new(HyperXConfig {
            p: 1,
            rows: 2,
            cols: 2,
        })
        .into();
        let mix = WorkloadSpec::Mix(vec![WorkloadSpec::AllReduce { messages: 4 }; 4]);
        let err = mix.validate(&four_nodes).unwrap_err();
        assert!(err.contains("allreduce"), "{err}");
        assert!(err.contains("at least 2 nodes"), "{err}");
    }

    #[test]
    fn validation_rejects_excess_halo_phases() {
        let halo = WorkloadSpec::HaloExchange {
            phases: 4,
            messages: 4,
            compute_ns: 0,
        };
        let err = halo.validate(&tiny()).unwrap_err();
        assert!(err.contains("usable axes"), "{err}");
        // And halo is rejected inside a mix regardless of phases.
        let mix = WorkloadSpec::Mix(vec![
            WorkloadSpec::Barrier,
            WorkloadSpec::HaloExchange {
                phases: 1,
                messages: 4,
                compute_ns: 0,
            },
        ]);
        assert!(mix.validate(&tiny()).unwrap_err().contains("mix"));
    }

    #[test]
    fn validation_rejects_bad_roots_counts_and_empty_combinators() {
        let topo = tiny();
        let n = topo.num_nodes();
        let bad_root = WorkloadSpec::Broadcast {
            root: n,
            messages: 4,
        };
        let err = bad_root.validate(&topo).unwrap_err();
        assert!(err.contains("broadcast"), "{err}");
        assert!(err.contains("root"), "{err}");
        assert!(WorkloadSpec::Sequence(vec![])
            .validate(&topo)
            .unwrap_err()
            .contains("sequence"));
        assert!(WorkloadSpec::Repeat {
            times: 0,
            body: Box::new(WorkloadSpec::Barrier),
        }
        .validate(&topo)
        .unwrap_err()
        .contains("times"));
        assert!(WorkloadSpec::Mix(vec![WorkloadSpec::Barrier; n + 1])
            .validate(&topo)
            .unwrap_err()
            .contains("partition"));
        assert!(WorkloadSpec::AllReduce { messages: 0 }
            .validate(&topo)
            .unwrap_err()
            .contains("messages"));
        for spec in representative_specs() {
            assert!(spec.validate(&topo).is_ok(), "{spec}");
        }
    }

    #[test]
    fn catalog_covers_every_kind() {
        let names: Vec<&str> = WorkloadSpec::catalog().iter().map(|i| i.name).collect();
        assert_eq!(
            names,
            vec![
                "allreduce",
                "alltoall",
                "broadcast",
                "scatter",
                "gather",
                "barrier",
                "haloexchange",
                "compute",
                "sequence",
                "repeat",
                "mix",
            ]
        );
    }

    #[test]
    fn labels_are_short_and_informative() {
        assert_eq!(
            WorkloadSpec::AllReduce { messages: 4 }.label(),
            "AllReduce(m=4)"
        );
        let seq = WorkloadSpec::Sequence(vec![
            WorkloadSpec::AllReduce { messages: 2 },
            WorkloadSpec::Barrier,
        ]);
        assert_eq!(seq.label(), "Seq(AllReduce(m=2); Barrier)");
        let rep = WorkloadSpec::Repeat {
            times: 3,
            body: Box::new(WorkloadSpec::Barrier),
        };
        assert_eq!(rep.label(), "3x(Barrier)");
    }
}
