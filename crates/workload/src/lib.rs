//! # dragonfly-workload
//!
//! Closed-loop application workloads for the simulator: a serialisable
//! description language ([`WorkloadSpec`] — collectives, a halo-exchange
//! mini-app skeleton, compute blocks and the `sequence` / `repeat` / `mix`
//! combinators) plus the compiler that lowers a spec to one
//! [`dragonfly_engine::workload::NodeProgram`] per node.
//!
//! The lowerings are classic message-count-faithful MPI schedules:
//!
//! * **AllReduce** — recursive doubling with the standard fold-in/fold-out
//!   pre- and post-step for non-power-of-two communicators;
//! * **AllToAll** — the staggered ring (`round k`: rank `r` sends to
//!   `r + k`, receives from `r − k`);
//! * **Broadcast / Scatter / Gather** — a binomial-style recursive-halving
//!   tree rooted at any rank, with scatter/gather transfer sizes
//!   proportional to the moved subtree;
//! * **Barrier** — the dissemination barrier (`⌈log₂ n⌉` rounds of
//!   unit messages, never scaled by intensity);
//! * **HaloExchange** — per-phase nearest-neighbour exchange along one
//!   axis of the topology's logical [`Grid3D`], compute block first;
//! * **Compute** — a pure delay on every rank.
//!
//! Combinators compose over *communicators* (contiguous node ranges):
//! `sequence` runs parts back to back on the same communicator, `repeat`
//! iterates a body, and `mix` splits the communicator into one contiguous
//! chunk per part so different job types run side by side.
//!
//! The engine executes the result *closed-loop* — a `Recv` op blocks its
//! node until the fabric has delivered the counted messages — so job
//! completion time reacts to routing quality and congestion rather than
//! to an offered-load dial. See `dragonfly-engine`'s crate docs for the
//! determinism argument.
//!
//! [`Grid3D`]: dragonfly_traffic::grid::Grid3D

pub mod compile;
pub mod spec;

pub use spec::{WorkloadKindInfo, WorkloadSpec};
