//! The common interface of Q-value tables.
//!
//! Both the original destination-router-indexed table ([`crate::QTable`])
//! and the paper's two-level table ([`crate::TwoLevelQTable`]) implement
//! this trait, which lets the routing agent, the ablation benches and the
//! memory-comparison experiment treat them interchangeably.

/// A dense `rows × columns` table of Q-values (estimated delivery times in
/// nanoseconds — *lower is better*).
pub trait QValueTable {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns (one per non-host port).
    fn columns(&self) -> usize;

    /// Read one value.
    fn get(&self, row: usize, column: usize) -> f64;

    /// Overwrite one value.
    fn set(&mut self, row: usize, column: usize, value: f64);

    /// The column with the smallest value in `row` and that value.
    /// Ties are broken towards the lowest column index, which makes the
    /// lookup deterministic.
    fn best_in_row(&self, row: usize) -> (usize, f64) {
        let mut best_col = 0;
        let mut best_val = f64::INFINITY;
        for c in 0..self.columns() {
            let v = self.get(row, c);
            if v < best_val {
                best_val = v;
                best_col = c;
            }
        }
        (best_col, best_val)
    }

    /// The smallest value in `row`.
    fn min_in_row(&self, row: usize) -> f64 {
        self.best_in_row(row).1
    }

    /// Memory footprint of the value storage in bytes (the paper's
    /// router-memory comparison).
    fn memory_bytes(&self) -> usize {
        self.rows() * self.columns() * std::mem::size_of::<f64>()
    }

    /// Number of stored Q-values.
    fn len(&self) -> usize {
        self.rows() * self.columns()
    }

    /// All values in row-major order — the checkpoint representation of
    /// the learned state (see `dragonfly_engine::checkpoint`).
    fn values(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.len());
        for r in 0..self.rows() {
            for c in 0..self.columns() {
                v.push(self.get(r, c));
            }
        }
        v
    }

    /// Overwrite every value from a row-major slice captured by
    /// [`QValueTable::values`] on an identically shaped table.
    fn load_values(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.len(),
            "checkpointed Q-table shape does not match this table"
        );
        let mut i = 0;
        for r in 0..self.rows() {
            for c in 0..self.columns() {
                self.set(r, c, values[i]);
                i += 1;
            }
        }
    }

    /// Whether the table is empty (degenerate configuration).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-memory implementation used to test the default methods.
    struct Dense {
        rows: usize,
        cols: usize,
        v: Vec<f64>,
    }

    impl QValueTable for Dense {
        fn rows(&self) -> usize {
            self.rows
        }
        fn columns(&self) -> usize {
            self.cols
        }
        fn get(&self, row: usize, column: usize) -> f64 {
            self.v[row * self.cols + column]
        }
        fn set(&mut self, row: usize, column: usize, value: f64) {
            self.v[row * self.cols + column] = value;
        }
    }

    #[test]
    fn best_in_row_breaks_ties_towards_low_columns() {
        let t = Dense {
            rows: 1,
            cols: 4,
            v: vec![5.0, 3.0, 3.0, 9.0],
        };
        assert_eq!(t.best_in_row(0), (1, 3.0));
        assert_eq!(t.min_in_row(0), 3.0);
    }

    #[test]
    fn memory_accounting() {
        let t = Dense {
            rows: 10,
            cols: 4,
            v: vec![0.0; 40],
        };
        assert_eq!(t.len(), 40);
        assert!(!t.is_empty());
        assert_eq!(t.memory_bytes(), 40 * 8);
    }
}
