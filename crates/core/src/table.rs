//! The common interface of Q-value tables.
//!
//! The original destination-router-indexed table ([`crate::QTable`]), the
//! paper's two-level table ([`crate::TwoLevelQTable`]) and the sparse
//! [`crate::PagedQTable`] all implement this trait, which lets the routing
//! agents, the ablation benches and the memory-comparison experiment treat
//! them interchangeably.
//!
//! ## The cached-argmin contract
//!
//! [`QValueTable::best_in_row`] sits on the routing hot path (every
//! decision and every feedback bootstrap asks for a row minimum), so the
//! default full-column scan is only the *semantic specification*, not the
//! implementation shipped tables use. All three shipped tables maintain a
//! per-row argmin cache with the following invalidation contract, which
//! any new implementation overriding `best_in_row` must honour:
//!
//! * the cache stores, for every row, the **lowest column index achieving
//!   the row minimum** — the exact tie-break of the default scan, so a
//!   cached lookup is bit-for-bit indistinguishable from the scan;
//! * [`QValueTable::set`] keeps the cache coherent *eagerly*: lowering a
//!   cell (or tying it at a lower column index) moves the cached argmin in
//!   O(1); raising the cached argmin cell itself triggers one O(columns)
//!   row rescan inside `set`. `best_in_row` therefore stays a pure `&self`
//!   O(1) read;
//! * the cache is derived state — never serialized, always rebuilt
//!   deterministically from the values — so checkpoints and equality
//!   comparisons see only the values.

/// A `rows × columns` table of Q-values (estimated delivery times in
/// nanoseconds — *lower is better*).
pub trait QValueTable {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns (one per non-host port).
    fn columns(&self) -> usize;

    /// Read one value.
    fn get(&self, row: usize, column: usize) -> f64;

    /// Overwrite one value.
    fn set(&mut self, row: usize, column: usize, value: f64);

    /// The column with the smallest value in `row` and that value.
    /// Ties are broken towards the lowest column index, which makes the
    /// lookup deterministic.
    fn best_in_row(&self, row: usize) -> (usize, f64) {
        let mut best_col = 0;
        let mut best_val = f64::INFINITY;
        for c in 0..self.columns() {
            let v = self.get(row, c);
            if v < best_val {
                best_val = v;
                best_col = c;
            }
        }
        (best_col, best_val)
    }

    /// The smallest value in `row`.
    fn min_in_row(&self, row: usize) -> f64 {
        self.best_in_row(row).1
    }

    /// Memory footprint of the value storage in bytes (the paper's
    /// router-memory comparison).
    fn memory_bytes(&self) -> usize {
        self.rows() * self.columns() * std::mem::size_of::<f64>()
    }

    /// Number of stored Q-values.
    fn len(&self) -> usize {
        self.rows() * self.columns()
    }

    /// All values in row-major order — the checkpoint representation of
    /// the learned state (see `dragonfly_engine::checkpoint`).
    fn values(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.len());
        for r in 0..self.rows() {
            for c in 0..self.columns() {
                v.push(self.get(r, c));
            }
        }
        v
    }

    /// Overwrite every value from a row-major slice captured by
    /// [`QValueTable::values`] on an identically shaped table.
    fn load_values(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.len(),
            "checkpointed Q-table shape does not match this table"
        );
        let mut i = 0;
        for r in 0..self.rows() {
            for c in 0..self.columns() {
                self.set(r, c, values[i]);
                i += 1;
            }
        }
    }

    /// Whether the table is empty (degenerate configuration).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major values of a selected set of rows — the **sparse**
    /// checkpoint representation used by paged tables, which only persist
    /// their materialised rows (every other row is the deterministic init
    /// value and is rebuilt by the factory).
    fn sparse_values(&self, rows: &[u32]) -> Vec<f64> {
        let mut v = Vec::with_capacity(rows.len() * self.columns());
        for &r in rows {
            for c in 0..self.columns() {
                v.push(self.get(r as usize, c));
            }
        }
        v
    }

    /// Overwrite the listed rows from a row-major slice captured by
    /// [`QValueTable::sparse_values`]. Unlisted rows are left untouched
    /// (at their init value on a freshly built table), so a sparse
    /// checkpoint restores into dense and paged storage alike.
    fn load_sparse_values(&mut self, rows: &[u32], values: &[f64]) {
        assert_eq!(
            values.len(),
            rows.len() * self.columns(),
            "sparse Q-table checkpoint shape does not match this table"
        );
        let mut i = 0;
        for &r in rows {
            for c in 0..self.columns() {
                self.set(r as usize, c, values[i]);
                i += 1;
            }
        }
    }
}

/// Restore a table from its checkpoint form: `rows` non-empty selects the
/// sparse representation ([`QValueTable::load_sparse_values`]), an empty
/// `rows` with full-length `values` the dense one, and empty `rows` with
/// empty `values` means nothing was ever written (a paged table with no
/// materialised pages) — the freshly built table is already correct.
///
/// Both forms restore into either storage kind: a sparse checkpoint
/// applied to a dense table only overwrites the listed rows (the rest are
/// at their init values, exactly what the sparse form implies), and a
/// dense checkpoint applied to a paged table materialises everything.
pub fn load_checkpoint_values(table: &mut dyn QValueTable, rows: &[u32], values: &[f64]) {
    if !rows.is_empty() {
        table.load_sparse_values(rows, values);
    } else if !values.is_empty() || table.is_empty() {
        table.load_values(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-memory implementation used to test the default methods.
    struct Dense {
        rows: usize,
        cols: usize,
        v: Vec<f64>,
    }

    impl QValueTable for Dense {
        fn rows(&self) -> usize {
            self.rows
        }
        fn columns(&self) -> usize {
            self.cols
        }
        fn get(&self, row: usize, column: usize) -> f64 {
            self.v[row * self.cols + column]
        }
        fn set(&mut self, row: usize, column: usize, value: f64) {
            self.v[row * self.cols + column] = value;
        }
    }

    #[test]
    fn best_in_row_breaks_ties_towards_low_columns() {
        let t = Dense {
            rows: 1,
            cols: 4,
            v: vec![5.0, 3.0, 3.0, 9.0],
        };
        assert_eq!(t.best_in_row(0), (1, 3.0));
        assert_eq!(t.min_in_row(0), 3.0);
    }

    #[test]
    fn sparse_values_round_trip_selected_rows() {
        let src = Dense {
            rows: 3,
            cols: 2,
            v: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let rows = [0u32, 2];
        let sparse = src.sparse_values(&rows);
        assert_eq!(sparse, vec![1.0, 2.0, 5.0, 6.0]);
        let mut dst = Dense {
            rows: 3,
            cols: 2,
            v: vec![0.0; 6],
        };
        dst.load_sparse_values(&rows, &sparse);
        assert_eq!(dst.v, vec![1.0, 2.0, 0.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn memory_accounting() {
        let t = Dense {
            rows: 10,
            cols: 4,
            v: vec![0.0; 40],
        };
        assert_eq!(t.len(), 40);
        assert!(!t.is_empty());
        assert_eq!(t.memory_bytes(), 40 * 8);
    }
}
