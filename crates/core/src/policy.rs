//! Decision policies: the ΔV minimal-bias rule (Equation 2) and ε-greedy
//! exploration.

use dragonfly_topology::ids::Port;
use rand::Rng;

/// Equation 2 of the paper: the relative advantage of the best path over
/// the minimal path, `ΔV = (Q_min − Q_best) / Q_min`.
///
/// When `Q_min` is not positive (degenerate or fully decayed estimates) the
/// minimal path is preferred, which matches the intent of the bias.
#[inline]
pub fn delta_v(q_min_path: f64, q_best_path: f64) -> f64 {
    if q_min_path <= f64::EPSILON {
        return 0.0;
    }
    (q_min_path - q_best_path) / q_min_path
}

/// Equation 2's port selection: prefer the minimal-path port unless the
/// alternative is more than `threshold` (relative) cheaper.
#[inline]
pub fn select_with_bias(
    q_min_path: f64,
    q_best_path: f64,
    min_path_port: Port,
    best_path_port: Port,
    threshold: f64,
) -> Port {
    if delta_v(q_min_path, q_best_path) < threshold {
        min_path_port
    } else {
        best_path_port
    }
}

/// ε-greedy exploration: with probability `epsilon` pick a uniformly random
/// port from `candidates`, otherwise keep `preferred`.
#[inline]
pub fn epsilon_greedy<R: Rng + ?Sized>(
    rng: &mut R,
    epsilon: f64,
    preferred: Port,
    candidates: &[Port],
) -> Port {
    if epsilon > 0.0 && !candidates.is_empty() && rng.gen::<f64>() < epsilon {
        candidates[rng.gen_range(0..candidates.len())]
    } else {
        preferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delta_v_measures_relative_advantage() {
        assert!((delta_v(100.0, 60.0) - 0.4).abs() < 1e-12);
        assert!((delta_v(100.0, 100.0)).abs() < 1e-12);
        assert!(delta_v(100.0, 140.0) < 0.0);
        // Degenerate minimal estimate prefers minimal.
        assert_eq!(delta_v(0.0, 50.0), 0.0);
    }

    #[test]
    fn bias_prefers_minimal_until_threshold() {
        let min_port = Port(4);
        let best_port = Port(9);
        // 20% advantage, threshold 0.35 -> stay minimal.
        assert_eq!(
            select_with_bias(100.0, 80.0, min_port, best_port, 0.35),
            min_port
        );
        // 50% advantage, threshold 0.35 -> switch to the best path.
        assert_eq!(
            select_with_bias(100.0, 50.0, min_port, best_port, 0.35),
            best_port
        );
        // Zero threshold means any advantage switches.
        assert_eq!(
            select_with_bias(100.0, 99.0, min_port, best_port, 0.0),
            best_port
        );
        // With a zero threshold a tie selects the best-path port
        // (ΔV = 0 is not < 0), matching Equation 2 literally.
        assert_eq!(
            select_with_bias(100.0, 100.0, min_port, best_port, 0.0),
            best_port
        );
        // Any positive threshold keeps the tie on the minimal path.
        assert_eq!(
            select_with_bias(100.0, 100.0, min_port, best_port, 0.05),
            min_port
        );
    }

    #[test]
    fn epsilon_zero_never_explores() {
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = [Port(5), Port(6), Port(7)];
        for _ in 0..1_000 {
            assert_eq!(epsilon_greedy(&mut rng, 0.0, Port(4), &candidates), Port(4));
        }
    }

    #[test]
    fn epsilon_one_always_explores() {
        let mut rng = StdRng::seed_from_u64(2);
        let candidates = [Port(5), Port(6), Port(7)];
        for _ in 0..100 {
            let p = epsilon_greedy(&mut rng, 1.0, Port(4), &candidates);
            assert!(candidates.contains(&p));
        }
    }

    #[test]
    fn exploration_rate_is_approximately_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        let candidates = [Port(9)];
        let trials = 200_000;
        let explored = (0..trials)
            .filter(|_| epsilon_greedy(&mut rng, 0.01, Port(4), &candidates) == Port(9))
            .count();
        let rate = explored as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.003, "rate={rate}");
    }

    #[test]
    fn empty_candidates_fall_back_to_preferred() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(epsilon_greedy(&mut rng, 1.0, Port(2), &[]), Port(2));
    }
}
