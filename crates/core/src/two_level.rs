//! The two-level Q-table (Table 3 of the paper).
//!
//! One row per *(destination group, source-node slot)* pair — `g · p` rows —
//! and one column per non-host port (`k − p` columns). Compared with the
//! original destination-router-indexed table (`g · a` rows) this is half
//! the size on a balanced Dragonfly (`a = 2p`), and every update for any
//! destination router of a group refreshes the same row, which mitigates the
//! stale-value problem of rarely visited destinations.

use crate::table::QValueTable;
use dragonfly_topology::ids::GroupId;
use serde::{Deserialize, Serialize};

/// The `(g·p) × (k−p)` two-level Q-table.
///
/// Carries the per-row argmin cache described in [`crate::table`]; the
/// cache is derived state (skipped by serde, ignored by equality) and is
/// rebuilt on the first `set` after deserialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoLevelQTable {
    groups: usize,
    nodes_per_router: usize,
    columns: usize,
    values: Vec<f64>,
    /// Per-row lowest-index argmin column (see the trait-level contract).
    #[serde(skip)]
    argmin: Vec<u32>,
}

impl PartialEq for TwoLevelQTable {
    fn eq(&self, other: &Self) -> bool {
        // The argmin cache is derived state: equality is on the values.
        self.groups == other.groups
            && self.nodes_per_router == other.nodes_per_router
            && self.columns == other.columns
            && self.values == other.values
    }
}

impl TwoLevelQTable {
    /// Create a table with every entry set to `initial`.
    pub fn new(groups: usize, nodes_per_router: usize, fabric_ports: usize, initial: f64) -> Self {
        let rows = groups * nodes_per_router;
        Self {
            groups,
            nodes_per_router,
            columns: fabric_ports,
            values: vec![initial; rows * fabric_ports],
            argmin: vec![0; rows],
        }
    }

    /// Create a table whose entries are produced by
    /// `init(destination_group, source_slot, column)`.
    pub fn from_fn(
        groups: usize,
        nodes_per_router: usize,
        fabric_ports: usize,
        mut init: impl FnMut(GroupId, usize, usize) -> f64,
    ) -> Self {
        let mut values = Vec::with_capacity(groups * nodes_per_router * fabric_ports);
        for g in 0..groups {
            for slot in 0..nodes_per_router {
                for c in 0..fabric_ports {
                    values.push(init(GroupId::from_index(g), slot, c));
                }
            }
        }
        let argmin =
            crate::qtable::rebuild_argmin(&values, groups * nodes_per_router, fabric_ports);
        Self {
            groups,
            nodes_per_router,
            columns: fabric_ports,
            values,
            argmin,
        }
    }

    /// Number of groups the table covers.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Nodes per router (`p`).
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// The row used for a packet generated on source slot `src_slot`
    /// (0..p) and destined for `dst_group` — the paper's `j·p + n`.
    #[inline]
    pub fn row(&self, dst_group: GroupId, src_slot: u8) -> usize {
        debug_assert!((src_slot as usize) < self.nodes_per_router);
        debug_assert!(dst_group.index() < self.groups);
        dst_group.index() * self.nodes_per_router + src_slot as usize
    }

    /// Convenience accessor keyed by (group, slot).
    pub fn value(&self, dst_group: GroupId, src_slot: u8, column: usize) -> f64 {
        self.get(self.row(dst_group, src_slot), column)
    }

    /// Best column and value for a (group, slot) pair.
    pub fn best_for(&self, dst_group: GroupId, src_slot: u8) -> (usize, f64) {
        self.best_in_row(self.row(dst_group, src_slot))
    }
}

impl QValueTable for TwoLevelQTable {
    fn rows(&self) -> usize {
        self.groups * self.nodes_per_router
    }

    fn columns(&self) -> usize {
        self.columns
    }

    #[inline]
    fn get(&self, row: usize, column: usize) -> f64 {
        self.values[row * self.columns + column]
    }

    #[inline]
    fn set(&mut self, row: usize, column: usize, value: f64) {
        let idx = row * self.columns + column;
        let old = self.values[idx];
        self.values[idx] = value;
        if self.argmin.len() != self.rows() {
            // Deserialized legacy form: the skipped cache comes back empty.
            self.argmin = crate::qtable::rebuild_argmin(&self.values, self.rows(), self.columns);
            return;
        }
        self.argmin[row] = crate::qtable::maintain_argmin(
            &self.values,
            row,
            self.columns,
            column,
            old,
            value,
            self.argmin[row],
        );
    }

    fn best_in_row(&self, row: usize) -> (usize, f64) {
        if self.columns == 0 {
            return (0, f64::INFINITY);
        }
        if self.argmin.len() == self.rows() {
            let c = self.argmin[row] as usize;
            return (c, self.values[row * self.columns + c]);
        }
        let c = crate::qtable::scan_row_argmin(&self.values, row, self.columns) as usize;
        (c, self.values[row * self.columns + c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtable::QTable;

    #[test]
    fn paper_dimensions_and_memory_claim_1056() {
        // 1,056-node system: g=33, p=4, a=8, fabric ports = 11.
        let two_level = TwoLevelQTable::new(33, 4, 11, 0.0);
        let original = QTable::new(264, 11, 0.0);
        assert_eq!(two_level.rows(), 33 * 4);
        assert_eq!(original.rows(), 264);
        // Balanced dragonfly (a = 2p): exactly half the memory.
        assert_eq!(two_level.memory_bytes() * 2, original.memory_bytes());
    }

    #[test]
    fn paper_dimensions_and_memory_claim_2550() {
        // 2,550-node system: g=51, p=5, a=10, fabric ports = 14.
        let two_level = TwoLevelQTable::new(51, 5, 14, 0.0);
        let original = QTable::new(510, 14, 0.0);
        assert_eq!(two_level.memory_bytes() * 2, original.memory_bytes());
    }

    #[test]
    fn row_indexing_follows_j_times_p_plus_n() {
        let t = TwoLevelQTable::new(5, 4, 3, 0.0);
        assert_eq!(t.row(GroupId(0), 0), 0);
        assert_eq!(t.row(GroupId(0), 3), 3);
        assert_eq!(t.row(GroupId(2), 1), 9);
        assert_eq!(t.row(GroupId(4), 3), 19);
        assert_eq!(t.rows(), 20);
    }

    #[test]
    fn from_fn_and_accessors() {
        let t = TwoLevelQTable::from_fn(3, 2, 4, |g, slot, c| {
            (g.index() * 100 + slot * 10 + c) as f64
        });
        assert_eq!(t.value(GroupId(2), 1, 3), 213.0);
        assert_eq!(t.best_for(GroupId(1), 0), (0, 100.0));
    }

    #[test]
    fn cached_argmin_matches_reference_scan_under_updates() {
        let mut t = TwoLevelQTable::from_fn(3, 2, 4, |g, slot, c| {
            ((g.index() * 5 + slot * 3 + c * 7) % 13) as f64
        });
        let mut x = 9u64;
        for step in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let row = (x >> 33) as usize % 6;
            let col = (x >> 17) as usize % 4;
            t.set(row, col, ((x >> 5) % 15) as f64);
            let (cached_col, cached_val) = t.best_in_row(row);
            let mut want_col = 0;
            let mut want_val = f64::INFINITY;
            for c in 0..4 {
                let v = t.get(row, c);
                if v < want_val {
                    want_val = v;
                    want_col = c;
                }
            }
            assert_eq!(
                (cached_col, cached_val),
                (want_col, want_val),
                "step {step}"
            );
        }
    }

    #[test]
    fn set_updates_only_the_target_cell() {
        let mut t = TwoLevelQTable::new(3, 2, 4, 7.0);
        let row = t.row(GroupId(1), 1);
        t.set(row, 2, 1.0);
        assert_eq!(t.get(row, 2), 1.0);
        assert_eq!(t.get(row, 1), 7.0);
        assert_eq!(t.best_in_row(row), (2, 1.0));
        // Other rows untouched.
        assert_eq!(t.get(t.row(GroupId(0), 0), 2), 7.0);
    }
}
