//! The Q-adaptive routing algorithm (Figure 4 of the paper).
//!
//! Each router is an independent agent holding one two-level Q-table.
//! A packet is routed as follows:
//!
//! 1. routers in the packet's **destination domain** forward minimally;
//! 2. the **source router** compares the minimal-path port against the best
//!    port of the Q-table row using the relative gap ΔV and the threshold
//!    `q_thld1`, then applies ε-greedy exploration;
//! 3. the **first router visited in an intermediate domain** forwards
//!    minimally when it owns a direct link into the destination domain;
//!    otherwise it compares the minimal forwarding port against a *random
//!    intra-domain escape* port (the Valiant-node style reroute that
//!    sidesteps local-link congestion) using `q_thld2`, then applies
//!    ε-greedy exploration;
//! 4. every other router forwards minimally.
//!
//! The algorithm is expressed purely in terms of the
//! [`Topology`] abstraction — destination *domain* instead of Dragonfly
//! group, `direct_port_to_domain` instead of "own global link" — so the
//! same agent runs unchanged on the Dragonfly (bit-for-bit identical to
//! the pre-trait implementation), the fat-tree (where the source-router
//! decision learns which up-plane is least congested) and the HyperX.
//!
//! Q-values are updated with hysteretic Q-learning from the per-hop
//! feedback the engine delivers (reward = per-hop delay, bootstrap = the
//! downstream router's own estimate).

use crate::hysteretic::HystereticLearner;
use crate::init::{init_two_level_paged, init_two_level_table};
use crate::paged::PagedQTable;
use crate::params::QAdaptiveParams;
use crate::policy::{epsilon_greedy, select_with_bias};
use crate::table::QValueTable;
use crate::two_level::TwoLevelQTable;
use dragonfly_engine::checkpoint::AgentCheckpoint;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::packet::{Packet, RouteMode};
use dragonfly_engine::routing::{
    vc_for_next_hop, Decision, FeedbackMsg, RouterAgent, RouterCtx, RoutingAlgorithm,
    DEAD_PORT_PENALTY_NS,
};
use dragonfly_topology::ids::{GroupId, Port, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of virtual channels Q-adaptive requires (paper Section 4:
/// packets are delivered within five hops and increment their VC per hop).
pub const QADAPTIVE_VCS: usize = 5;

/// Factory for Q-adaptive router agents.
#[derive(Debug, Clone, Copy)]
pub struct QAdaptiveRouting {
    /// Hyper-parameters shared by every agent.
    pub params: QAdaptiveParams,
}

impl QAdaptiveRouting {
    /// Q-adaptive with the given hyper-parameters.
    pub fn new(params: QAdaptiveParams) -> Self {
        params
            .validate()
            .expect("invalid Q-adaptive hyper-parameters");
        Self { params }
    }

    /// Q-adaptive with the paper's 1,056-node hyper-parameters.
    pub fn paper_1056() -> Self {
        Self::new(QAdaptiveParams::paper_1056())
    }

    /// Q-adaptive with the paper's 2,550-node hyper-parameters.
    pub fn paper_2550() -> Self {
        Self::new(QAdaptiveParams::paper_2550())
    }
}

impl Default for QAdaptiveRouting {
    fn default() -> Self {
        Self::paper_1056()
    }
}

impl RoutingAlgorithm for QAdaptiveRouting {
    fn name(&self) -> String {
        "Q-adaptive".to_string()
    }

    fn num_vcs(&self) -> usize {
        QADAPTIVE_VCS
    }

    fn make_agent(
        &self,
        topology: &AnyTopology,
        config: &EngineConfig,
        router: RouterId,
        seed: u64,
    ) -> Box<dyn RouterAgent> {
        Box::new(QAdaptiveAgent::new(
            topology,
            config,
            router,
            self.params,
            seed,
        ))
    }
}

/// The agent's Q-value storage: dense for paper-scale systems, paged for
/// the 100k-node-class scale runs, selected at construction by
/// [`EngineConfig::qtable_page_rows_threshold`]. Both kinds produce
/// bit-identical values (the paged init evaluates the same closed form the
/// dense init fills eagerly), so the threshold is a pure memory/CPU trade
/// with no effect on results.
pub(crate) enum TwoLevelStorage {
    Dense(TwoLevelQTable),
    Paged {
        table: PagedQTable,
        nodes_per_router: usize,
    },
}

impl TwoLevelStorage {
    /// The row holding estimates towards `(domain, src_slot)` — mirrors
    /// [`TwoLevelQTable::row`] for the paged representation.
    pub(crate) fn row(&self, domain: GroupId, src_slot: u8) -> usize {
        match self {
            Self::Dense(t) => t.row(domain, src_slot),
            Self::Paged {
                nodes_per_router, ..
            } => domain.index() * nodes_per_router + src_slot as usize,
        }
    }

    /// Row-minimum column and value for `(domain, src_slot)` — mirrors
    /// [`TwoLevelQTable::best_for`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn best_for(&self, domain: GroupId, src_slot: u8) -> (usize, f64) {
        self.best_in_row(self.row(domain, src_slot))
    }

    pub(crate) fn get(&self, row: usize, col: usize) -> f64 {
        match self {
            Self::Dense(t) => t.get(row, col),
            Self::Paged { table, .. } => table.get(row, col),
        }
    }

    pub(crate) fn set(&mut self, row: usize, col: usize, value: f64) {
        match self {
            Self::Dense(t) => t.set(row, col, value),
            Self::Paged { table, .. } => table.set(row, col, value),
        }
    }

    pub(crate) fn best_in_row(&self, row: usize) -> (usize, f64) {
        match self {
            Self::Dense(t) => t.best_in_row(row),
            Self::Paged { table, .. } => table.best_in_row(row),
        }
    }

    pub(crate) fn min_in_row(&self, row: usize) -> f64 {
        self.best_in_row(row).1
    }

    pub(crate) fn columns(&self) -> usize {
        self.as_table().columns()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rows(&self) -> usize {
        self.as_table().rows()
    }

    pub(crate) fn as_table(&self) -> &dyn QValueTable {
        match self {
            Self::Dense(t) => t,
            Self::Paged { table, .. } => table,
        }
    }

    pub(crate) fn as_table_mut(&mut self) -> &mut dyn QValueTable {
        match self {
            Self::Dense(t) => t,
            Self::Paged { table, .. } => table,
        }
    }

    /// Checkpoint form: `(q_values, q_rows)` — full row-major values with
    /// empty rows for dense storage, the sparse materialised-rows form for
    /// paged storage.
    pub(crate) fn checkpoint_values(&self) -> (Vec<f64>, Vec<u32>) {
        match self {
            Self::Dense(t) => (t.values(), Vec::new()),
            Self::Paged { table, .. } => {
                let rows = table.occupied_rows();
                (table.sparse_values(&rows), rows)
            }
        }
    }
}

/// The per-router Q-adaptive agent.
pub struct QAdaptiveAgent {
    router: RouterId,
    domain: GroupId,
    params: QAdaptiveParams,
    learner: HystereticLearner,
    table: TwoLevelStorage,
    rng: StdRng,
    exploration_ports: Vec<Port>,
    /// Port index of this router's first fabric port (= its host-port
    /// count): translates a feedback [`Port`] into a Q-table column
    /// without consulting the topology.
    col_offset: usize,
    /// Statistics: feedback messages applied (useful for convergence
    /// analyses and tests).
    updates_applied: u64,
    /// Statistics: decisions taken at this router.
    decisions_made: u64,
    /// Statistics: decisions that deviated from the minimal port.
    nonminimal_decisions: u64,
}

impl QAdaptiveAgent {
    /// Build an agent with a Q-table initialised to congestion-free
    /// minimal delivery times.
    pub fn new(
        topo: &AnyTopology,
        cfg: &EngineConfig,
        router: RouterId,
        params: QAdaptiveParams,
        seed: u64,
    ) -> Self {
        let rows = topo.num_domains() * topo.max_nodes_per_router();
        let table = if rows > cfg.qtable_page_rows_threshold {
            TwoLevelStorage::Paged {
                table: init_two_level_paged(topo, cfg, router),
                nodes_per_router: topo.max_nodes_per_router(),
            }
        } else {
            TwoLevelStorage::Dense(init_two_level_table(topo, cfg, router))
        };
        Self {
            router,
            domain: topo.domain_of_router(router),
            params,
            learner: HystereticLearner::new(params.alpha, params.beta),
            table,
            rng: StdRng::seed_from_u64(seed),
            exploration_ports: topo.exploration_ports(router, None),
            col_offset: topo.host_ports(router),
            updates_applied: 0,
            decisions_made: 0,
            nonminimal_decisions: 0,
        }
    }

    /// Read-only access to the learned two-level table (dense or paged,
    /// depending on the system scale).
    pub fn table(&self) -> &dyn QValueTable {
        self.table.as_table()
    }

    /// Number of hysteretic updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Number of routing decisions made so far.
    pub fn decisions_made(&self) -> u64 {
        self.decisions_made
    }

    /// Fraction of decisions that deviated from the minimal port.
    pub fn nonminimal_fraction(&self) -> f64 {
        if self.decisions_made == 0 {
            0.0
        } else {
            self.nonminimal_decisions as f64 / self.decisions_made as f64
        }
    }

    /// The best column of `row`, with randomized tie-breaking: all columns
    /// whose value is within `NEAR_TIE_TOLERANCE` (relative) of the row
    /// minimum are considered equivalent and one is picked uniformly at
    /// random. Under heavy congestion many escape ports have statistically
    /// indistinguishable Q-values; a deterministic argmin would herd every
    /// packet onto a single port and oscillate, while randomized
    /// tie-breaking spreads the load the way the paper's results imply.
    fn best_column_randomized(&mut self, row: usize) -> (usize, f64) {
        const NEAR_TIE_TOLERANCE: f64 = 0.10;
        let (best_col, best_val) = self.table.best_in_row(row);
        if !best_val.is_finite() || best_val <= 0.0 {
            return (best_col, best_val);
        }
        let cutoff = best_val * (1.0 + NEAR_TIE_TOLERANCE);
        // Count-then-select keeps this allocation-free on the per-decision
        // hot path. The RNG is drawn exactly when the old collect-based
        // code drew it (only with two or more near-ties, with the same
        // range), so the decision stream is bit-identical.
        let columns = self.table.columns();
        let near = (0..columns)
            .filter(|&c| self.table.get(row, c) <= cutoff)
            .count();
        if near <= 1 {
            return (best_col, best_val);
        }
        let target = self.rng.gen_range(0..near);
        let pick = (0..columns)
            .filter(|&c| self.table.get(row, c) <= cutoff)
            .nth(target)
            .expect("near-tie count bounds the draw");
        (pick, self.table.get(row, pick))
    }

    fn minimal_decision(&self, ctx: &RouterCtx<'_>, packet: &Packet) -> Decision {
        let port = ctx
            .topology
            .minimal_port(self.router, packet.dst_router)
            .expect("decide() is never called at the destination router");
        Decision {
            port,
            vc: vc_for_next_hop(packet, ctx.num_vcs()),
        }
    }

    fn column_of(&self, ctx: &RouterCtx<'_>, port: Port) -> usize {
        ctx.topology
            .qtable_column(self.router, port)
            .expect("routing ports are always fabric ports")
    }

    /// Fault handling: when the chosen port is dead, penalise its Q-entry
    /// (hysteretic update towards [`DEAD_PORT_PENALTY_NS`], so the table
    /// learns to steer away without waiting for feedback that will never
    /// arrive) and deterministically re-route onto a live fabric port.
    /// Consumes no RNG, keeping the streams of faulted and un-faulted runs
    /// aligned until a fault actually bites.
    fn resilient(&mut self, ctx: &RouterCtx<'_>, packet: &Packet, decision: Decision) -> Decision {
        if ctx.port_up(decision.port) {
            return decision;
        }
        let row = self.table.row(packet.dst_group, packet.src_slot);
        if let Some(col) = ctx.topology.qtable_column(self.router, decision.port) {
            let current = self.table.get(row, col);
            let updated = self.learner.update(current, DEAD_PORT_PENALTY_NS, 0.0);
            self.table.set(row, col, updated);
            self.updates_applied += 1;
        }
        match ctx.live_fallback_port(packet) {
            Some(port) => {
                self.nonminimal_decisions += 1;
                Decision {
                    port,
                    vc: vc_for_next_hop(packet, ctx.num_vcs()),
                }
            }
            None => decision,
        }
    }
}

impl RouterAgent for QAdaptiveAgent {
    fn decide(&mut self, ctx: &RouterCtx<'_>, packet: &mut Packet) -> Decision {
        self.decisions_made += 1;
        let topo = ctx.topology;
        let dst_domain = packet.dst_group;

        // (1) Destination-domain routers forward minimally.
        if self.domain == dst_domain {
            let d = self.minimal_decision(ctx, packet);
            return self.resilient(ctx, packet, d);
        }

        let row = self.table.row(dst_domain, packet.src_slot);
        let min_port = topo
            .minimal_port(self.router, packet.dst_router)
            .expect("non-destination router always has a minimal port");
        let min_col = self.column_of(ctx, min_port);
        let q_min = self.table.get(row, min_col);

        // (2) Source router: best-of-table vs minimal with q_thld1.
        if packet.at_source_router(self.router) {
            let (best_col, q_best) = self.best_column_randomized(row);
            let best_port = topo.port_for_column(self.router, best_col);
            let temp = select_with_bias(q_min, q_best, min_port, best_port, self.params.q_thld1);
            let port = epsilon_greedy(
                &mut self.rng,
                self.params.epsilon,
                temp,
                &self.exploration_ports,
            );
            if port != min_port {
                self.nonminimal_decisions += 1;
                packet.route.mode = RouteMode::Valiant;
            }
            let d = Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            };
            return self.resilient(ctx, packet, d);
        }

        // (3) First router visited in an intermediate domain.
        if packet.is_intermediate_group(self.domain) && !packet.route.int_group_decision_done {
            packet.route.int_group_decision_done = true;
            if let Some(direct) = topo.direct_port_to_domain(self.router, dst_domain) {
                // Direct connection into the destination domain: take it.
                let d = Decision {
                    port: direct,
                    vc: vc_for_next_hop(packet, ctx.num_vcs()),
                };
                return self.resilient(ctx, packet, d);
            }
            let rand_escape = topo.random_escape_port(&mut self.rng, self.router);
            let q_rand = self.table.get(row, self.column_of(ctx, rand_escape));
            let temp = select_with_bias(q_min, q_rand, min_port, rand_escape, self.params.q_thld2);
            let port = epsilon_greedy(
                &mut self.rng,
                self.params.epsilon,
                temp,
                &self.exploration_ports,
            );
            if port != min_port {
                self.nonminimal_decisions += 1;
            }
            let d = Decision {
                port,
                vc: vc_for_next_hop(packet, ctx.num_vcs()),
            };
            return self.resilient(ctx, packet, d);
        }

        // (4) Everybody else forwards minimally.
        let d = self.minimal_decision(ctx, packet);
        self.resilient(ctx, packet, d)
    }

    fn estimate(&self, _ctx: &RouterCtx<'_>, packet: &Packet) -> f64 {
        let row = self.table.row(packet.dst_group, packet.src_slot);
        self.table.min_in_row(row)
    }

    fn estimate_after_decision(
        &self,
        ctx: &RouterCtx<'_>,
        packet: &Packet,
        decision: Decision,
    ) -> f64 {
        // SARSA-style bootstrap: report the value of the port this router is
        // actually using for the packet. Most routers on a path are forced
        // to forward minimally, so the row minimum would hide congestion on
        // the minimal leg from upstream routers.
        let row = self.table.row(packet.dst_group, packet.src_slot);
        match ctx.topology.qtable_column(self.router, decision.port) {
            Some(col) => self.table.get(row, col),
            None => self.table.min_in_row(row),
        }
    }

    fn feedback(&mut self, msg: &FeedbackMsg) {
        let row = self.table.row(msg.dst_group, msg.src_slot);
        // The feedback port is a fabric port of this router; translate to a
        // table column (columns start at the first non-host port).
        let col = msg.port.index() - self.col_offset;
        let current = self.table.get(row, col);
        let updated = self
            .learner
            .update(current, msg.reward_ns, msg.downstream_estimate_ns);
        self.table.set(row, col, updated);
        self.updates_applied += 1;
    }

    fn save_state(&self) -> AgentCheckpoint {
        let (q_values, q_rows) = self.table.checkpoint_values();
        AgentCheckpoint {
            rng: Some(self.rng.state()),
            q_values,
            counters: vec![
                self.updates_applied,
                self.decisions_made,
                self.nonminimal_decisions,
            ],
            q_rows,
        }
    }

    fn load_state(&mut self, state: &AgentCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
        crate::table::load_checkpoint_values(
            self.table.as_table_mut(),
            &state.q_rows,
            &state.q_values,
        );
        let counter = |i: usize| state.counters.get(i).copied().unwrap_or(0);
        self.updates_applied = counter(0);
        self.decisions_made = counter(1);
        self.nonminimal_decisions = counter(2);
    }

    fn memory_bytes(&self) -> usize {
        self.table.as_table().memory_bytes()
            + self.exploration_ports.capacity() * std::mem::size_of::<Port>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::injector::{Injection, ScriptedInjector};
    use dragonfly_engine::observer::CountingObserver;
    use dragonfly_engine::Engine;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::ids::NodeId;
    use dragonfly_topology::Dragonfly;

    fn topo() -> AnyTopology {
        Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    #[test]
    fn factory_reports_five_vcs_and_name() {
        let algo = QAdaptiveRouting::default();
        assert_eq!(algo.num_vcs(), 5);
        assert_eq!(algo.name(), "Q-adaptive");
    }

    #[test]
    fn untrained_agent_prefers_the_minimal_path() {
        let t = topo();
        let cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let algo = QAdaptiveRouting::new(QAdaptiveParams {
            epsilon: 0.0,
            ..QAdaptiveParams::paper_1056()
        });
        // End-to-end check through the engine: a handful of packets routed
        // by an untrained table must follow minimal (<= 3 hop) paths.
        let script: Vec<Injection> = (0..50)
            .map(|i| Injection {
                time: i * 200,
                src: NodeId((i % 16) as u32),
                dst: NodeId(((i * 7 + 31) % 72) as u32),
            })
            .collect();
        let mut engine = Engine::new(
            t,
            cfg,
            &algo,
            Box::new(ScriptedInjector::new(script)),
            CountingObserver::default(),
            11,
        );
        engine.run_to_drain(10_000_000);
        let obs = engine.observer();
        assert_eq!(obs.delivered, 50);
        assert!(
            obs.mean_hops() <= 3.0 + 1e-9,
            "untrained Q-adaptive must look minimal"
        );
    }

    #[test]
    fn feedback_updates_the_expected_cell() {
        let t = topo();
        let df = t.as_dragonfly().unwrap().clone();
        let cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let mut agent = QAdaptiveAgent::new(&t, &cfg, RouterId(0), QAdaptiveParams::default(), 1);
        let port = df.layout().local_port(0);
        let row = agent.table.row(GroupId(3), 1);
        let col = df.layout().qtable_column(port).unwrap();
        let before = agent.table.get(row, col);
        let msg = FeedbackMsg {
            packet_id: 0,
            src: NodeId(1),
            dst: NodeId(30),
            dst_router: RouterId(15),
            dst_group: GroupId(3),
            src_slot: 1,
            port,
            reward_ns: 50.0,
            downstream_estimate_ns: 100.0,
        };
        agent.feedback(&msg);
        let after = agent.table.get(row, col);
        assert_ne!(before, after);
        assert_eq!(agent.updates_applied(), 1);
        // delta = 150 - before < 0 (before is ~700+), so the fast rate
        // applies and the estimate falls.
        assert!(after < before);
        // Unrelated cells untouched.
        assert_eq!(
            agent.table.get(agent.table.row(GroupId(2), 0), col),
            init_two_level_table(&t, &cfg, RouterId(0)).get(agent.table.row(GroupId(2), 0), col)
        );
    }

    #[test]
    fn repeated_bad_news_slowly_raises_the_estimate() {
        let t = topo();
        let df = t.as_dragonfly().unwrap().clone();
        let cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let mut agent = QAdaptiveAgent::new(&t, &cfg, RouterId(0), QAdaptiveParams::default(), 1);
        let port = df.layout().global_port(0);
        let row = agent.table.row(GroupId(5), 0);
        let col = df.layout().qtable_column(port).unwrap();
        let before = agent.table.get(row, col);
        for _ in 0..10 {
            agent.feedback(&FeedbackMsg {
                packet_id: 0,
                src: NodeId(0),
                dst: NodeId(50),
                dst_router: RouterId(25),
                dst_group: GroupId(5),
                src_slot: 0,
                port,
                reward_ns: 5_000.0,
                downstream_estimate_ns: 2_000.0,
            });
        }
        let after = agent.table.get(row, col);
        assert!(after > before, "congestion news must raise the estimate");
        // ... but far less than a plain learner with alpha=0.2 would.
        assert!(after < 7_000.0 - 1.0);
    }

    #[test]
    fn estimate_returns_the_row_minimum() {
        let t = topo();
        let cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let agent = QAdaptiveAgent::new(&t, &cfg, RouterId(4), QAdaptiveParams::default(), 1);
        let packet_row = agent.table.row(GroupId(2), 1);
        let expected = agent.table.min_in_row(packet_row);
        // The estimate used as the feedback bootstrap is the row minimum of
        // the (destination group, source slot) row.
        assert!(expected > 0.0);
        assert_eq!(agent.table.best_for(GroupId(2), 1).1, expected);
    }

    #[test]
    fn paged_agent_matches_dense_agent_and_checkpoints_cross_restore() {
        let t = topo();
        let df = t.as_dragonfly().unwrap().clone();
        let dense_cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let mut paged_cfg = dense_cfg;
        paged_cfg.qtable_page_rows_threshold = 0;
        let params = QAdaptiveParams::default();
        let mut dense = QAdaptiveAgent::new(&t, &dense_cfg, RouterId(0), params, 9);
        let mut paged = QAdaptiveAgent::new(&t, &paged_cfg, RouterId(0), params, 9);
        assert!(matches!(dense.table, TwoLevelStorage::Dense(_)));
        assert!(matches!(paged.table, TwoLevelStorage::Paged { .. }));

        // Drive both through the same feedback stream; every value must
        // track bit for bit.
        let domains = t.num_domains();
        for i in 0..300u64 {
            let port = if i % 3 == 0 {
                df.layout().global_port(0)
            } else {
                df.layout().local_port((i % 2) as usize)
            };
            let msg = FeedbackMsg {
                packet_id: i,
                src: NodeId(0),
                dst: NodeId(40),
                dst_router: RouterId(20),
                dst_group: GroupId::from_index((i as usize * 5 + 1) % domains),
                src_slot: (i % 2) as u8,
                port,
                reward_ns: 40.0 + (i % 17) as f64 * 13.0,
                downstream_estimate_ns: 90.0 + (i % 11) as f64 * 7.0,
            };
            dense.feedback(&msg);
            paged.feedback(&msg);
        }
        assert_eq!(
            dense.table.as_table().values(),
            paged.table.as_table().values()
        );
        assert!(dense.table.as_table().memory_bytes() > 0);
        // An untouched paged agent pays only for the page table, not the
        // values (at tiny scale a single materialised page can exceed the
        // whole dense table, so the bound is on the fresh agent).
        let fresh_paged = QAdaptiveAgent::new(&t, &paged_cfg, RouterId(0), params, 9);
        assert!(fresh_paged.memory_bytes() < dense.memory_bytes());

        // Checkpoints cross-restore: the sparse form into dense storage and
        // the dense form into paged storage both reproduce the values.
        let dense_ck = dense.save_state();
        let paged_ck = paged.save_state();
        assert!(dense_ck.q_rows.is_empty());
        assert!(!paged_ck.q_rows.is_empty());

        let mut dense_from_sparse = QAdaptiveAgent::new(&t, &dense_cfg, RouterId(0), params, 9);
        dense_from_sparse.load_state(&paged_ck);
        assert_eq!(
            dense_from_sparse.table.as_table().values(),
            dense.table.as_table().values()
        );

        let mut paged_from_dense = QAdaptiveAgent::new(&t, &paged_cfg, RouterId(0), params, 9);
        paged_from_dense.load_state(&dense_ck);
        assert_eq!(
            paged_from_dense.table.as_table().values(),
            paged.table.as_table().values()
        );

        // Sparse → fresh paged agent restores values AND materialisation.
        let mut paged_resume = QAdaptiveAgent::new(&t, &paged_cfg, RouterId(0), params, 9);
        paged_resume.load_state(&paged_ck);
        assert_eq!(
            paged_resume.table.as_table().values(),
            paged.table.as_table().values()
        );
        assert_eq!(paged_resume.memory_bytes(), paged.memory_bytes());
    }

    #[test]
    fn agents_build_on_every_topology_with_matching_table_shapes() {
        use dragonfly_topology::{FatTree, FatTreeConfig, HyperX, HyperXConfig};
        let cfg = EngineConfig::paper(QADAPTIVE_VCS);
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        for t in topologies {
            for r in [0, t.num_routers() - 1] {
                let router = RouterId::from_index(r);
                let agent = QAdaptiveAgent::new(&t, &cfg, router, QAdaptiveParams::default(), 1);
                assert_eq!(agent.table.columns(), t.fabric_ports(router));
                assert_eq!(
                    agent.table.rows(),
                    t.num_domains() * t.max_nodes_per_router()
                );
                assert_eq!(agent.col_offset, t.host_ports(router));
            }
        }
    }
}
