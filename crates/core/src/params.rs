//! Hyper-parameters of Q-adaptive routing.

use serde::{Deserialize, Serialize};

/// All tunables of the Q-adaptive algorithm.
///
/// Defaults are the values the paper uses for the 1,056-node system
/// (Section 5.1): `α = 0.2`, `β = 0.04`, `ε = 0.001`, `q_thld1 = 0.2`,
/// `q_thld2 = 0.35`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QAdaptiveParams {
    /// Learning rate applied when the temporal-difference error is
    /// negative, i.e. the new information *lowers* the delivery-time
    /// estimate (good news learned quickly).
    pub alpha: f64,
    /// Learning rate applied when the temporal-difference error is
    /// non-negative, i.e. the estimate must grow (bad news learned slowly,
    /// the "hysteresis").
    pub beta: f64,
    /// ε-greedy exploration probability.
    pub epsilon: f64,
    /// Minimal-path bias threshold used at the source router: the minimal
    /// port is preferred unless the best port is more than `q_thld1`
    /// (relative) cheaper.
    pub q_thld1: f64,
    /// Minimal-path bias threshold used at the first router visited in an
    /// intermediate group.
    pub q_thld2: f64,
}

impl Default for QAdaptiveParams {
    fn default() -> Self {
        Self::paper_1056()
    }
}

impl QAdaptiveParams {
    /// The hyper-parameters used for the paper's 1,056-node experiments.
    pub fn paper_1056() -> Self {
        Self {
            alpha: 0.2,
            beta: 0.04,
            epsilon: 0.001,
            q_thld1: 0.2,
            q_thld2: 0.35,
        }
    }

    /// The hyper-parameters used for the paper's 2,550-node experiments
    /// (Section 6): only the two thresholds differ.
    pub fn paper_2550() -> Self {
        Self {
            q_thld1: 0.05,
            q_thld2: 0.4,
            ..Self::paper_1056()
        }
    }

    /// Plain (non-hysteretic) Q-learning: both learning rates equal.
    /// Used by the learning-rule ablation bench.
    pub fn plain_q_learning(alpha: f64) -> Self {
        Self {
            alpha,
            beta: alpha,
            ..Self::paper_1056()
        }
    }

    /// Validate that all parameters are in their meaningful ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.beta) {
            return Err(format!(
                "learning rates must be in [0, 1]: alpha={}, beta={}",
                self.alpha, self.beta
            ));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(format!("epsilon must be in [0, 1]: {}", self.epsilon));
        }
        if self.q_thld1 < 0.0 || self.q_thld2 < 0.0 {
            return Err(format!(
                "thresholds must be non-negative: q_thld1={}, q_thld2={}",
                self.q_thld1, self.q_thld2
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_1056_setup() {
        let p = QAdaptiveParams::default();
        assert_eq!(p.alpha, 0.2);
        assert_eq!(p.beta, 0.04);
        assert_eq!(p.epsilon, 0.001);
        assert_eq!(p.q_thld1, 0.2);
        assert_eq!(p.q_thld2, 0.35);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn paper_2550_only_changes_thresholds() {
        let a = QAdaptiveParams::paper_1056();
        let b = QAdaptiveParams::paper_2550();
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.beta, b.beta);
        assert_eq!(a.epsilon, b.epsilon);
        assert_eq!(b.q_thld1, 0.05);
        assert_eq!(b.q_thld2, 0.4);
    }

    #[test]
    fn plain_q_learning_equalises_rates() {
        let p = QAdaptiveParams::plain_q_learning(0.3);
        assert_eq!(p.alpha, p.beta);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let p = QAdaptiveParams {
            alpha: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = QAdaptiveParams {
            epsilon: -0.1,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = QAdaptiveParams {
            q_thld2: -1.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}
