//! Hysteretic Q-learning updates (Equation 3 of the paper).
//!
//! The temporal-difference error for a forwarded packet is
//! `δ = r + Q_y − Q_x`, where `r` is the per-hop travelling time (the
//! reward), `Q_y` is the downstream router's own estimate of the remaining
//! delivery time, and `Q_x` is the current estimate being updated. Because
//! Q-values are delivery *times*, lower is better: a negative `δ` is good
//! news and is learned with the fast rate `α`, a non-negative `δ` is bad
//! news and is learned with the slow rate `β` (the hysteresis that keeps
//! hundreds of simultaneously learning agents stable).

use serde::{Deserialize, Serialize};

/// The hysteretic update rule with its two learning rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HystereticLearner {
    /// Fast learning rate, applied when the estimate decreases.
    pub alpha: f64,
    /// Slow learning rate, applied when the estimate increases.
    pub beta: f64,
}

impl HystereticLearner {
    /// Create a learner; `alpha` is used for decreases, `beta` for
    /// increases.
    pub fn new(alpha: f64, beta: f64) -> Self {
        Self { alpha, beta }
    }

    /// A plain Q-learning rule (no hysteresis): both rates equal.
    pub fn plain(alpha: f64) -> Self {
        Self { alpha, beta: alpha }
    }

    /// The temporal-difference error `δ = r + q_downstream − q_current`.
    #[inline]
    pub fn td_error(&self, q_current: f64, reward: f64, q_downstream: f64) -> f64 {
        reward + q_downstream - q_current
    }

    /// Apply Equation 3 and return the updated Q-value.
    #[inline]
    pub fn update(&self, q_current: f64, reward: f64, q_downstream: f64) -> f64 {
        let delta = self.td_error(q_current, reward, q_downstream);
        let rate = if delta < 0.0 { self.alpha } else { self.beta };
        q_current + rate * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_news_uses_alpha() {
        let l = HystereticLearner::new(0.2, 0.04);
        // Current estimate 1000 ns, but reward 100 + downstream 400 = 500:
        // the path is better than thought, delta = -500.
        let updated = l.update(1000.0, 100.0, 400.0);
        assert!((updated - (1000.0 + 0.2 * -500.0)).abs() < 1e-12);
        assert!(updated < 1000.0);
    }

    #[test]
    fn bad_news_uses_beta() {
        let l = HystereticLearner::new(0.2, 0.04);
        // Congestion: observed 700 + 900 = 1600 > 1000, delta = +600.
        let updated = l.update(1000.0, 700.0, 900.0);
        assert!((updated - (1000.0 + 0.04 * 600.0)).abs() < 1e-12);
        assert!(updated > 1000.0);
        // The increase is much smaller than a symmetric learner would make.
        let plain = HystereticLearner::plain(0.2).update(1000.0, 700.0, 900.0);
        assert!(plain > updated);
    }

    #[test]
    fn zero_delta_is_a_fixed_point() {
        let l = HystereticLearner::new(0.2, 0.04);
        let updated = l.update(500.0, 200.0, 300.0);
        assert_eq!(updated, 500.0);
    }

    #[test]
    fn repeated_updates_converge_to_the_true_value() {
        // With a stationary reward + downstream value the estimate converges
        // to r + q_downstream regardless of its starting point.
        let l = HystereticLearner::new(0.2, 0.04);
        let target = 150.0 + 420.0;
        for start in [10.0_f64, 10_000.0] {
            let mut q = start;
            for _ in 0..2_000 {
                q = l.update(q, 150.0, 420.0);
            }
            assert!((q - target).abs() < 1.0, "start={start}, q={q}");
        }
    }

    #[test]
    fn plain_learner_is_symmetric() {
        let l = HystereticLearner::plain(0.5);
        let up = l.update(100.0, 50.0, 100.0); // delta = +50
        let down = l.update(100.0, 10.0, 40.0); // delta = -50
        assert!((up - 125.0).abs() < 1e-12);
        assert!((down - 75.0).abs() < 1e-12);
    }
}
