//! Q-value initialisation.
//!
//! The paper initialises Q-values "to the theoretical packet delivery time
//! without any congestion through a minimal routing path". We refine this
//! per column: the value of (row, port) is the congestion-free time of the
//! first hop through that port plus the congestion-free minimal delivery
//! time from the neighbouring router onwards. This makes the initial
//! `argmin` of every row coincide with the minimal path, so an untrained
//! Q-adaptive router behaves like minimal routing (exactly what the paper's
//! convergence plots show at t = 0 under low load).
//!
//! The estimates are topology-generic: the first-hop cost comes from the
//! port's link kind and the remaining time from
//! [`Topology::estimate_hops_to_domain`] /
//! [`Topology::minimal_hop_kinds`], so the same initialisation works on
//! the Dragonfly, the fat-tree and the HyperX (and reproduces the
//! pre-trait Dragonfly values bit for bit).

use dragonfly_engine::config::EngineConfig;
use dragonfly_topology::ids::{GroupId, Port, RouterId};
use dragonfly_topology::{AnyTopology, Topology};
use std::sync::Arc;

use crate::paged::PagedQTable;
use crate::qtable::QTable;
use crate::two_level::TwoLevelQTable;

/// Congestion-free delivery-time estimate from `router` to *some* node in
/// `domain` (the topology's typical-case hop sequence).
pub fn theoretical_to_domain(
    topo: &AnyTopology,
    cfg: &EngineConfig,
    router: RouterId,
    domain: GroupId,
) -> f64 {
    cfg.theoretical_delivery_ns(&topo.estimate_hops_to_domain(router, domain)) as f64
}

/// Congestion-free delivery-time estimate from `router` to a specific
/// destination router.
pub fn theoretical_to_router(
    topo: &AnyTopology,
    cfg: &EngineConfig,
    router: RouterId,
    dest: RouterId,
) -> f64 {
    let kinds = topo.minimal_hop_kinds(router, dest);
    cfg.theoretical_delivery_ns(&kinds) as f64
}

/// The congestion-free cost of leaving `router` through fabric `port` and
/// then minimally reaching `domain`.
pub fn port_then_domain_estimate(
    topo: &AnyTopology,
    cfg: &EngineConfig,
    router: RouterId,
    port: Port,
    domain: GroupId,
) -> f64 {
    let kind = topo.link_kind(router, port);
    let neighbor = topo.neighbor_router(router, port);
    if topo.domain_of_router(neighbor) == domain
        && neighbor != router
        && topo.host_ports(neighbor) > 0
    {
        // The next router is already in the destination domain *and* can
        // eject; only the ejection (plus possibly one more local hop,
        // averaged away) is left. Use the exact remaining estimate of
        // zero further hops. Node-less routers (fat-tree aggs/cores) fall
        // through to the domain estimate, which still charges the hops
        // down to an edge switch.
        return cfg.hop_ns(kind) as f64 + cfg.ejection_ns() as f64;
    }
    cfg.hop_ns(kind) as f64 + theoretical_to_domain(topo, cfg, neighbor, domain)
}

/// Build a fully initialised two-level Q-table for one router: rows are
/// `(destination domain, source slot)`, columns are this router's fabric
/// ports.
pub fn init_two_level_table(
    topo: &AnyTopology,
    cfg: &EngineConfig,
    router: RouterId,
) -> TwoLevelQTable {
    TwoLevelQTable::from_fn(
        topo.num_domains(),
        topo.max_nodes_per_router(),
        topo.fabric_ports(router),
        |domain, _slot, col| {
            let port = topo.port_for_column(router, col);
            port_then_domain_estimate(topo, cfg, router, port, domain)
        },
    )
}

/// Build a fully initialised original (destination-router indexed) Q-table
/// for one router.
pub fn init_qtable(topo: &AnyTopology, cfg: &EngineConfig, router: RouterId) -> QTable {
    QTable::from_fn(
        topo.num_routers(),
        topo.fabric_ports(router),
        |dest, col| {
            let port = topo.port_for_column(router, col);
            let kind = topo.link_kind(router, port);
            let neighbor = topo.neighbor_router(router, port);
            if neighbor == dest {
                cfg.hop_ns(kind) as f64 + cfg.ejection_ns() as f64
            } else {
                cfg.hop_ns(kind) as f64 + theoretical_to_router(topo, cfg, neighbor, dest)
            }
        },
    )
}

/// The paged counterpart of [`init_two_level_table`]: same shape, same
/// deterministic init values, but rows materialise lazily on first write.
/// The init closure owns a clone of the topology (topologies are O(1)
/// arithmetic over their configuration, so the clone is cheap) and is
/// evaluated on demand instead of eagerly filling `rows × columns` cells.
pub fn init_two_level_paged(
    topo: &AnyTopology,
    cfg: &EngineConfig,
    router: RouterId,
) -> PagedQTable {
    let nodes_per_router = topo.max_nodes_per_router().max(1);
    let rows = topo.num_domains() * topo.max_nodes_per_router();
    let columns = topo.fabric_ports(router);
    let topo = topo.clone();
    let cfg = *cfg;
    PagedQTable::new(
        rows,
        columns,
        Arc::new(move |row, col| {
            // The two-level init is slot-independent: row j·p + n maps to
            // domain j, and the slot does not enter the estimate.
            let domain = GroupId::from_index(row / nodes_per_router);
            let port = topo.port_for_column(router, col);
            port_then_domain_estimate(&topo, &cfg, router, port, domain)
        }),
    )
}

/// The paged counterpart of [`init_qtable`]: one row per destination
/// router, materialised lazily on first write.
pub fn init_qtable_paged(topo: &AnyTopology, cfg: &EngineConfig, router: RouterId) -> PagedQTable {
    let rows = topo.num_routers();
    let columns = topo.fabric_ports(router);
    let topo = topo.clone();
    let cfg = *cfg;
    PagedQTable::new(
        rows,
        columns,
        Arc::new(move |row, col| {
            let dest = RouterId::from_index(row);
            let port = topo.port_for_column(router, col);
            let kind = topo.link_kind(router, port);
            let neighbor = topo.neighbor_router(router, port);
            if neighbor == dest {
                cfg.hop_ns(kind) as f64 + cfg.ejection_ns() as f64
            } else {
                cfg.hop_ns(kind) as f64 + theoretical_to_router(&topo, &cfg, neighbor, dest)
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::QValueTable;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::{Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig};

    fn setup() -> (AnyTopology, EngineConfig) {
        (
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            EngineConfig::paper(5),
        )
    }

    #[test]
    fn initial_argmin_matches_the_minimal_path_across_groups() {
        let (topo, cfg) = setup();
        let df = topo.as_dragonfly().unwrap().clone();
        let router = RouterId(0);
        let table = init_two_level_table(&topo, &cfg, router);
        for group in df.groups() {
            if group == df.group_of_router(router) {
                continue;
            }
            // The minimal path towards any router of `group` starts either
            // at our own global link to it or at the local link towards the
            // gateway router.
            let (gateway, gport) = df.gateway(df.group_of_router(router), group);
            let expected_port = if gateway == router {
                gport
            } else {
                df.local_port_to(router, gateway)
            };
            let expected_col = df.layout().qtable_column(expected_port).unwrap();
            let (best_col, _) = table.best_for(group, 0);
            assert_eq!(
                best_col, expected_col,
                "group {group:?}: initial best port should be the minimal one"
            );
        }
    }

    #[test]
    fn init_values_are_positive_and_bounded_on_every_topology() {
        let cfg = EngineConfig::paper(5);
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        for topo in topologies {
            for r in [0, topo.num_routers() / 2, topo.num_routers() - 1] {
                let router = RouterId::from_index(r);
                let table = init_two_level_table(&topo, &cfg, router);
                assert_eq!(table.columns(), topo.fabric_ports(router));
                for row in 0..table.rows() {
                    for col in 0..table.columns() {
                        let v = table.get(row, col);
                        assert!(v > 0.0, "{}: row {row} col {col}", topo.kind_name());
                        // Worst initial estimate: a hop plus a short
                        // minimal route plus ejection — well under 10 µs
                        // with paper timing.
                        assert!(
                            v < 10_000.0,
                            "{}: row {row} col {col}: {v}",
                            topo.kind_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn qtable_init_matches_direct_theoretical_time_for_neighbors() {
        let (topo, cfg) = setup();
        let router = RouterId(0);
        let table = init_qtable(&topo, &cfg, router);
        // For a directly connected destination, the init through the direct
        // port equals one hop plus ejection.
        for col in 0..topo.fabric_ports(router) {
            let port = topo.port_for_column(router, col);
            let neighbor = topo.neighbor_router(router, port);
            let v = table.value(neighbor, col);
            let kind = topo.link_kind(router, port);
            assert_eq!(v, (cfg.hop_ns(kind) + cfg.ejection_ns()) as f64);
        }
    }

    #[test]
    fn paged_init_matches_dense_init_cell_for_cell() {
        let cfg = EngineConfig::paper(5);
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        for topo in topologies {
            for r in [0, topo.num_routers() - 1] {
                let router = RouterId::from_index(r);
                let dense = init_two_level_table(&topo, &cfg, router);
                let paged = init_two_level_paged(&topo, &cfg, router);
                assert_eq!(paged.rows(), dense.rows(), "{}", topo.kind_name());
                assert_eq!(paged.columns(), dense.columns());
                assert_eq!(paged.values(), dense.values(), "{}", topo.kind_name());
                for row in 0..dense.rows() {
                    assert_eq!(paged.best_in_row(row), dense.best_in_row(row));
                }
                let dense_q = init_qtable(&topo, &cfg, router);
                let paged_q = init_qtable_paged(&topo, &cfg, router);
                assert_eq!(paged_q.values(), dense_q.values(), "{}", topo.kind_name());
            }
        }
    }

    #[test]
    fn theoretical_to_domain_is_cheaper_inside_own_domain() {
        let (topo, cfg) = setup();
        let router = RouterId(0);
        let own = theoretical_to_domain(&topo, &cfg, router, topo.domain_of_router(router));
        let other = theoretical_to_domain(&topo, &cfg, router, GroupId(3));
        assert!(own < other);
    }
}
