//! Q-value initialisation.
//!
//! The paper initialises Q-values "to the theoretical packet delivery time
//! without any congestion through a minimal routing path". We refine this
//! per column: the value of (row, port) is the congestion-free time of the
//! first hop through that port plus the congestion-free minimal delivery
//! time from the neighbouring router onwards. This makes the initial
//! `argmin` of every row coincide with the minimal path, so an untrained
//! Q-adaptive router behaves like minimal routing (exactly what the paper's
//! convergence plots show at t = 0 under low load).

use dragonfly_engine::config::EngineConfig;
use dragonfly_topology::ids::{GroupId, Port, RouterId};
use dragonfly_topology::paths::HopKind;
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::Dragonfly;

use crate::qtable::QTable;
use crate::two_level::TwoLevelQTable;

/// Congestion-free delivery-time estimate from `router` to *some* node in
/// `group` (assuming one local hop inside the destination group, the common
/// case).
pub fn theoretical_to_group(
    topo: &Dragonfly,
    cfg: &EngineConfig,
    router: RouterId,
    group: GroupId,
) -> f64 {
    let my_group = topo.group_of_router(router);
    let mut kinds: Vec<HopKind> = Vec::with_capacity(3);
    if my_group == group {
        kinds.push(HopKind::Local);
    } else {
        let (gateway, _) = topo.gateway(my_group, group);
        if gateway != router {
            kinds.push(HopKind::Local);
        }
        kinds.push(HopKind::Global);
        kinds.push(HopKind::Local);
    }
    cfg.theoretical_delivery_ns(&kinds) as f64
}

/// Congestion-free delivery-time estimate from `router` to a specific
/// destination router.
pub fn theoretical_to_router(
    topo: &Dragonfly,
    cfg: &EngineConfig,
    router: RouterId,
    dest: RouterId,
) -> f64 {
    let kinds = topo.minimal_hop_kinds(router, dest);
    cfg.theoretical_delivery_ns(&kinds) as f64
}

/// The congestion-free cost of leaving `router` through fabric `port` and
/// then minimally reaching `group`.
pub fn port_then_group_estimate(
    topo: &Dragonfly,
    cfg: &EngineConfig,
    router: RouterId,
    port: Port,
    group: GroupId,
) -> f64 {
    let kind = match topo.port_kind(port) {
        PortKind::Local => HopKind::Local,
        PortKind::Global => HopKind::Global,
        PortKind::Host => unreachable!("host ports never appear in Q-tables"),
    };
    let neighbor = topo.neighbor_router(router, port);
    if topo.group_of_router(neighbor) == group && neighbor != router {
        // The next router is already in the destination group; only the
        // ejection (plus possibly one more local hop, averaged away) is
        // left. Use the exact remaining estimate of zero further hops.
        return cfg.hop_ns(kind) as f64 + cfg.ejection_ns() as f64;
    }
    cfg.hop_ns(kind) as f64 + theoretical_to_group(topo, cfg, neighbor, group)
}

/// Build a fully initialised two-level Q-table for one router.
pub fn init_two_level_table(
    topo: &Dragonfly,
    cfg: &EngineConfig,
    router: RouterId,
) -> TwoLevelQTable {
    let dcfg = topo.config();
    TwoLevelQTable::from_fn(
        dcfg.groups(),
        dcfg.p,
        dcfg.fabric_ports(),
        |group, _slot, col| {
            let port = topo.layout().port_for_column(col);
            port_then_group_estimate(topo, cfg, router, port, group)
        },
    )
}

/// Build a fully initialised original (destination-router indexed) Q-table
/// for one router.
pub fn init_qtable(topo: &Dragonfly, cfg: &EngineConfig, router: RouterId) -> QTable {
    let dcfg = topo.config();
    QTable::from_fn(dcfg.routers(), dcfg.fabric_ports(), |dest, col| {
        let port = topo.layout().port_for_column(col);
        let kind = match topo.port_kind(port) {
            PortKind::Local => HopKind::Local,
            PortKind::Global => HopKind::Global,
            PortKind::Host => unreachable!(),
        };
        let neighbor = topo.neighbor_router(router, port);
        if neighbor == dest {
            cfg.hop_ns(kind) as f64 + cfg.ejection_ns() as f64
        } else {
            cfg.hop_ns(kind) as f64 + theoretical_to_router(topo, cfg, neighbor, dest)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::QValueTable;
    use dragonfly_topology::config::DragonflyConfig;

    fn setup() -> (Dragonfly, EngineConfig) {
        (
            Dragonfly::new(DragonflyConfig::tiny()),
            EngineConfig::paper(5),
        )
    }

    #[test]
    fn initial_argmin_matches_the_minimal_path_across_groups() {
        let (topo, cfg) = setup();
        let router = RouterId(0);
        let table = init_two_level_table(&topo, &cfg, router);
        for group in topo.groups() {
            if group == topo.group_of_router(router) {
                continue;
            }
            // The minimal path towards any router of `group` starts either
            // at our own global link to it or at the local link towards the
            // gateway router.
            let (gateway, gport) = topo.gateway(topo.group_of_router(router), group);
            let expected_port = if gateway == router {
                gport
            } else {
                topo.local_port_to(router, gateway)
            };
            let expected_col = topo.layout().qtable_column(expected_port).unwrap();
            let (best_col, _) = table.best_for(group, 0);
            assert_eq!(
                best_col, expected_col,
                "group {group:?}: initial best port should be the minimal one"
            );
        }
    }

    #[test]
    fn init_values_are_positive_and_bounded() {
        let (topo, cfg) = setup();
        let table = init_two_level_table(&topo, &cfg, RouterId(5));
        for row in 0..table.rows() {
            for col in 0..table.columns() {
                let v = table.get(row, col);
                assert!(v > 0.0);
                // Worst initial estimate: a hop plus a full 3-hop minimal
                // route plus ejection — well under 10 µs with paper timing.
                assert!(v < 10_000.0, "row {row} col {col}: {v}");
            }
        }
    }

    #[test]
    fn qtable_init_matches_direct_theoretical_time_for_neighbors() {
        let (topo, cfg) = setup();
        let router = RouterId(0);
        let table = init_qtable(&topo, &cfg, router);
        // For a directly connected destination, the init through the direct
        // port equals one hop plus ejection.
        for port in topo.layout().fabric_port_iter() {
            let neighbor = topo.neighbor_router(router, port);
            let col = topo.layout().qtable_column(port).unwrap();
            let v = table.value(neighbor, col);
            let kind = match topo.port_kind(port) {
                PortKind::Local => HopKind::Local,
                PortKind::Global => HopKind::Global,
                PortKind::Host => unreachable!(),
            };
            assert_eq!(v, (cfg.hop_ns(kind) + cfg.ejection_ns()) as f64);
        }
    }

    #[test]
    fn theoretical_to_group_is_cheaper_inside_own_group() {
        let (topo, cfg) = setup();
        let router = RouterId(0);
        let own = theoretical_to_group(&topo, &cfg, router, topo.group_of_router(router));
        let other = theoretical_to_group(&topo, &cfg, router, GroupId(3));
        assert!(own < other);
    }
}
