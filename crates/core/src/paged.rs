//! A sparse, lazily materialised Q-value table for large systems.
//!
//! A dense Q-table costs `rows × columns × 8` bytes per router, and the
//! row count grows with system size (`g·p` for the two-level table, the
//! router count for the Q-routing baseline), so a 100k-node system pays
//! gigabytes for table entries most routers never touch: under realistic
//! traffic each router only ever *updates* the rows of destinations it
//! actually forwards packets towards.
//!
//! [`PagedQTable`] exploits that sparsity. Rows live in fixed pages of
//! [`PAGE_ROWS`] rows; a page is only allocated on the first **write**
//! into one of its rows, at which point it is filled from the table's
//! deterministic init function (the same congestion-free estimates the
//! dense tables are seeded with — see [`crate::init`]). Reads of
//! untouched rows evaluate the init function directly, so a paged table
//! is **observationally identical** to the dense table it replaces —
//! same values, same argmin tie-breaks, same learning trajectory — while
//! its memory footprint is proportional to the rows actually written.
//!
//! The per-row argmin cache of [`crate::table`] is kept inside each
//! materialised page. For untouched rows, `best_in_row` scans the init
//! function over the columns (columns are a router radix, a few dozen at
//! most); after the first write the row answers from its page cache in
//! O(1), which is where the routing hot path lives.
//!
//! The table is deliberately **not** serializable: its checkpoint form is
//! the sparse row list of [`PagedQTable::occupied_rows`] plus
//! [`crate::table::QValueTable::sparse_values`], carried in
//! `AgentCheckpoint::q_rows` — everything else is rebuilt from
//! `(topology, config, router)` by the algorithm factory.

use crate::qtable::{maintain_argmin, scan_row_argmin};
use crate::table::QValueTable;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// Rows per lazily allocated page. Small enough that a router learning
/// about a handful of destinations stays small, large enough that the
/// page table itself is negligible.
pub const PAGE_ROWS: usize = 64;

/// The deterministic initial value of a cell, `(row, column) -> value`.
pub type InitFn = Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>;

/// One materialised page: a row-major value slab plus the per-row argmin
/// cache, both sized `rows_in_page` (the last page may be partial).
#[derive(Clone)]
struct Page {
    values: Vec<f64>,
    argmin: Vec<u32>,
}

/// The init values of the most recently read **unmaterialised** row.
///
/// Routing reads an untouched row many times per decision (`best_in_row`,
/// then one `get` per column for near-tie detection), and every such read
/// would otherwise re-evaluate the init closure — whose topology estimates
/// allocate — once per cell, making a single decision O(columns²) closure
/// calls. Caching one row's init values makes the burst O(columns).
///
/// The cache needs no invalidation: it only ever holds *init* values,
/// which are deterministic constants of `(row, column)`, and once a row's
/// page materialises every read is answered from the page before the
/// cache is consulted.
#[derive(Clone)]
struct RowCache {
    /// Cached row index, or `usize::MAX` when empty.
    row: usize,
    /// Lowest-index argmin column of the cached row.
    argmin: u32,
    /// The row's `columns` init values.
    values: Vec<f64>,
}

/// A `rows × columns` Q-value table with lazily allocated pages.
#[derive(Clone)]
pub struct PagedQTable {
    rows: usize,
    columns: usize,
    init: InitFn,
    pages: Vec<Option<Box<Page>>>,
    cache: RefCell<RowCache>,
}

impl fmt::Debug for PagedQTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedQTable")
            .field("rows", &self.rows)
            .field("columns", &self.columns)
            .field("pages", &self.pages.len())
            .field(
                "materialized_pages",
                &self.pages.iter().filter(|p| p.is_some()).count(),
            )
            .finish()
    }
}

impl PagedQTable {
    /// Create an empty (fully unmaterialised) table whose cells read as
    /// `init(row, column)` until first written.
    pub fn new(rows: usize, columns: usize, init: InitFn) -> Self {
        let num_pages = rows.div_ceil(PAGE_ROWS);
        Self {
            rows,
            columns,
            init,
            pages: vec![None; num_pages],
            cache: RefCell::new(RowCache {
                row: usize::MAX,
                argmin: 0,
                values: Vec::new(),
            }),
        }
    }

    fn rows_in_page(&self, page: usize) -> usize {
        PAGE_ROWS.min(self.rows - page * PAGE_ROWS)
    }

    /// Evaluate `f` against the cached init values of (unmaterialised)
    /// `row`, filling the cache first on a miss — one init-closure pass
    /// over the columns instead of one call per subsequent read.
    fn with_init_row<T>(&self, row: usize, f: impl FnOnce(&RowCache) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        if cache.row != row {
            cache.values.clear();
            cache.values.reserve(self.columns);
            let mut best_col = 0u32;
            let mut best_val = f64::INFINITY;
            for c in 0..self.columns {
                let v = (self.init)(row, c);
                if v < best_val {
                    best_val = v;
                    best_col = c as u32;
                }
                cache.values.push(v);
            }
            cache.argmin = best_col;
            cache.row = row;
        }
        f(&cache)
    }

    /// Materialise a page from the init function (values and argmin cache,
    /// filled in a single pass).
    fn materialize(&mut self, page: usize) -> &mut Page {
        if self.pages[page].is_none() {
            let start = page * PAGE_ROWS;
            let n = self.rows_in_page(page);
            let mut values = Vec::with_capacity(n * self.columns);
            let mut argmin = Vec::with_capacity(n);
            for r in 0..n {
                let mut best_col = 0u32;
                let mut best_val = f64::INFINITY;
                for c in 0..self.columns {
                    let v = (self.init)(start + r, c);
                    if v < best_val {
                        best_val = v;
                        best_col = c as u32;
                    }
                    values.push(v);
                }
                argmin.push(best_col);
            }
            self.pages[page] = Some(Box::new(Page { values, argmin }));
        }
        self.pages[page].as_mut().unwrap()
    }

    /// Number of pages currently materialised.
    pub fn materialized_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Ascending row indices of every materialised page — the sparse
    /// checkpoint row set. Restoring these rows via
    /// [`QValueTable::load_sparse_values`] into a fresh table reproduces
    /// both the values and the materialisation pattern (and therefore the
    /// memory accounting) of the checkpointed table.
    pub fn occupied_rows(&self) -> Vec<u32> {
        let mut rows = Vec::new();
        for (p, page) in self.pages.iter().enumerate() {
            if page.is_some() {
                let start = p * PAGE_ROWS;
                rows.extend((start..start + self.rows_in_page(p)).map(|r| r as u32));
            }
        }
        rows
    }
}

impl QValueTable for PagedQTable {
    fn rows(&self) -> usize {
        self.rows
    }

    fn columns(&self) -> usize {
        self.columns
    }

    #[inline]
    fn get(&self, row: usize, column: usize) -> f64 {
        debug_assert!(row < self.rows && column < self.columns);
        match &self.pages[row / PAGE_ROWS] {
            Some(p) => p.values[(row % PAGE_ROWS) * self.columns + column],
            None => self.with_init_row(row, |cache| cache.values[column]),
        }
    }

    fn set(&mut self, row: usize, column: usize, value: f64) {
        debug_assert!(row < self.rows && column < self.columns);
        let columns = self.columns;
        let local = row % PAGE_ROWS;
        let page = self.materialize(row / PAGE_ROWS);
        let idx = local * columns + column;
        let old = page.values[idx];
        page.values[idx] = value;
        page.argmin[local] = maintain_argmin(
            &page.values,
            local,
            columns,
            column,
            old,
            value,
            page.argmin[local],
        );
    }

    fn best_in_row(&self, row: usize) -> (usize, f64) {
        if self.columns == 0 {
            return (0, f64::INFINITY);
        }
        match &self.pages[row / PAGE_ROWS] {
            Some(p) => {
                let local = row % PAGE_ROWS;
                let c = p.argmin[local] as usize;
                (c, p.values[local * self.columns + c])
            }
            None => {
                // Untouched row: answer from the cached init row (the
                // cache fill uses the same strict-less tie-break as the
                // dense scan, so the answer is bit-identical).
                self.with_init_row(row, |cache| {
                    (cache.argmin as usize, cache.values[cache.argmin as usize])
                })
            }
        }
    }

    /// Restore the sparse checkpoint form. Overrides the per-cell default
    /// with direct page construction: a run of listed rows that covers a
    /// whole unmaterialised page becomes that page's value slab verbatim,
    /// skipping the init-closure evaluation `set` would trigger for every
    /// page-mate — on a 110k-node restore that is the difference between
    /// copying the snapshot and re-deriving millions of path estimates.
    fn load_sparse_values(&mut self, rows: &[u32], values: &[f64]) {
        assert_eq!(
            values.len(),
            rows.len() * self.columns,
            "sparse Q-table checkpoint shape does not match this table"
        );
        if self.columns == 0 {
            return;
        }
        let mut i = 0;
        while i < rows.len() {
            let page = rows[i] as usize / PAGE_ROWS;
            let start = page * PAGE_ROWS;
            let n = self.rows_in_page(page);
            let whole_page = self.pages[page].is_none()
                && rows[i] as usize == start
                && i + n <= rows.len()
                && (1..n).all(|k| rows[i + k] as usize == start + k);
            if whole_page {
                let slab = &values[i * self.columns..(i + n) * self.columns];
                let mut page_values = Vec::with_capacity(n * self.columns);
                page_values.extend_from_slice(slab);
                let argmin = (0..n)
                    .map(|r| scan_row_argmin(&page_values, r, self.columns))
                    .collect();
                self.pages[page] = Some(Box::new(Page {
                    values: page_values,
                    argmin,
                }));
                i += n;
            } else {
                let r = rows[i] as usize;
                for c in 0..self.columns {
                    self.set(r, c, values[i * self.columns + c]);
                }
                i += 1;
            }
        }
    }

    /// Memory actually allocated: the page table plus every materialised
    /// page's value slab and argmin cache. Untouched rows cost nothing
    /// beyond their `Option` slot — this is the number the scale bench
    /// rolls up into `memory_bytes`.
    fn memory_bytes(&self) -> usize {
        let mut bytes = self.pages.capacity() * std::mem::size_of::<Option<Box<Page>>>();
        for page in self.pages.iter().flatten() {
            bytes += std::mem::size_of::<Page>();
            bytes += page.values.capacity() * std::mem::size_of::<f64>();
            bytes += page.argmin.capacity() * std::mem::size_of::<u32>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtable::QTable;

    fn init_fn() -> InitFn {
        Arc::new(|row, col| ((row * 31 + col * 17) % 23) as f64 + 1.0)
    }

    fn dense_twin(rows: usize, columns: usize) -> QTable {
        let f = init_fn();
        QTable::from_fn(rows, columns, |r, c| f(r.index(), c))
    }

    #[test]
    fn unwritten_table_reads_init_and_allocates_nothing() {
        let t = PagedQTable::new(200, 7, init_fn());
        let d = dense_twin(200, 7);
        assert_eq!(t.rows(), 200);
        assert_eq!(t.columns(), 7);
        assert_eq!(t.materialized_pages(), 0);
        assert!(t.occupied_rows().is_empty());
        for row in [0, 63, 64, 150, 199] {
            for c in 0..7 {
                assert_eq!(t.get(row, c), d.get(row, c));
            }
            assert_eq!(t.best_in_row(row), d.best_in_row(row));
        }
        // Page table only: far below the dense 200*7*8 bytes.
        assert!(t.memory_bytes() < d.memory_bytes() / 10);
    }

    #[test]
    fn writes_materialize_only_the_touched_page() {
        let mut t = PagedQTable::new(200, 7, init_fn());
        t.set(70, 3, 0.25);
        assert_eq!(t.materialized_pages(), 1);
        assert_eq!(t.get(70, 3), 0.25);
        // Page-mates got init values; other pages stay virtual.
        let d = dense_twin(200, 7);
        assert_eq!(t.get(71, 2), d.get(71, 2));
        assert_eq!(t.get(0, 0), d.get(0, 0));
        assert_eq!(t.occupied_rows(), (64..128).collect::<Vec<u32>>());
        // The last, partial page materialises its true row count.
        t.set(199, 0, 9.0);
        assert_eq!(t.materialized_pages(), 2);
        assert_eq!(t.occupied_rows().len(), 64 + 8);
    }

    #[test]
    fn paged_tracks_dense_bit_for_bit_under_updates() {
        let mut paged = PagedQTable::new(130, 5, init_fn());
        let mut dense = dense_twin(130, 5);
        let mut x = 5u64;
        for step in 0..3_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let row = (x >> 33) as usize % 130;
            let col = (x >> 17) as usize % 5;
            let value = ((x >> 7) % 1000) as f64 / 8.0;
            paged.set(row, col, value);
            dense.set(row, col, value);
            assert_eq!(paged.get(row, col), dense.get(row, col));
            assert_eq!(
                paged.best_in_row(row),
                dense.best_in_row(row),
                "step {step}"
            );
            let probe = (x >> 40) as usize % 130;
            assert_eq!(
                paged.best_in_row(probe),
                dense.best_in_row(probe),
                "probe at step {step}"
            );
        }
        assert_eq!(paged.values(), dense.values());
    }

    #[test]
    fn sparse_checkpoint_round_trips_values_and_materialisation() {
        let mut t = PagedQTable::new(300, 4, init_fn());
        t.set(10, 1, 0.5);
        t.set(250, 3, 7.5);
        let rows = t.occupied_rows();
        let values = t.sparse_values(&rows);
        let mut back = PagedQTable::new(300, 4, init_fn());
        back.load_sparse_values(&rows, &values);
        assert_eq!(back.values(), t.values());
        assert_eq!(back.occupied_rows(), t.occupied_rows());
        assert_eq!(back.memory_bytes(), t.memory_bytes());
    }

    #[test]
    fn degenerate_shapes_are_safe() {
        let t = PagedQTable::new(0, 4, init_fn());
        assert!(t.is_empty());
        assert!(t.occupied_rows().is_empty());
        let z = PagedQTable::new(3, 0, init_fn());
        assert_eq!(z.best_in_row(1), (0, f64::INFINITY));
    }
}
