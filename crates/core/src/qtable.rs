//! The original Q-routing table (Boyan & Littman, 1993).
//!
//! One row per *destination router* in the system (`m = g·a` rows), one
//! column per non-host port (`k − p` columns). Each entry estimates the
//! delivery time from this router to the destination router when the packet
//! leaves through the corresponding port.
//!
//! This table is kept for two reasons: (a) the Q-routing baseline of
//! Section 2.3.2, and (b) the memory comparison against the two-level table
//! (the two-level table needs half the rows on a balanced Dragonfly).

use crate::table::QValueTable;
use dragonfly_topology::ids::RouterId;
use serde::{Deserialize, Serialize};

/// Destination-router-indexed Q-table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    rows: usize,
    columns: usize,
    values: Vec<f64>,
}

impl QTable {
    /// Create a table with every entry set to `initial`.
    pub fn new(num_routers: usize, fabric_ports: usize, initial: f64) -> Self {
        Self {
            rows: num_routers,
            columns: fabric_ports,
            values: vec![initial; num_routers * fabric_ports],
        }
    }

    /// Create a table whose entries are produced by `init(dest_router,
    /// column)` — used to seed theoretical congestion-free delivery times.
    pub fn from_fn(
        num_routers: usize,
        fabric_ports: usize,
        mut init: impl FnMut(RouterId, usize) -> f64,
    ) -> Self {
        let mut values = Vec::with_capacity(num_routers * fabric_ports);
        for r in 0..num_routers {
            for c in 0..fabric_ports {
                values.push(init(RouterId::from_index(r), c));
            }
        }
        Self {
            rows: num_routers,
            columns: fabric_ports,
            values,
        }
    }

    /// Row index of a destination router.
    #[inline]
    pub fn row(&self, dest: RouterId) -> usize {
        dest.index()
    }

    /// Convenience wrapper over [`QValueTable::get`] keyed by router.
    pub fn value(&self, dest: RouterId, column: usize) -> f64 {
        self.get(self.row(dest), column)
    }

    /// Convenience wrapper over [`QValueTable::best_in_row`] keyed by router.
    pub fn best_for(&self, dest: RouterId) -> (usize, f64) {
        self.best_in_row(self.row(dest))
    }
}

impl QValueTable for QTable {
    fn rows(&self) -> usize {
        self.rows
    }

    fn columns(&self) -> usize {
        self.columns
    }

    #[inline]
    fn get(&self, row: usize, column: usize) -> f64 {
        self.values[row * self.columns + column]
    }

    #[inline]
    fn set(&mut self, row: usize, column: usize, value: f64) {
        self.values[row * self.columns + column] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_1056() {
        // 264 routers, radix 15, 4 host ports -> 11 fabric ports.
        let t = QTable::new(264, 11, 100.0);
        assert_eq!(t.rows(), 264);
        assert_eq!(t.columns(), 11);
        assert_eq!(t.len(), 264 * 11);
        assert_eq!(t.memory_bytes(), 264 * 11 * 8);
        assert_eq!(t.get(0, 0), 100.0);
        assert_eq!(t.value(RouterId(263), 10), 100.0);
    }

    #[test]
    fn from_fn_seeds_per_destination_values() {
        let t = QTable::from_fn(4, 3, |r, c| (r.index() * 10 + c) as f64);
        assert_eq!(t.value(RouterId(2), 1), 21.0);
        assert_eq!(t.best_for(RouterId(3)), (0, 30.0));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = QTable::new(5, 4, 1.0);
        t.set(3, 2, 42.5);
        assert_eq!(t.get(3, 2), 42.5);
        assert_eq!(t.get(3, 1), 1.0);
        assert_eq!(t.best_in_row(3), (0, 1.0));
    }
}
