//! The original Q-routing table (Boyan & Littman, 1993).
//!
//! One row per *destination router* in the system (`m = g·a` rows), one
//! column per non-host port (`k − p` columns). Each entry estimates the
//! delivery time from this router to the destination router when the packet
//! leaves through the corresponding port.
//!
//! This table is kept for two reasons: (a) the Q-routing baseline of
//! Section 2.3.2, and (b) the memory comparison against the two-level table
//! (the two-level table needs half the rows on a balanced Dragonfly).

use crate::table::QValueTable;
use dragonfly_topology::ids::RouterId;
use serde::{Deserialize, Serialize};

/// Destination-router-indexed Q-table.
///
/// Carries the per-row argmin cache described in [`crate::table`]; the
/// cache is derived state (skipped by serde, ignored by equality) and is
/// rebuilt on the first `set` after deserialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QTable {
    rows: usize,
    columns: usize,
    values: Vec<f64>,
    /// Per-row lowest-index argmin column (see the trait-level contract).
    #[serde(skip)]
    argmin: Vec<u32>,
}

impl PartialEq for QTable {
    fn eq(&self, other: &Self) -> bool {
        // The argmin cache is derived state: equality is on the values.
        self.rows == other.rows && self.columns == other.columns && self.values == other.values
    }
}

/// Lowest column index achieving the minimum of one row (the default
/// [`QValueTable::best_in_row`] tie-break).
pub(crate) fn scan_row_argmin(values: &[f64], row: usize, columns: usize) -> u32 {
    let base = row * columns;
    let mut best_col = 0u32;
    let mut best_val = f64::INFINITY;
    for c in 0..columns {
        let v = values[base + c];
        if v < best_val {
            best_val = v;
            best_col = c as u32;
        }
    }
    best_col
}

/// Full argmin cache of a row-major value slab.
pub(crate) fn rebuild_argmin(values: &[f64], rows: usize, columns: usize) -> Vec<u32> {
    (0..rows)
        .map(|r| scan_row_argmin(values, r, columns))
        .collect()
}

/// Cache maintenance after writing `value` over `old` at `(row, column)`:
/// returns the new argmin column for the row. O(1) except when the cached
/// argmin cell itself is raised, which rescans the row.
pub(crate) fn maintain_argmin(
    values: &[f64],
    row: usize,
    columns: usize,
    column: usize,
    old: f64,
    value: f64,
    cached: u32,
) -> u32 {
    let cur = cached as usize;
    if column == cur {
        if value > old {
            return scan_row_argmin(values, row, columns);
        }
        return cached;
    }
    let cur_val = values[row * columns + cur];
    if value < cur_val || (value == cur_val && column < cur) {
        return column as u32;
    }
    cached
}

impl QTable {
    /// Create a table with every entry set to `initial`.
    pub fn new(num_routers: usize, fabric_ports: usize, initial: f64) -> Self {
        Self {
            rows: num_routers,
            columns: fabric_ports,
            values: vec![initial; num_routers * fabric_ports],
            argmin: vec![0; num_routers],
        }
    }

    /// Create a table whose entries are produced by `init(dest_router,
    /// column)` — used to seed theoretical congestion-free delivery times.
    pub fn from_fn(
        num_routers: usize,
        fabric_ports: usize,
        mut init: impl FnMut(RouterId, usize) -> f64,
    ) -> Self {
        let mut values = Vec::with_capacity(num_routers * fabric_ports);
        for r in 0..num_routers {
            for c in 0..fabric_ports {
                values.push(init(RouterId::from_index(r), c));
            }
        }
        let argmin = rebuild_argmin(&values, num_routers, fabric_ports);
        Self {
            rows: num_routers,
            columns: fabric_ports,
            values,
            argmin,
        }
    }

    /// Row index of a destination router.
    #[inline]
    pub fn row(&self, dest: RouterId) -> usize {
        dest.index()
    }

    /// Convenience wrapper over [`QValueTable::get`] keyed by router.
    pub fn value(&self, dest: RouterId, column: usize) -> f64 {
        self.get(self.row(dest), column)
    }

    /// Convenience wrapper over [`QValueTable::best_in_row`] keyed by router.
    pub fn best_for(&self, dest: RouterId) -> (usize, f64) {
        self.best_in_row(self.row(dest))
    }
}

impl QValueTable for QTable {
    fn rows(&self) -> usize {
        self.rows
    }

    fn columns(&self) -> usize {
        self.columns
    }

    #[inline]
    fn get(&self, row: usize, column: usize) -> f64 {
        self.values[row * self.columns + column]
    }

    #[inline]
    fn set(&mut self, row: usize, column: usize, value: f64) {
        let idx = row * self.columns + column;
        let old = self.values[idx];
        self.values[idx] = value;
        if self.argmin.len() != self.rows {
            // Deserialized legacy form: the skipped cache comes back empty.
            self.argmin = rebuild_argmin(&self.values, self.rows, self.columns);
            return;
        }
        self.argmin[row] = maintain_argmin(
            &self.values,
            row,
            self.columns,
            column,
            old,
            value,
            self.argmin[row],
        );
    }

    fn best_in_row(&self, row: usize) -> (usize, f64) {
        if self.columns == 0 {
            return (0, f64::INFINITY);
        }
        if self.argmin.len() == self.rows {
            let c = self.argmin[row] as usize;
            return (c, self.values[row * self.columns + c]);
        }
        let c = scan_row_argmin(&self.values, row, self.columns) as usize;
        (c, self.values[row * self.columns + c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_1056() {
        // 264 routers, radix 15, 4 host ports -> 11 fabric ports.
        let t = QTable::new(264, 11, 100.0);
        assert_eq!(t.rows(), 264);
        assert_eq!(t.columns(), 11);
        assert_eq!(t.len(), 264 * 11);
        assert_eq!(t.memory_bytes(), 264 * 11 * 8);
        assert_eq!(t.get(0, 0), 100.0);
        assert_eq!(t.value(RouterId(263), 10), 100.0);
    }

    #[test]
    fn from_fn_seeds_per_destination_values() {
        let t = QTable::from_fn(4, 3, |r, c| (r.index() * 10 + c) as f64);
        assert_eq!(t.value(RouterId(2), 1), 21.0);
        assert_eq!(t.best_for(RouterId(3)), (0, 30.0));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = QTable::new(5, 4, 1.0);
        t.set(3, 2, 42.5);
        assert_eq!(t.get(3, 2), 42.5);
        assert_eq!(t.get(3, 1), 1.0);
        assert_eq!(t.best_in_row(3), (0, 1.0));
    }

    /// The cached argmin must track every `set` pattern exactly like the
    /// reference full-column scan, including ties toward low columns.
    #[test]
    fn cached_argmin_matches_reference_scan_under_updates() {
        let mut t = QTable::from_fn(4, 5, |r, c| ((r.index() * 3 + c * 7) % 11) as f64);
        // A deterministic pseudo-random update sequence that exercises
        // lowering, raising the argmin cell, and exact ties.
        let mut x = 1u64;
        for step in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let row = (x >> 33) as usize % 4;
            let col = (x >> 17) as usize % 5;
            let value = ((x >> 5) % 12) as f64;
            t.set(row, col, value);
            let (cached_col, cached_val) = t.best_in_row(row);
            let mut want_col = 0;
            let mut want_val = f64::INFINITY;
            for c in 0..5 {
                let v = t.get(row, c);
                if v < want_val {
                    want_val = v;
                    want_col = c;
                }
            }
            assert_eq!(
                (cached_col, cached_val),
                (want_col, want_val),
                "step {step}"
            );
        }
    }

    #[test]
    fn raising_the_argmin_cell_rescans() {
        let mut t = QTable::new(1, 3, 5.0);
        t.set(0, 1, 2.0);
        assert_eq!(t.best_in_row(0), (1, 2.0));
        t.set(0, 1, 9.0); // argmin cell raised: the cache must rescan
        assert_eq!(t.best_in_row(0), (0, 5.0));
        t.set(0, 2, 5.0); // tie with column 0: lowest index wins
        assert_eq!(t.best_in_row(0), (0, 5.0));
        t.set(0, 2, 4.9);
        assert_eq!(t.best_in_row(0), (2, 4.9));
    }

    #[test]
    fn legacy_serialization_rebuilds_the_cache() {
        let mut t = QTable::from_fn(3, 2, |r, c| (10 - r.index() - c) as f64);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: QTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // The skipped cache deserializes empty; reads fall back to the
        // scan and the first write rebuilds it.
        assert_eq!(back.best_in_row(0), t.best_in_row(0));
        back.set(0, 0, 0.5);
        t.set(0, 0, 0.5);
        assert_eq!(back.best_in_row(0), t.best_in_row(0));
        assert_eq!(back.best_in_row(2), t.best_in_row(2));
    }
}
