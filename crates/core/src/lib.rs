//! # qadaptive-core
//!
//! The primary contribution of the paper: **Q-adaptive routing**, a fully
//! distributed multi-agent reinforcement-learning routing scheme for
//! Dragonfly networks (Kang, Wang, Lan — HPDC 2021).
//!
//! The crate provides the three components described in Section 4 of the
//! paper:
//!
//! 1. **The two-level Q-table** ([`two_level::TwoLevelQTable`]) — a
//!    `(g·p) × (k−p)` table indexed by *(destination group, source-node
//!    slot)* instead of the original Q-routing table's `m × (k−p)`
//!    destination-router indexing. For a balanced Dragonfly (`a = 2p`) this
//!    halves the memory footprint and mitigates the stale-value problem,
//!    because updates for any destination router of a group land in the
//!    same row.
//! 2. **Routing with the two-level Q-table** ([`agent::QAdaptiveAgent`]) —
//!    the decision flow chart of Figure 4: destination-group routers
//!    forward minimally; the source router and the first router visited in
//!    an intermediate group compare the minimal path against the best (or a
//!    random local) alternative using the relative value gap ΔV and the
//!    thresholds `q_thld1` / `q_thld2`, with ε-greedy exploration on top.
//! 3. **Q-value updates** ([`hysteretic`]) — hysteretic Q-learning
//!    (Equation 3) with a fast learning rate `α` for good news (the
//!    estimate shrinks) and a slow learning rate `β` for bad news, which
//!    keeps the multi-agent system stable without requiring optimistic
//!    initialisation.
//!
//! The original Q-routing table ([`qtable::QTable`]) is also implemented so
//! that the memory claim of the paper (Section 4) and the Q-routing
//! baseline (Section 2.3.2) can be reproduced.

pub mod agent;
pub mod hysteretic;
pub mod init;
pub mod paged;
pub mod params;
pub mod policy;
pub mod qtable;
pub mod table;
pub mod two_level;

pub use agent::{QAdaptiveAgent, QAdaptiveRouting};
pub use hysteretic::HystereticLearner;
pub use paged::PagedQTable;
pub use params::QAdaptiveParams;
pub use qtable::QTable;
pub use table::QValueTable;
pub use two_level::TwoLevelQTable;
