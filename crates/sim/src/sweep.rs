//! Load sweeps across several routing algorithms, executed in parallel.
//!
//! Each `(routing, load)` point is an independent simulation, so the sweep
//! is embarrassingly parallel: a crossbeam scope spawns one worker per CPU
//! (bounded by the number of jobs) and the workers pull jobs from a shared
//! queue.

use crate::builder::SimulationBuilder;
use dragonfly_engine::time::SimTime;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_routing::RoutingSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The result of a sweep: one report per `(routing, load)` point, in the
/// order the points were defined.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepResult {
    /// All reports, sorted by routing then by load.
    pub reports: Vec<SimulationReport>,
}

impl SweepResult {
    /// Reports for one routing label, sorted by offered load.
    pub fn for_routing(&self, label: &str) -> Vec<&SimulationReport> {
        let mut v: Vec<&SimulationReport> =
            self.reports.iter().filter(|r| r.routing == label).collect();
        v.sort_by(|a, b| a.offered_load.total_cmp(&b.offered_load));
        v
    }

    /// The saturation throughput (maximum observed throughput) of a routing
    /// label across the sweep.
    pub fn saturation_throughput(&self, label: &str) -> f64 {
        self.for_routing(label)
            .iter()
            .map(|r| r.throughput)
            .fold(0.0, f64::max)
    }

    /// CSV rendering of the whole sweep.
    pub fn to_csv(&self) -> String {
        let mut out = SimulationReport::csv_header();
        for r in &self.reports {
            out.push('\n');
            out.push_str(&r.csv_row());
        }
        out
    }
}

/// Run a batch of prepared simulations in parallel across `threads`
/// workers (0 = one per available CPU), preserving input order. This is the
/// shared execution engine behind [`LoadSweep::run_parallel`] and
/// [`crate::spec::SweepSpec::run_parallel`].
pub fn run_builders_parallel(
    builders: Vec<SimulationBuilder>,
    threads: usize,
) -> Vec<SimulationReport> {
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(builders.len().max(1));

    let jobs: Vec<(usize, SimulationBuilder)> = builders.into_iter().enumerate().collect();
    let next_job = Mutex::new(0usize);
    let results: Mutex<Vec<Option<SimulationReport>>> = Mutex::new(vec![None; jobs.len()]);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let job_index = {
                    let mut guard = next_job.lock();
                    let i = *guard;
                    if i >= jobs.len() {
                        break;
                    }
                    *guard += 1;
                    i
                };
                let (index, builder) = &jobs[job_index];
                let report = builder.clone().run();
                results.lock()[*index] = Some(report);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every job produces a report"))
        .collect()
}

/// A sweep definition: the cartesian product of routings and offered loads
/// under one traffic pattern.
///
/// This is the legacy single-traffic grid; the serialisable
/// [`crate::spec::SweepSpec`] subsumes it (multiple traffics, repeated
/// seeds, scenario files) and the two produce identical results for
/// identical definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSweep {
    /// Dragonfly configuration.
    pub topology: DragonflyConfig,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Routing algorithms to compare.
    pub routings: Vec<RoutingSpec>,
    /// Offered loads to evaluate.
    pub loads: Vec<f64>,
    /// Warmup time per point (ns).
    pub warmup_ns: SimTime,
    /// Measurement window per point (ns).
    pub measure_ns: SimTime,
    /// Base RNG seed (each point derives its own).
    pub seed: u64,
}

impl LoadSweep {
    /// A sweep with the paper's six-algorithm lineup.
    pub fn paper_lineup(
        topology: DragonflyConfig,
        traffic: TrafficSpec,
        loads: Vec<f64>,
        warmup_ns: SimTime,
        measure_ns: SimTime,
    ) -> Self {
        Self {
            topology,
            traffic,
            routings: RoutingSpec::paper_lineup(),
            loads,
            warmup_ns,
            measure_ns,
            seed: 1,
        }
    }

    /// Number of simulation points in the sweep.
    pub fn len(&self) -> usize {
        self.routings.len() * self.loads.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn builder_for(&self, routing: RoutingSpec, load: f64, index: usize) -> SimulationBuilder {
        SimulationBuilder::new(self.topology)
            .routing(routing)
            .traffic(self.traffic)
            .offered_load(load)
            .warmup_ns(self.warmup_ns)
            .measure_ns(self.measure_ns)
            .seed(self.seed.wrapping_add(index as u64 * 7919))
    }

    /// Run every point sequentially (useful for tests and debugging).
    pub fn run_sequential(&self) -> SweepResult {
        let mut reports = Vec::with_capacity(self.len());
        let mut index = 0;
        for routing in &self.routings {
            for &load in &self.loads {
                reports.push(self.builder_for(*routing, load, index).run());
                index += 1;
            }
        }
        SweepResult { reports }
    }

    /// Run every point in parallel across `threads` workers
    /// (0 = one per available CPU).
    pub fn run_parallel(&self, threads: usize) -> SweepResult {
        let builders: Vec<SimulationBuilder> = self
            .routings
            .iter()
            .flat_map(|r| self.loads.iter().map(move |l| (*r, *l)))
            .enumerate()
            .map(|(i, (r, l))| self.builder_for(r, l, i))
            .collect();
        SweepResult {
            reports: run_builders_parallel(builders, threads),
        }
    }
}

/// Every `LoadSweep` is expressible as a (single-traffic) [`SweepSpec`].
impl From<LoadSweep> for crate::spec::SweepSpec {
    fn from(sweep: LoadSweep) -> Self {
        crate::spec::SweepSpec {
            name: String::new(),
            topology: sweep.topology,
            traffics: vec![sweep.traffic],
            routings: sweep.routings,
            loads: sweep.loads,
            warmup_ns: sweep.warmup_ns,
            measure_ns: sweep.measure_ns,
            seed: Some(sweep.seed),
            seeds_per_point: None,
            engine: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> LoadSweep {
        LoadSweep {
            topology: DragonflyConfig::tiny(),
            traffic: TrafficSpec::UniformRandom,
            routings: vec![RoutingSpec::Minimal, RoutingSpec::UgalG],
            loads: vec![0.1, 0.3],
            warmup_ns: 5_000,
            measure_ns: 10_000,
            seed: 2,
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sweep = tiny_sweep();
        assert_eq!(sweep.len(), 4);
        let seq = sweep.run_sequential();
        let par = sweep.run_parallel(2);
        assert_eq!(seq.reports.len(), 4);
        assert_eq!(par.reports.len(), 4);
        for (a, b) in seq.reports.iter().zip(par.reports.iter()) {
            assert_eq!(a.routing, b.routing);
            assert_eq!(a.offered_load, b.offered_load);
            assert_eq!(a.packets_delivered, b.packets_delivered);
            assert_eq!(a.mean_latency_us, b.mean_latency_us);
        }
    }

    #[test]
    fn result_queries_group_by_routing() {
        let result = tiny_sweep().run_parallel(0);
        let min_points = result.for_routing("MIN");
        assert_eq!(min_points.len(), 2);
        assert!(min_points[0].offered_load < min_points[1].offered_load);
        assert!(result.saturation_throughput("MIN") > 0.0);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 5);
    }
}
