//! Load sweeps across several routing algorithms, executed in parallel.
//!
//! Each `(routing, load)` point is an independent simulation, so the sweep
//! is embarrassingly parallel: a crossbeam scope spawns one worker per CPU
//! (bounded by the number of jobs) and the workers pull jobs from a shared
//! queue.

use crate::builder::SimulationBuilder;
use dragonfly_engine::time::SimTime;
use dragonfly_metrics::report::{AggregatedReport, SimulationReport};
use dragonfly_routing::RoutingSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The result of a sweep: one report per `(routing, load)` point, in the
/// order the points were defined.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepResult {
    /// All reports, sorted by routing then by load.
    pub reports: Vec<SimulationReport>,
}

impl SweepResult {
    /// Reports for one routing label, sorted by offered load.
    pub fn for_routing(&self, label: &str) -> Vec<&SimulationReport> {
        let mut v: Vec<&SimulationReport> =
            self.reports.iter().filter(|r| r.routing == label).collect();
        v.sort_by(|a, b| a.offered_load.total_cmp(&b.offered_load));
        v
    }

    /// The saturation throughput (maximum observed throughput) of a routing
    /// label across the sweep.
    pub fn saturation_throughput(&self, label: &str) -> f64 {
        self.for_routing(label)
            .iter()
            .map(|r| r.throughput)
            .fold(0.0, f64::max)
    }

    /// CSV rendering of the whole sweep.
    pub fn to_csv(&self) -> String {
        let mut out = SimulationReport::csv_header();
        for r in &self.reports {
            out.push('\n');
            out.push_str(&r.csv_row());
        }
        out
    }

    /// Aggregate repetitions of the same `(routing, traffic, load)` point
    /// into mean/standard-error rows, in first-appearance order. With one
    /// seed per point this is one row per report with zero standard errors.
    pub fn aggregated(&self) -> Vec<AggregatedReport> {
        /// The identity of one sweep point (load compared bitwise).
        type PointKey<'a> = (&'a str, &'a str, u64);
        let mut groups: Vec<(Vec<&SimulationReport>, PointKey<'_>)> = Vec::new();
        for report in &self.reports {
            let key: PointKey<'_> = (
                report.routing.as_str(),
                report.traffic.as_str(),
                report.offered_load.to_bits(),
            );
            match groups.iter_mut().find(|(_, k)| *k == key) {
                Some((members, _)) => members.push(report),
                None => groups.push((vec![report], key)),
            }
        }
        groups
            .iter()
            .map(|(members, _)| AggregatedReport::from_group(members))
            .collect()
    }

    /// Whether any point has more than one repetition (i.e. aggregation
    /// adds information beyond the raw rows). Cheap duplicate-key scan —
    /// no aggregation statistics are computed.
    pub fn has_repetitions(&self) -> bool {
        let mut seen: Vec<(&str, &str, u64)> = Vec::with_capacity(self.reports.len());
        self.reports.iter().any(|r| {
            let key = (
                r.routing.as_str(),
                r.traffic.as_str(),
                r.offered_load.to_bits(),
            );
            if seen.contains(&key) {
                true
            } else {
                seen.push(key);
                false
            }
        })
    }

    /// CSV rendering of the aggregated rows.
    pub fn to_csv_aggregated(&self) -> String {
        let mut out = AggregatedReport::csv_header();
        for row in self.aggregated() {
            out.push('\n');
            out.push_str(&row.csv_row());
        }
        out
    }

    /// Both views of the sweep as one serialisable value (used by the CLI's
    /// JSON output so consumers get raw and aggregated rows together).
    pub fn with_aggregates(&self) -> SweepOutput {
        SweepOutput {
            raw: self.reports.clone(),
            aggregated: self.aggregated(),
        }
    }
}

/// Raw per-repetition reports plus their per-point aggregation — the full
/// output of a sweep run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepOutput {
    /// One report per simulation run (repetitions listed individually).
    pub raw: Vec<SimulationReport>,
    /// One mean/std-error row per `(routing, traffic, load)` point.
    pub aggregated: Vec<AggregatedReport>,
}

/// Run a batch of prepared simulations in parallel across `threads`
/// workers (0 = one per available CPU), preserving input order. This is the
/// shared execution engine behind [`LoadSweep::run_parallel`] and
/// [`crate::spec::SweepSpec::run_parallel`].
pub fn run_builders_parallel(
    builders: Vec<SimulationBuilder>,
    threads: usize,
) -> Vec<SimulationReport> {
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(builders.len().max(1));

    let jobs: Vec<(usize, SimulationBuilder)> = builders.into_iter().enumerate().collect();
    let next_job = Mutex::new(0usize);
    let results: Mutex<Vec<Option<SimulationReport>>> = Mutex::new(vec![None; jobs.len()]);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let job_index = {
                    let mut guard = next_job.lock();
                    let i = *guard;
                    if i >= jobs.len() {
                        break;
                    }
                    *guard += 1;
                    i
                };
                let (index, builder) = &jobs[job_index];
                let report = builder.clone().run();
                results.lock()[*index] = Some(report);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every job produces a report"))
        .collect()
}

/// A sweep definition: the cartesian product of routings and offered loads
/// under one traffic pattern.
///
/// This is the legacy single-traffic grid; the serialisable
/// [`crate::spec::SweepSpec`] subsumes it (multiple traffics, repeated
/// seeds, scenario files) and the two produce identical results for
/// identical definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSweep {
    /// Dragonfly configuration.
    pub topology: DragonflyConfig,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Routing algorithms to compare.
    pub routings: Vec<RoutingSpec>,
    /// Offered loads to evaluate.
    pub loads: Vec<f64>,
    /// Warmup time per point (ns).
    pub warmup_ns: SimTime,
    /// Measurement window per point (ns).
    pub measure_ns: SimTime,
    /// Base RNG seed (each point derives its own).
    pub seed: u64,
}

impl LoadSweep {
    /// A sweep with the paper's six-algorithm lineup.
    pub fn paper_lineup(
        topology: DragonflyConfig,
        traffic: TrafficSpec,
        loads: Vec<f64>,
        warmup_ns: SimTime,
        measure_ns: SimTime,
    ) -> Self {
        Self {
            topology,
            traffic,
            routings: RoutingSpec::paper_lineup(),
            loads,
            warmup_ns,
            measure_ns,
            seed: 1,
        }
    }

    /// Number of simulation points in the sweep.
    pub fn len(&self) -> usize {
        self.routings.len() * self.loads.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn builder_for(&self, routing: RoutingSpec, load: f64, index: usize) -> SimulationBuilder {
        SimulationBuilder::new(self.topology)
            .routing(routing)
            .traffic(self.traffic)
            .offered_load(load)
            .warmup_ns(self.warmup_ns)
            .measure_ns(self.measure_ns)
            .seed(self.seed.wrapping_add(index as u64 * 7919))
    }

    /// Run every point sequentially (useful for tests and debugging).
    pub fn run_sequential(&self) -> SweepResult {
        let mut reports = Vec::with_capacity(self.len());
        let mut index = 0;
        for routing in &self.routings {
            for &load in &self.loads {
                reports.push(self.builder_for(*routing, load, index).run());
                index += 1;
            }
        }
        SweepResult { reports }
    }

    /// Run every point in parallel across `threads` workers
    /// (0 = one per available CPU).
    pub fn run_parallel(&self, threads: usize) -> SweepResult {
        let builders: Vec<SimulationBuilder> = self
            .routings
            .iter()
            .flat_map(|r| self.loads.iter().map(move |l| (*r, *l)))
            .enumerate()
            .map(|(i, (r, l))| self.builder_for(r, l, i))
            .collect();
        SweepResult {
            reports: run_builders_parallel(builders, threads),
        }
    }
}

/// Every `LoadSweep` is expressible as a (single-traffic) [`SweepSpec`].
impl From<LoadSweep> for crate::spec::SweepSpec {
    fn from(sweep: LoadSweep) -> Self {
        crate::spec::SweepSpec {
            name: String::new(),
            topology: sweep.topology.into(),
            traffics: vec![sweep.traffic],
            workload: None,
            routings: sweep.routings,
            loads: sweep.loads,
            warmup_ns: sweep.warmup_ns,
            measure_ns: sweep.measure_ns,
            seed: Some(sweep.seed),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> LoadSweep {
        LoadSweep {
            topology: DragonflyConfig::tiny(),
            traffic: TrafficSpec::UniformRandom,
            routings: vec![RoutingSpec::Minimal, RoutingSpec::UgalG],
            loads: vec![0.1, 0.3],
            warmup_ns: 5_000,
            measure_ns: 10_000,
            seed: 2,
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sweep = tiny_sweep();
        assert_eq!(sweep.len(), 4);
        let seq = sweep.run_sequential();
        let par = sweep.run_parallel(2);
        assert_eq!(seq.reports.len(), 4);
        assert_eq!(par.reports.len(), 4);
        for (a, b) in seq.reports.iter().zip(par.reports.iter()) {
            assert_eq!(a.routing, b.routing);
            assert_eq!(a.offered_load, b.offered_load);
            assert_eq!(a.packets_delivered, b.packets_delivered);
            assert_eq!(a.mean_latency_us, b.mean_latency_us);
        }
    }

    #[test]
    fn aggregation_collapses_repeated_seeds() {
        let mut spec: crate::spec::SweepSpec = tiny_sweep().into();
        spec.seeds_per_point = Some(3);
        let result = spec.run_parallel(0);
        assert_eq!(result.reports.len(), 12, "3 repetitions of 4 points");
        assert!(result.has_repetitions());
        let agg = result.aggregated();
        assert_eq!(agg.len(), 4, "one aggregated row per (routing, load)");
        for row in &agg {
            assert_eq!(row.runs, 3);
            assert!(row.throughput.mean > 0.0);
        }
        // Aggregated means equal the hand-computed group means.
        let min_01: Vec<&SimulationReport> = result
            .reports
            .iter()
            .filter(|r| r.routing == "MIN" && r.offered_load == 0.1)
            .collect();
        assert_eq!(min_01.len(), 3);
        let expect = min_01.iter().map(|r| r.throughput).sum::<f64>() / 3.0;
        let row = agg
            .iter()
            .find(|a| a.routing == "MIN" && a.offered_load == 0.1)
            .unwrap();
        assert!((row.throughput.mean - expect).abs() < 1e-12);
        // Both views travel together in the serialisable output.
        let output = result.with_aggregates();
        assert_eq!(output.raw.len(), 12);
        assert_eq!(output.aggregated.len(), 4);
        let csv = result.to_csv_aggregated();
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn single_seed_sweeps_have_no_repetitions() {
        let result = tiny_sweep().run_parallel(0);
        assert!(!result.has_repetitions());
        assert_eq!(result.aggregated().len(), result.reports.len());
        assert!(result.aggregated().iter().all(|a| a.throughput.se == 0.0));
    }

    #[test]
    fn result_queries_group_by_routing() {
        let result = tiny_sweep().run_parallel(0);
        let min_points = result.for_routing("MIN");
        assert_eq!(min_points.len(), 2);
        assert!(min_points[0].offered_load < min_points[1].offered_load);
        assert!(result.saturation_throughput("MIN") > 0.0);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 5);
    }
}
