//! # dragonfly-sim
//!
//! The experiment harness: glues the topology, the flit-level engine, the
//! routing algorithms, the traffic patterns and the metric collectors into
//! runnable experiments.
//!
//! * [`injector::PatternInjector`] — converts a traffic pattern plus an
//!   offered-load schedule into the time-ordered injection stream the
//!   engine consumes (deterministic inter-arrival interval per node, with a
//!   random per-node phase).
//! * [`collector::MetricsCollector`] — a [`dragonfly_engine::SimObserver`]
//!   that applies the paper's measurement methodology: ignore a warmup
//!   period, then collect latency/hop/throughput statistics over the
//!   measurement window (the paper averages over 100 µs after the system
//!   stabilises) and optionally a binned time series.
//! * [`builder::SimulationBuilder`] — one-stop construction and execution
//!   of a single simulation point, returning a
//!   [`dragonfly_metrics::SimulationReport`].
//! * [`fault`] — serialisable fault injection (`[[faults]]` scenario
//!   sections): link/router kill+restore events and seeded random
//!   global-link loss, compiled into the engine's deterministic
//!   [`dragonfly_engine::fault::FaultSchedule`].
//! * [`spec`] — **the serialisable experiment API**:
//!   [`spec::ExperimentSpec`] (one run, loadable from TOML/JSON scenario
//!   files) and [`spec::SweepSpec`] (cartesian grids of runs). Every
//!   figure/table of the paper and every scenario file in `scenarios/` is
//!   expressed as one of these two values.
//! * [`sweep`] — load sweeps across several routing algorithms, executed in
//!   parallel with crossbeam scoped threads (each point is an independent
//!   simulation).
//! * [`convergence`] — helpers for the convergence and dynamic-load studies
//!   (Figures 7 and 8).

pub mod builder;
pub mod checkpoint;
pub mod collector;
pub mod convergence;
pub mod fault;
pub mod injector;
pub mod spec;
pub mod sweep;

pub use builder::SimulationBuilder;
pub use checkpoint::RunCheckpoint;
pub use collector::MetricsCollector;
pub use fault::{compile_faults, FaultSpecEntry};
pub use injector::PatternInjector;
pub use spec::{ExperimentSpec, SweepSpec};
pub use sweep::{LoadSweep, SweepResult};
