//! Serializable experiment descriptions — the single source of truth for
//! *every* experiment this repository can run.
//!
//! * [`ExperimentSpec`] — one simulation point: topology, routing, traffic,
//!   load (constant or scheduled), measurement windows, seed, optional
//!   engine (hardware) overrides and time-series collection. Loadable from
//!   TOML or JSON scenario files, convertible to/from
//!   [`SimulationBuilder`], runnable directly.
//! * [`SweepSpec`] — a cartesian grid (traffics × routings × loads ×
//!   seeds-per-point) of experiment points, subsuming the older
//!   [`LoadSweep`](crate::sweep::LoadSweep). The per-point seed derivation
//!   matches `LoadSweep` exactly, so spec-driven runs reproduce legacy runs
//!   bit for bit.
//!
//! ```
//! use dragonfly_sim::spec::ExperimentSpec;
//!
//! let spec: ExperimentSpec = toml::from_str(r#"
//!     name = "quick look"
//!     load = 0.2
//!     warmup_ns = 10000
//!     measure_ns = 10000
//!     routing = "UgalG"
//!     traffic = { Adversarial = { shift = 1 } }
//!
//!     [topology]
//!     p = 2
//!     a = 4
//!     h = 2
//! "#).unwrap();
//! let report = spec.run();
//! assert!(report.packets_delivered > 0);
//! ```

use crate::builder::SimulationBuilder;
use crate::checkpoint::RunCheckpoint;
use crate::fault::FaultSpecEntry;
use crate::sweep::{run_builders_parallel, SweepResult};
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::time::SimTime;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_metrics::timeseries::TimeSeries;
use dragonfly_routing::RoutingSpec;
use dragonfly_topology::{Topology, TopologySpec};
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use dragonfly_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Error produced when loading or validating a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<serde::Error> for SpecError {
    fn from(e: serde::Error) -> Self {
        SpecError(e.to_string())
    }
}

/// The default base seed used when a spec omits `seed`.
pub const DEFAULT_SEED: u64 = 1;

/// Measurement-statistics configuration (a scenario file's `[metrics]`
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSpec {
    /// How latency statistics are stored (see [`MetricsMode`]).
    #[serde(default)]
    pub mode: MetricsMode,
}

/// Latency-statistics storage mode.
///
/// `Exact` keeps every sample (exact quantiles, memory grows with the
/// packet count); `Streaming` folds samples into a fixed-size log-binned
/// sketch (quantiles within one ≈1.6 % bucket, bounded memory — the mode
/// the 100k-node scale runs use). Counting metrics, means and extremes
/// are identical in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MetricsMode {
    /// Keep every latency sample (the default; exact quantiles).
    #[default]
    Exact,
    /// Fold samples into the bounded-memory log-binned sketch.
    Streaming,
}

/// A complete, serialisable description of one simulation run.
///
/// Optional fields and their defaults:
///
/// | field | default |
/// |---|---|
/// | `name` | `""` |
/// | `routing` | `"Minimal"` |
/// | `traffic` | `"UniformRandom"` |
/// | `load` / `schedule` | exactly one must be present |
/// | `tail_ns` | `0` |
/// | `seed` | `1` |
/// | `series_bin_ns` | none (no time series) |
/// | `engine` | paper hardware parameters |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Human-readable experiment name (free-form, used in output headers).
    #[serde(default)]
    pub name: String,
    /// Topology configuration (tagged: dragonfly / fattree / hyperx;
    /// a legacy bare `[topology]` table with p/a/h still reads as a
    /// Dragonfly).
    pub topology: TopologySpec,
    /// Routing algorithm.
    #[serde(default)]
    pub routing: RoutingSpec,
    /// Traffic pattern.
    #[serde(default)]
    pub traffic: TrafficSpec,
    /// Closed-loop application workload. When present the open-loop
    /// injector is replaced by per-node task programs (collectives,
    /// halo exchanges, …) and `load` acts as a message-count intensity
    /// multiplier (default 1.0). Mutually exclusive with `schedule`.
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Constant offered load in `[0, 1]` — shorthand for a single-segment
    /// schedule. Mutually exclusive with `schedule`. With a `workload`
    /// this becomes the optional intensity multiplier instead.
    #[serde(default)]
    pub load: Option<f64>,
    /// Piecewise-constant offered-load schedule (dynamic-load studies).
    /// Mutually exclusive with `load`.
    #[serde(default)]
    pub schedule: Option<LoadSchedule>,
    /// Warmup time excluded from measurement (ns).
    pub warmup_ns: SimTime,
    /// Measurement-window length (ns).
    pub measure_ns: SimTime,
    /// Unmeasured tail after the window (keeps the window unbiased by an
    /// emptying network).
    #[serde(default)]
    pub tail_ns: SimTime,
    /// Base RNG seed (default 1).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Record a whole-run time series with this bin width (ns).
    #[serde(default)]
    pub series_bin_ns: Option<u64>,
    /// Hardware overrides (link latencies, buffers, packet size). The
    /// number of virtual channels is still forced to the routing
    /// algorithm's requirement.
    #[serde(default)]
    pub engine: Option<EngineConfig>,
    /// Fault-injection events (`[[faults]]` sections): link/router kills
    /// and restores, or seeded random global-link loss. Empty = fault-free.
    #[serde(default)]
    pub faults: Vec<FaultSpecEntry>,
    /// Measurement-statistics mode (`[metrics]`): exact sample storage
    /// (default) or bounded-memory streaming sketches for scale runs.
    /// Optional with a `None` default, so scenario files and checkpoint
    /// spec embeddings that predate the field still parse (TOML output
    /// omits the table entirely when unset).
    #[serde(default)]
    pub metrics: Option<MetricsSpec>,
}

impl ExperimentSpec {
    /// A spec with the same defaults as [`SimulationBuilder::new`]:
    /// minimal routing, uniform-random traffic at 10 % load, 20 µs warmup,
    /// 100 µs measurement.
    pub fn new(topology: impl Into<TopologySpec>) -> Self {
        Self {
            name: String::new(),
            topology: topology.into(),
            routing: RoutingSpec::default(),
            traffic: TrafficSpec::default(),
            workload: None,
            load: Some(0.1),
            schedule: None,
            warmup_ns: 20_000,
            measure_ns: 100_000,
            tail_ns: 0,
            seed: None,
            series_bin_ns: None,
            engine: None,
            faults: Vec::new(),
            metrics: None,
        }
    }

    /// The effective offered-load schedule.
    pub fn effective_schedule(&self) -> LoadSchedule {
        match (&self.schedule, self.load) {
            (Some(schedule), _) => schedule.clone(),
            (None, Some(load)) => LoadSchedule::constant(load),
            (None, None) => LoadSchedule::constant(0.1),
        }
    }

    /// The effective base seed.
    pub fn effective_seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// The effective closed-loop intensity multiplier (only meaningful
    /// when `workload` is set): `load` when given, else 1.0.
    pub fn effective_intensity(&self) -> f64 {
        self.load.unwrap_or(1.0)
    }

    /// Total simulated time of the run.
    pub fn total_ns(&self) -> SimTime {
        self.warmup_ns + self.measure_ns + self.tail_ns
    }

    /// Check the spec for structural problems (bad topology, out-of-range
    /// loads, contradictory fields, empty windows).
    pub fn validate(&self) -> Result<(), SpecError> {
        self.topology
            .validate()
            .map_err(|e| SpecError(format!("topology: {e}")))?;
        if self.load.is_some() && self.schedule.is_some() {
            return Err(SpecError(
                "specify either `load` or `schedule`, not both".to_string(),
            ));
        }
        if let Some(workload) = &self.workload {
            if self.schedule.is_some() {
                return Err(SpecError(
                    "a closed-loop `workload` paces itself; `schedule` is open-loop only \
                     (use `load` as an intensity multiplier instead)"
                        .to_string(),
                ));
            }
            if let Some(load) = self.load {
                if load <= 0.0 || !load.is_finite() {
                    return Err(SpecError(format!(
                        "workload intensity (`load`) must be a positive number, got {load}"
                    )));
                }
            }
            workload
                .validate(&self.topology.build())
                .map_err(|e| SpecError(format!("workload: {e}")))?;
        } else {
            if self.load.is_none() && self.schedule.is_none() {
                return Err(SpecError(
                    "an experiment needs a `load`, a `schedule` or a `workload`".to_string(),
                ));
            }
            if let Some(load) = self.load {
                if !(0.0..=1.0).contains(&load) {
                    return Err(SpecError(format!("load {load} must be in [0, 1]")));
                }
            }
        }
        if let Some(schedule) = &self.schedule {
            schedule.validate().map_err(SpecError)?;
        }
        if self.measure_ns == 0 {
            return Err(SpecError("measure_ns must be positive".to_string()));
        }
        if let Some(bin) = self.series_bin_ns {
            if bin == 0 {
                return Err(SpecError("series_bin_ns must be positive".to_string()));
            }
        }
        validate_traffic(&self.traffic, &self.topology)?;
        if !self.faults.is_empty() {
            // Compiling checks both the entry structure and the targets
            // (router/port existence) against the concrete topology.
            crate::fault::compile_faults(&self.faults, &self.topology.build())?;
        }
        if let Some(params) = self.qadaptive_params() {
            params.validate().map_err(SpecError)?;
        }
        Ok(())
    }

    fn qadaptive_params(&self) -> Option<qadaptive_core::QAdaptiveParams> {
        match self.routing {
            RoutingSpec::QAdaptive(params) => Some(params),
            _ => None,
        }
    }

    /// Convert to a [`SimulationBuilder`] (the reverse of
    /// [`SimulationBuilder::to_spec`]).
    pub fn to_builder(&self) -> SimulationBuilder {
        // Closed-loop runs reuse the schedule slot to carry the intensity
        // multiplier (its peak load) down to the builder.
        let schedule = if self.workload.is_some() {
            LoadSchedule::constant(self.effective_intensity().min(1.0))
        } else {
            self.effective_schedule()
        };
        let mut builder = SimulationBuilder::new(self.topology)
            .routing(self.routing)
            .traffic(self.traffic)
            .schedule(schedule)
            .warmup_ns(self.warmup_ns)
            .measure_ns(self.measure_ns)
            .tail_ns(self.tail_ns)
            .seed(self.effective_seed());
        if let Some(workload) = &self.workload {
            builder = builder.workload_at(workload.clone(), self.effective_intensity());
        }
        if let Some(bin) = self.series_bin_ns {
            builder = builder.series_bin_ns(bin);
        }
        if let Some(engine) = self.engine {
            builder = builder.engine_config(engine);
        }
        if !self.faults.is_empty() {
            builder = builder.faults(self.faults.clone());
        }
        if let Some(metrics) = self.metrics {
            builder = builder.streaming_metrics(metrics.mode == MetricsMode::Streaming);
        }
        builder
    }

    /// Run, returning the measurement report.
    pub fn run(&self) -> SimulationReport {
        self.to_builder().run()
    }

    /// Run with a whole-run time series (a default 10 µs bin width is used
    /// when `series_bin_ns` is unset).
    pub fn run_with_series(&self) -> (SimulationReport, TimeSeries) {
        self.to_builder().run_with_series()
    }

    /// Run with checkpoint/resume support (the CLI's `--checkpoint-every`
    /// / `--resume-from`): verifies a given `resume` checkpoint belongs to
    /// this spec, restores it, and hands a fresh [`RunCheckpoint`] to
    /// `sink` every `checkpoint_every_ns` of simulated time. Works under
    /// any engine configuration — snapshots are partition-independent, so
    /// the checkpointing and resuming runs may use different shard counts
    /// and pipeline settings.
    pub fn run_checkpointed(
        &self,
        resume: Option<&RunCheckpoint>,
        checkpoint_every_ns: Option<SimTime>,
        mut sink: impl FnMut(RunCheckpoint),
    ) -> Result<SimulationReport, SpecError> {
        if let Some(ck) = resume {
            ck.check_spec_matches(self)?;
        }
        self.to_builder()
            .run_resumable(
                resume.map(|ck| (&ck.engine, &ck.collector)),
                checkpoint_every_ns,
                |engine, collector| {
                    sink(RunCheckpoint::new(
                        self.clone(),
                        engine.clone(),
                        collector.clone(),
                    ));
                },
            )
            .map_err(SpecError)
    }

    /// A one-line description used in output headers.
    pub fn label(&self) -> String {
        let base = format!(
            "{} over {} on {} @ {}",
            self.routing.label(),
            match &self.workload {
                Some(w) => w.label(),
                None => self.traffic.label(),
            },
            self.topology,
            match (&self.workload, &self.schedule, self.load) {
                (Some(_), _, _) => format!("intensity {:.2}", self.effective_intensity()),
                (None, Some(s), _) => format!("peak load {:.2}", s.peak_load()),
                (None, None, Some(l)) => format!("load {l:.2}"),
                (None, None, None) => "load 0.10".to_string(),
            }
        );
        if self.name.is_empty() {
            base
        } else {
            format!("{} ({base})", self.name)
        }
    }

    // -- serialisation front-ends -------------------------------------------

    /// Parse from TOML text and validate.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let spec: Self = toml::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Parse from JSON text and validate.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: Self = serde_json::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Load from a `.toml` or `.json` file (dispatching on the extension).
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let (text, is_json) = read_spec_file(path.as_ref())?;
        if is_json {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        }
    }

    /// Render as a TOML scenario file.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("experiment specs are always maps")
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialisation is infallible")
    }
}

impl From<ExperimentSpec> for SimulationBuilder {
    fn from(spec: ExperimentSpec) -> Self {
        spec.to_builder()
    }
}

/// A cartesian experiment grid: every traffic × routing × load × seed
/// combination becomes one [`ExperimentSpec`] point.
///
/// The legacy [`LoadSweep`](crate::sweep::LoadSweep) is the special case of
/// one traffic pattern and one seed per point; [`SweepSpec::points`]
/// derives per-point seeds exactly the way `LoadSweep` does, so results are
/// identical for identical definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name.
    #[serde(default)]
    pub name: String,
    /// Topology configuration shared by all points.
    pub topology: TopologySpec,
    /// Traffic patterns (empty → uniform random only).
    #[serde(default)]
    pub traffics: Vec<TrafficSpec>,
    /// Closed-loop workload shared by all points. When present every
    /// point runs this workload and `loads` become intensity multipliers
    /// (load-vs-job-completion-time curves).
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Routing algorithms (empty → the paper's six-algorithm lineup).
    #[serde(default)]
    pub routings: Vec<RoutingSpec>,
    /// Offered loads to evaluate.
    pub loads: Vec<f64>,
    /// Warmup time per point (ns).
    pub warmup_ns: SimTime,
    /// Measurement window per point (ns).
    pub measure_ns: SimTime,
    /// Base RNG seed (default 1); each point derives its own.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Independent repetitions per point with distinct seeds (default 1).
    #[serde(default)]
    pub seeds_per_point: Option<usize>,
    /// Hardware overrides shared by all points.
    #[serde(default)]
    pub engine: Option<EngineConfig>,
    /// Record a whole-run time series with this bin width (ns) at every
    /// point. Required for a meaningful `recovery_time_us` on faulted
    /// sweeps; unset = no series (the pre-existing default).
    #[serde(default)]
    pub series_bin_ns: Option<u64>,
    /// Fault-injection events shared by all points (resilience sweeps).
    #[serde(default)]
    pub faults: Vec<FaultSpecEntry>,
    /// Measurement-statistics mode shared by all points (see
    /// [`ExperimentSpec::metrics`]); optional so pre-existing sweep files
    /// still parse.
    #[serde(default)]
    pub metrics: Option<MetricsSpec>,
}

/// Seed stride between consecutive points (matches `LoadSweep`).
const POINT_SEED_STRIDE: u64 = 7919;
/// Seed stride between repetitions of the same point.
const REPEAT_SEED_STRIDE: u64 = 15_485_863;

impl SweepSpec {
    /// A sweep with the paper's six-algorithm lineup under one pattern.
    pub fn paper_lineup(
        topology: impl Into<TopologySpec>,
        traffic: TrafficSpec,
        loads: Vec<f64>,
        warmup_ns: SimTime,
        measure_ns: SimTime,
    ) -> Self {
        Self {
            name: String::new(),
            topology: topology.into(),
            traffics: vec![traffic],
            workload: None,
            routings: RoutingSpec::paper_lineup(),
            loads,
            warmup_ns,
            measure_ns,
            seed: None,
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        }
    }

    /// The effective traffic list.
    pub fn effective_traffics(&self) -> Vec<TrafficSpec> {
        if self.traffics.is_empty() {
            vec![TrafficSpec::default()]
        } else {
            self.traffics.clone()
        }
    }

    /// The effective routing list.
    pub fn effective_routings(&self) -> Vec<RoutingSpec> {
        if self.routings.is_empty() {
            RoutingSpec::paper_lineup()
        } else {
            self.routings.clone()
        }
    }

    /// The effective repetition count.
    pub fn effective_seeds_per_point(&self) -> usize {
        self.seeds_per_point.unwrap_or(1).max(1)
    }

    /// Number of simulation points in the grid.
    pub fn len(&self) -> usize {
        self.effective_traffics().len()
            * self.effective_routings().len()
            * self.loads.len()
            * self.effective_seeds_per_point()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check the grid for structural problems.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.topology
            .validate()
            .map_err(|e| SpecError(format!("topology: {e}")))?;
        if self.loads.is_empty() {
            return Err(SpecError("a sweep needs at least one load".to_string()));
        }
        for load in &self.loads {
            if self.workload.is_some() {
                if *load <= 0.0 || !load.is_finite() {
                    return Err(SpecError(format!(
                        "workload intensity (`loads` entry) must be a positive number, got {load}"
                    )));
                }
            } else if !(0.0..=1.0).contains(load) {
                return Err(SpecError(format!("load {load} must be in [0, 1]")));
            }
        }
        if let Some(workload) = &self.workload {
            workload
                .validate(&self.topology.build())
                .map_err(|e| SpecError(format!("workload: {e}")))?;
        }
        if self.measure_ns == 0 {
            return Err(SpecError("measure_ns must be positive".to_string()));
        }
        for traffic in self.effective_traffics() {
            validate_traffic(&traffic, &self.topology)?;
        }
        if let Some(bin) = self.series_bin_ns {
            if bin == 0 {
                return Err(SpecError("series_bin_ns must be positive".to_string()));
            }
        }
        if !self.faults.is_empty() {
            crate::fault::compile_faults(&self.faults, &self.topology.build())?;
        }
        Ok(())
    }

    /// Expand the grid into concrete experiment points.
    ///
    /// Point order is: traffic-major, then routing, then load, then
    /// repetition — and within one traffic block the `(routing, load)`
    /// enumeration and seed derivation are identical to
    /// [`LoadSweep`](crate::sweep::LoadSweep), which is what makes legacy
    /// and spec-driven runs bit-for-bit comparable.
    pub fn points(&self) -> Vec<ExperimentSpec> {
        let base_seed = self.seed.unwrap_or(DEFAULT_SEED);
        let repeats = self.effective_seeds_per_point();
        let mut points = Vec::with_capacity(self.len());
        for traffic in self.effective_traffics() {
            let mut index: u64 = 0;
            for routing in self.effective_routings() {
                for &load in &self.loads {
                    for repeat in 0..repeats {
                        points.push(ExperimentSpec {
                            name: self.name.clone(),
                            topology: self.topology,
                            routing,
                            traffic,
                            workload: self.workload.clone(),
                            load: Some(load),
                            schedule: None,
                            warmup_ns: self.warmup_ns,
                            measure_ns: self.measure_ns,
                            tail_ns: 0,
                            seed: Some(
                                base_seed
                                    .wrapping_add(index * POINT_SEED_STRIDE)
                                    .wrapping_add(repeat as u64 * REPEAT_SEED_STRIDE),
                            ),
                            series_bin_ns: self.series_bin_ns,
                            engine: self.engine,
                            faults: self.faults.clone(),
                            metrics: self.metrics,
                        });
                    }
                    index += 1;
                }
            }
        }
        points
    }

    /// Run every point sequentially.
    pub fn run_sequential(&self) -> SweepResult {
        let reports = self.points().iter().map(|p| p.to_builder().run()).collect();
        SweepResult { reports }
    }

    /// The number of intra-run shards (threads) each point of this sweep
    /// will use, from the shared engine override.
    pub fn shards_per_point(&self) -> usize {
        match self.engine {
            // Mirror Engine::new exactly: the lookahead is the topology's
            // minimum cross-domain link latency, not bare global latency,
            // so the thread-budget split always agrees with the shard
            // count the engine actually resolves.
            Some(engine) => {
                let lookahead = self
                    .topology
                    .build()
                    .min_cross_domain_latency(engine.local_latency_ns, engine.global_latency_ns);
                engine
                    .shards
                    .resolve(self.topology.num_domains(), lookahead)
            }
            None => 1,
        }
    }

    /// Run every point in parallel across `threads` workers
    /// (0 = one per available CPU).
    ///
    /// When the engine override shards individual runs, the thread budget
    /// is split between the two levels of parallelism: `threads` is
    /// divided by the per-run shard count so `sweep workers × shards`
    /// stays within the requested budget.
    pub fn run_parallel(&self, threads: usize) -> SweepResult {
        let builders: Vec<SimulationBuilder> = self
            .points()
            .iter()
            .map(ExperimentSpec::to_builder)
            .collect();
        SweepResult {
            reports: run_builders_parallel(
                builders,
                budget_workers(threads, self.shards_per_point()),
            ),
        }
    }

    // -- serialisation front-ends -------------------------------------------

    /// Parse from TOML text and validate.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let spec: Self = toml::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Parse from JSON text and validate.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: Self = serde_json::from_str(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Load from a `.toml` or `.json` file (dispatching on the extension).
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let (text, is_json) = read_spec_file(path.as_ref())?;
        if is_json {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        }
    }

    /// Render as a TOML scenario file.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("sweep specs are always maps")
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialisation is infallible")
    }
}

/// Split a sweep-level thread budget between inter-run workers and
/// intra-run shards: with `shards_per_run`-way sharded points, only
/// `budget / shards_per_run` points should run concurrently (0 = one per
/// available CPU, resolved before dividing).
pub fn budget_workers(threads: usize, shards_per_run: usize) -> usize {
    let budget = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    (budget / shards_per_run.max(1)).max(1)
}

/// Catch traffic/topology combinations whose pattern constructor would
/// panic mid-run (after validation has nominally passed).
fn validate_traffic(traffic: &TrafficSpec, topology: &TopologySpec) -> Result<(), SpecError> {
    if let TrafficSpec::Adversarial { shift } = *traffic {
        let domains = topology.num_domains();
        if shift % domains == 0 {
            return Err(SpecError(format!(
                "adversarial shift {shift} is a multiple of the domain count {domains}, \
                 so every node would target its own domain"
            )));
        }
    }
    Ok(())
}

fn read_spec_file(path: &Path) -> Result<(String, bool), SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    let is_json = path
        .extension()
        .map(|ext| ext.eq_ignore_ascii_case("json"))
        .unwrap_or(false);
    Ok((text, is_json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::LoadSweep;
    use dragonfly_topology::config::DragonflyConfig;
    use qadaptive_core::QAdaptiveParams;

    fn sample_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "adv1".to_string(),
            topology: DragonflyConfig::tiny().into(),
            routing: RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            traffic: TrafficSpec::Adversarial { shift: 1 },
            workload: None,
            load: Some(0.25),
            schedule: None,
            warmup_ns: 10_000,
            measure_ns: 20_000,
            tail_ns: 5_000,
            seed: Some(9),
            series_bin_ns: Some(5_000),
            engine: Some(EngineConfig::default()),
            faults: Vec::new(),
            metrics: None,
        }
    }

    #[test]
    fn toml_and_json_round_trip() {
        let spec = sample_spec();
        let toml_text = spec.to_toml();
        let json_text = spec.to_json();
        assert_eq!(ExperimentSpec::from_toml(&toml_text).unwrap(), spec);
        assert_eq!(ExperimentSpec::from_json(&json_text).unwrap(), spec);
    }

    #[test]
    fn minimal_toml_uses_defaults() {
        let spec = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n[topology]\np = 2\na = 4\nh = 2\n",
        )
        .unwrap();
        assert_eq!(spec.routing, RoutingSpec::Minimal);
        assert_eq!(spec.traffic, TrafficSpec::UniformRandom);
        assert_eq!(spec.effective_seed(), DEFAULT_SEED);
        assert_eq!(spec.tail_ns, 0);
        assert_eq!(spec.effective_schedule(), LoadSchedule::constant(0.2));
    }

    #[test]
    fn validation_rejects_contradictions() {
        let mut spec = sample_spec();
        spec.schedule = Some(LoadSchedule::constant(0.4));
        assert!(spec.validate().unwrap_err().0.contains("not both"));
        spec.schedule = None;
        spec.load = None;
        assert!(spec.validate().is_err());
        let mut bad_load = sample_spec();
        bad_load.load = Some(1.5);
        assert!(bad_load.validate().is_err());
        let mut bad_window = sample_spec();
        bad_window.measure_ns = 0;
        assert!(bad_window.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_schedule_loads() {
        // Deserialisation bypasses the LoadSchedule constructor asserts, so
        // validate() must catch what `load = 1.7` would catch.
        let spec = ExperimentSpec::from_toml(
            "warmup_ns = 1000\nmeasure_ns = 1000\n[schedule]\nsegments = [[0, 1.7]]\n\
             [topology]\np = 2\na = 4\nh = 2\n",
        );
        assert!(spec.unwrap_err().0.contains("must be in [0, 1]"));
        let unsorted = ExperimentSpec::from_toml(
            "warmup_ns = 1000\nmeasure_ns = 1000\n[schedule]\nsegments = [[5000, 0.2], [0, 0.4]]\n\
             [topology]\np = 2\na = 4\nh = 2\n",
        );
        assert!(unsorted.is_err());
    }

    #[test]
    fn validation_rejects_self_targeting_adversarial_shift() {
        // tiny() has 9 groups; shift 9 (or 0) would make every node target
        // its own group and panic inside the pattern constructor mid-run.
        let mut spec = sample_spec();
        spec.traffic = TrafficSpec::Adversarial { shift: 9 };
        assert!(spec
            .validate()
            .unwrap_err()
            .0
            .contains("multiple of the domain count"));
        spec.traffic = TrafficSpec::Adversarial { shift: 10 };
        assert!(spec.validate().is_ok());
        let mut sweep = sample_sweep();
        sweep.traffics = vec![TrafficSpec::Adversarial { shift: 0 }];
        assert!(sweep.validate().is_err());
    }

    #[test]
    fn spec_and_builder_convert_both_ways() {
        let spec = sample_spec();
        let back = spec.to_builder().to_spec(&spec.name);
        // `load` is canonicalised into a schedule by the builder.
        assert_eq!(back.effective_schedule(), spec.effective_schedule());
        assert_eq!(back.topology, spec.topology);
        assert_eq!(back.routing, spec.routing);
        assert_eq!(back.traffic, spec.traffic);
        assert_eq!(back.warmup_ns, spec.warmup_ns);
        assert_eq!(back.measure_ns, spec.measure_ns);
        assert_eq!(back.tail_ns, spec.tail_ns);
        assert_eq!(back.effective_seed(), spec.effective_seed());
        assert_eq!(back.series_bin_ns, spec.series_bin_ns);
        assert_eq!(back.engine, spec.engine);
    }

    #[test]
    fn spec_run_equals_builder_run() {
        let mut spec = sample_spec();
        spec.series_bin_ns = None;
        spec.engine = None;
        spec.tail_ns = 0;
        let from_spec = spec.run();
        let from_builder = SimulationBuilder::new(spec.topology)
            .routing(spec.routing)
            .traffic(spec.traffic)
            .offered_load(0.25)
            .warmup_ns(spec.warmup_ns)
            .measure_ns(spec.measure_ns)
            .seed(9)
            .run();
        assert_eq!(from_spec.packets_delivered, from_builder.packets_delivered);
        assert_eq!(from_spec.mean_latency_us, from_builder.mean_latency_us);
        assert_eq!(from_spec.throughput, from_builder.throughput);
    }

    fn sample_sweep() -> SweepSpec {
        SweepSpec {
            name: "tiny".to_string(),
            topology: DragonflyConfig::tiny().into(),
            traffics: vec![TrafficSpec::UniformRandom],
            workload: None,
            routings: vec![RoutingSpec::Minimal, RoutingSpec::UgalG],
            loads: vec![0.1, 0.3],
            warmup_ns: 5_000,
            measure_ns: 10_000,
            seed: Some(2),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        }
    }

    #[test]
    fn sweep_round_trips_and_counts_points() {
        let sweep = sample_sweep();
        assert_eq!(SweepSpec::from_toml(&sweep.to_toml()).unwrap(), sweep);
        assert_eq!(SweepSpec::from_json(&sweep.to_json()).unwrap(), sweep);
        assert_eq!(sweep.len(), 4);
        let mut repeated = sweep.clone();
        repeated.seeds_per_point = Some(3);
        assert_eq!(repeated.len(), 12);
        // Repetitions of a point share everything but the seed.
        let points = repeated.points();
        assert_eq!(points[0].routing, points[1].routing);
        assert_eq!(points[0].load, points[1].load);
        assert_ne!(points[0].seed, points[1].seed);
    }

    #[test]
    fn sweep_spec_reproduces_load_sweep_exactly() {
        let sweep = sample_sweep();
        let legacy = LoadSweep {
            topology: DragonflyConfig::tiny(),
            traffic: sweep.traffics[0],
            routings: sweep.routings.clone(),
            loads: sweep.loads.clone(),
            warmup_ns: sweep.warmup_ns,
            measure_ns: sweep.measure_ns,
            seed: 2,
        };
        let new = sweep.run_parallel(2);
        let old = legacy.run_parallel(2);
        assert_eq!(new.reports.len(), old.reports.len());
        for (a, b) in new.reports.iter().zip(old.reports.iter()) {
            assert_eq!(a.routing, b.routing);
            assert_eq!(a.offered_load, b.offered_load);
            assert_eq!(a.packets_delivered, b.packets_delivered);
            assert_eq!(a.mean_latency_us, b.mean_latency_us);
            assert_eq!(a.throughput, b.throughput);
        }
    }

    #[test]
    fn engine_shards_round_trip_through_scenario_files() {
        use dragonfly_engine::config::ShardKind;
        let mut spec = sample_spec();
        spec.engine.as_mut().unwrap().shards = ShardKind::Fixed(3);
        assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
        assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
        spec.engine.as_mut().unwrap().shards = ShardKind::Auto;
        assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
        // The TOML key is documented in scenarios/README.md.
        let parsed = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n[topology]\np = 2\na = 4\nh = 2\n\
             [engine]\npacket_bytes = 128\nlink_bytes_per_ns = 4.0\nlocal_latency_ns = 30\n\
             global_latency_ns = 300\nhost_latency_ns = 10\nrouter_latency_ns = 100\n\
             vc_buffer_packets = 20\noutput_queue_packets = 20\nnum_vcs = 5\n\
             shards = { Fixed = 2 }\n",
        )
        .unwrap();
        assert_eq!(parsed.engine.unwrap().shards, ShardKind::Fixed(2));
    }

    #[test]
    fn sharded_spec_run_matches_unsharded_run_exactly() {
        use dragonfly_engine::config::ShardKind;
        let mut spec = sample_spec();
        spec.series_bin_ns = None;
        spec.tail_ns = 0;
        let single = spec.run();
        spec.engine.as_mut().unwrap().shards = ShardKind::Fixed(2);
        let sharded = spec.run();
        assert_eq!(single.packets_delivered, sharded.packets_delivered);
        assert_eq!(single.mean_latency_us, sharded.mean_latency_us);
        assert_eq!(single.p99_latency_us, sharded.p99_latency_us);
        assert_eq!(single.throughput, sharded.throughput);
        assert_eq!(single.mean_hops, sharded.mean_hops);
        assert_eq!(single.events_processed, sharded.events_processed);
    }

    #[test]
    fn thread_budget_divides_between_sweep_and_shards() {
        assert_eq!(budget_workers(8, 1), 8);
        assert_eq!(budget_workers(8, 4), 2);
        assert_eq!(budget_workers(8, 3), 2);
        assert_eq!(budget_workers(2, 4), 1, "never starves the sweep");
        assert!(budget_workers(0, 1) >= 1, "0 resolves to the CPU count");
        let mut sweep = sample_sweep();
        assert_eq!(sweep.shards_per_point(), 1);
        sweep.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::config::ShardKind::Fixed(2),
            ..Default::default()
        });
        assert_eq!(sweep.shards_per_point(), 2);
    }

    #[test]
    fn workload_specs_round_trip_and_validate() {
        let mut spec = sample_spec();
        spec.traffic = TrafficSpec::UniformRandom;
        spec.workload = Some(WorkloadSpec::AllReduce { messages: 2 });
        spec.load = None;
        assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
        assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
        assert_eq!(spec.effective_intensity(), 1.0);
        assert!(spec.label().contains("AllReduce"));
        // A workload intensity may exceed the open-loop load cap of 1.0.
        spec.load = Some(2.5);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.effective_intensity(), 2.5);
        // ...but must stay positive, and cannot mix with a schedule.
        spec.load = Some(0.0);
        assert!(spec.validate().unwrap_err().0.contains("positive"));
        spec.load = None;
        spec.schedule = Some(LoadSchedule::constant(0.4));
        assert!(spec.validate().unwrap_err().0.contains("open-loop"));
        // Workload/topology mismatches surface as friendly spec errors.
        spec.schedule = None;
        spec.workload = Some(WorkloadSpec::HaloExchange {
            phases: 9,
            messages: 1,
            compute_ns: 0,
        });
        assert!(spec.validate().unwrap_err().0.contains("usable axes"));
    }

    #[test]
    fn workload_toml_scenario_parses_from_text() {
        let spec = ExperimentSpec::from_toml(
            "warmup_ns = 0\nmeasure_ns = 100000\nrouting = \"UgalG\"\n\
             [workload.allreduce]\nmessages = 2\n\
             [topology]\np = 2\na = 4\nh = 2\n",
        )
        .unwrap();
        assert_eq!(spec.workload, Some(WorkloadSpec::AllReduce { messages: 2 }));
        assert!(spec.load.is_none());
    }

    #[test]
    fn sweeps_carry_workloads_into_every_point() {
        let mut sweep = sample_sweep();
        sweep.workload = Some(WorkloadSpec::Barrier);
        assert_eq!(SweepSpec::from_toml(&sweep.to_toml()).unwrap(), sweep);
        assert!(sweep.validate().is_ok());
        let points = sweep.points();
        assert!(points
            .iter()
            .all(|p| p.workload == Some(WorkloadSpec::Barrier)));
        // Intensities above 1.0 are legal in workload sweeps...
        sweep.loads = vec![0.5, 2.0];
        assert!(sweep.validate().is_ok());
        // ...but not in open-loop sweeps, and never non-positive.
        sweep.workload = None;
        assert!(sweep.validate().is_err());
        sweep.workload = Some(WorkloadSpec::Barrier);
        sweep.loads = vec![0.0];
        assert!(sweep.validate().unwrap_err().0.contains("positive"));
    }

    #[test]
    fn fault_entries_round_trip_and_parse_from_scenario_syntax() {
        use crate::fault::FaultSpecEntry;
        let mut spec = sample_spec();
        spec.faults = vec![
            FaultSpecEntry::random_global_down(50.0, 0.05, 7),
            FaultSpecEntry::router_down(60.0, 2),
        ];
        assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
        assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
        // The documented scenario syntax uses [[faults]] headers.
        let parsed = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n\
             [topology]\np = 2\na = 4\nh = 2\n\
             [[faults]]\nat_us = 50.0\nkind = \"random_global_down\"\nfraction = 0.05\n\
             [[faults]]\nat_us = 70.0\nkind = \"router_up\"\nrouter = 3\n",
        )
        .unwrap();
        assert_eq!(parsed.faults.len(), 2);
        assert_eq!(parsed.faults[0].fraction, Some(0.05));
        assert_eq!(parsed.faults[1].router, Some(3));
        assert_eq!(parsed.faults[1].at_ns(), 70_000);
    }

    #[test]
    fn bad_fault_entries_name_the_field_and_legal_forms() {
        let err = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n\
             [topology]\np = 2\na = 4\nh = 2\n\
             [[faults]]\nat_us = 50.0\nkind = \"melt\"\n",
        )
        .unwrap_err()
        .0;
        assert!(err.contains("faults[0]"), "{err}");
        assert!(err.contains("`kind`"), "{err}");
        assert!(err.contains("link_down"), "names the legal forms: {err}");
        // Topology-level target errors surface through validate() too.
        let err = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n\
             [topology]\np = 2\na = 4\nh = 2\n\
             [[faults]]\nat_us = 50.0\nkind = \"router_down\"\nrouter = 999\n",
        )
        .unwrap_err()
        .0;
        assert!(err.contains("router 999"), "{err}");
        // Sweeps validate their shared fault list the same way.
        let mut sweep = sample_sweep();
        sweep.faults = vec![crate::fault::FaultSpecEntry::router_down(1.0, 999)];
        assert!(sweep.validate().unwrap_err().0.contains("router 999"));
        sweep.faults = vec![crate::fault::FaultSpecEntry::router_down(1.0, 3)];
        assert!(sweep.validate().is_ok());
        assert!(sweep.points().iter().all(|p| p.faults == sweep.faults));
    }

    #[test]
    fn metrics_mode_parses_round_trips_and_stays_out_of_legacy_files() {
        // An unset `[metrics]` table must not appear in TOML output
        // (keeps older scenario files byte-identical), and files from
        // before the field existed must still parse in both encodings.
        let spec = sample_spec();
        assert!(!spec.to_toml().contains("[metrics]"));
        let legacy = ExperimentSpec::from_json(
            r#"{"topology": {"p": 2, "a": 4, "h": 2},
                "load": 0.2, "warmup_ns": 5000, "measure_ns": 5000}"#,
        )
        .unwrap();
        assert_eq!(legacy.metrics, None);
        // The documented scenario syntax.
        let parsed = ExperimentSpec::from_toml(
            "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n\
             [topology]\np = 2\na = 4\nh = 2\n\
             [metrics]\nmode = \"Streaming\"\n",
        )
        .unwrap();
        assert_eq!(
            parsed.metrics,
            Some(MetricsSpec {
                mode: MetricsMode::Streaming
            })
        );
        assert_eq!(
            ExperimentSpec::from_toml(&parsed.to_toml()).unwrap(),
            parsed
        );
        assert_eq!(
            ExperimentSpec::from_json(&parsed.to_json()).unwrap(),
            parsed
        );
        // Sweeps share the knob with every point.
        let mut sweep = sample_sweep();
        sweep.metrics = Some(MetricsSpec {
            mode: MetricsMode::Streaming,
        });
        assert_eq!(SweepSpec::from_toml(&sweep.to_toml()).unwrap(), sweep);
        assert!(sweep.points().iter().all(|p| p.metrics == sweep.metrics));
    }

    #[test]
    fn streaming_spec_reports_match_exact_within_one_sketch_bucket() {
        let mut exact = sample_spec();
        exact.series_bin_ns = None;
        exact.tail_ns = 0;
        let mut streaming = exact.clone();
        streaming.metrics = Some(MetricsSpec {
            mode: MetricsMode::Streaming,
        });
        let a = exact.run();
        let b = streaming.run();
        // Counting metrics are mode-independent; means are exact in both
        // modes (integer sums); quantiles agree within one sketch bucket
        // (the sketch reports the bucket lower bound, so streamed values
        // are <= exact and within the <=1/64 relative bucket width).
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.mean_latency_us, b.mean_latency_us);
        assert_eq!(a.mean_hops, b.mean_hops);
        assert_eq!(a.max_latency_us, b.max_latency_us);
        assert_eq!(a.fraction_below_2us, b.fraction_below_2us);
        for (ex, st) in [
            (a.median_latency_us, b.median_latency_us),
            (a.p95_latency_us, b.p95_latency_us),
            (a.p99_latency_us, b.p99_latency_us),
        ] {
            assert!(
                st <= ex + 1e-9 && ex - st <= ex / 60.0 + 1e-9,
                "streamed quantile {st} vs exact {ex}"
            );
        }
        assert!(b.memory_bytes > 0, "report carries the memory rollup");
    }

    #[test]
    fn empty_lists_fall_back_to_paper_defaults() {
        let sweep = SweepSpec::from_toml(
            "loads = [0.2]\nwarmup_ns = 1000\nmeasure_ns = 1000\n[topology]\np = 2\na = 4\nh = 2\n",
        )
        .unwrap();
        assert_eq!(sweep.effective_routings(), RoutingSpec::paper_lineup());
        assert_eq!(sweep.effective_traffics(), vec![TrafficSpec::UniformRandom]);
        assert_eq!(sweep.len(), 6);
    }
}
