//! Run-level checkpoint files — the persistence layer behind the CLI's
//! `--checkpoint-every` and `--resume-from` flags.
//!
//! A [`RunCheckpoint`] bundles everything a later process needs to
//! continue a run bit-for-bit (see `dragonfly_engine::checkpoint` for the
//! engine-side contract):
//!
//! * the originating [`ExperimentSpec`] — resume refuses to continue under
//!   a different spec, because the engine snapshot only stores state the
//!   spec cannot reconstruct;
//! * the [`EngineCheckpoint`] (event queue, packet arena, router/NIC/agent
//!   state, fault cursor, injector state);
//! * the [`MetricsCollector`], which the engine snapshot deliberately
//!   excludes (observers are a sim-layer concern).
//!
//! Files are JSON: self-describing, diffable in tests, and free of any
//! dependency the workspace does not already vendor. A version tag guards
//! against silently resuming from an incompatible layout.

use crate::collector::MetricsCollector;
use crate::spec::{ExperimentSpec, SpecError};
use dragonfly_engine::checkpoint::EngineCheckpoint;
use dragonfly_engine::EngineConfig;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Format tag stored in every checkpoint file. Bump when any serialized
/// layout changes incompatibly.
///
/// v2 added the bounded-memory state: streaming latency-sketch bins in
/// the collector and sparse (`q_rows`-keyed) paged Q-table rows in agent
/// snapshots.
///
/// v3 generalises the engine snapshot to the canonical
/// single-shard-equivalent form (see `dragonfly_engine::checkpoint`):
/// sharded and pipelined runs checkpoint too, and a snapshot taken at
/// `shards = N` resumes at any `shards = M`. The serialized layout is
/// unchanged — earlier files were always single-shard, which *is* the
/// canonical form — but v3 resumes no longer require the execution-mode
/// knobs (shards, pipeline, scheduler, Q-table paging threshold) of the
/// checkpointing run, so the version tag records the semantic change.
pub const CHECKPOINT_VERSION: &str = "qadaptive-checkpoint-v3";

/// Older format tags this build still reads. Every field added since v1
/// is `#[serde(default)]`-compatible (exact-mode sketches, dense Q-table
/// rows), and v2 files are already in the canonical single-shard form v3
/// expects, so both tags deserialize into the current layout unchanged.
pub const COMPATIBLE_VERSIONS: &[&str] = &["qadaptive-checkpoint-v1", "qadaptive-checkpoint-v2"];

/// A complete, self-contained snapshot of a running experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format tag ([`CHECKPOINT_VERSION`]).
    pub version: String,
    /// The experiment this snapshot belongs to (after any CLI overrides).
    pub spec: ExperimentSpec,
    /// Engine state (see `dragonfly_engine::checkpoint`).
    pub engine: EngineCheckpoint,
    /// The measurement observer at snapshot time.
    pub collector: MetricsCollector,
}

impl RunCheckpoint {
    /// Bundle a snapshot taken mid-run.
    pub fn new(
        spec: ExperimentSpec,
        engine: EngineCheckpoint,
        collector: MetricsCollector,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION.to_string(),
            spec,
            engine,
            collector,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints always serialize")
    }

    /// Parse from JSON, rejecting unknown format versions with a
    /// contextual error.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let ck: Self = serde_json::from_str(text)
            .map_err(|e| SpecError(format!("malformed checkpoint file: {e}")))?;
        if ck.version != CHECKPOINT_VERSION && !COMPATIBLE_VERSIONS.contains(&ck.version.as_str()) {
            return Err(SpecError(format!(
                "checkpoint version {:?} is not supported (this build reads {:?} and {:?})",
                ck.version, CHECKPOINT_VERSION, COMPATIBLE_VERSIONS
            )));
        }
        Ok(ck)
    }

    /// Write the checkpoint to a file, atomically: the bytes go to a
    /// temporary file in the same directory, which is renamed over the
    /// final path only once fully written. A crash mid-write (power
    /// loss, kill -9) therefore never leaves a truncated snapshot at the
    /// path a later `--resume-from` will read — the old snapshot (if
    /// any) survives intact and at worst a stale `.tmp` file remains.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SpecError> {
        let path = path.as_ref();
        let file_name = path
            .file_name()
            .ok_or_else(|| SpecError(format!("checkpoint path {} has no file name", path.display())))?;
        let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| SpecError(format!("cannot write checkpoint {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SpecError(format!(
                "cannot move checkpoint into place at {}: {e}",
                path.display()
            ))
        })
    }

    /// Read a checkpoint from a file. Both I/O and parse failures name
    /// the offending file, so a truncated or corrupted snapshot yields a
    /// clean contextual error rather than a panic.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read checkpoint {}: {e}", path.display())))?;
        Self::from_json(&text)
            .map_err(|e| SpecError(format!("checkpoint {}: {}", path.display(), e.0)))
    }

    /// Verify that `spec` describes the same experiment this checkpoint
    /// was taken from. The engine snapshot only stores state the spec
    /// cannot rebuild, so resuming under a different spec would silently
    /// mix two experiments.
    ///
    /// Execution-mode knobs — shard count, pipelining, event-scheduler
    /// kind, Q-table paging threshold — are deliberately **excluded**
    /// from the comparison: the snapshot is partition-independent, and
    /// resuming a `shards = N` checkpoint at `shards = M` is part of the
    /// v3 contract. Everything else must match exactly; the error names
    /// the first mismatched field.
    pub fn check_spec_matches(&self, spec: &ExperimentSpec) -> Result<(), SpecError> {
        let ours = resume_relevant(&self.spec).to_value();
        let theirs = resume_relevant(spec).to_value();
        if let Some(diff) = first_diff("spec", &ours, &theirs) {
            return Err(SpecError(format!(
                "checkpoint was taken from experiment {:?}, which differs from the \
                 requested experiment {:?} at {diff}; resume with the same scenario \
                 file, seed and overrides (execution-mode knobs — shards, pipeline, \
                 scheduler — may differ)",
                self.spec.name, spec.name
            )));
        }
        Ok(())
    }
}

/// The spec with every execution-mode knob reset to its default: two
/// specs that agree on this projection describe the same simulation
/// (engine determinism makes shard count, pipelining and scheduler kind
/// unobservable), so resume accepts them interchangeably. A fully
/// default engine block collapses to `None`, since CLI overrides
/// materialise a default block just to set a knob on it.
fn resume_relevant(spec: &ExperimentSpec) -> ExperimentSpec {
    let mut s = spec.clone();
    if let Some(engine) = &mut s.engine {
        let defaults = EngineConfig::default();
        engine.scheduler = defaults.scheduler;
        engine.shards = defaults.shards;
        engine.pipeline = defaults.pipeline;
        engine.qtable_page_rows_threshold = defaults.qtable_page_rows_threshold;
        if *engine == defaults {
            s.engine = None;
        }
    }
    s
}

/// First leaf where two JSON values disagree, as a dotted path rooted at
/// `path`, or `None` when equal. Drives the spec-mismatch message: naming
/// the exact field beats asking the user to diff two TOML files.
fn first_diff(path: &str, a: &Value, b: &Value) -> Option<String> {
    match (a, b) {
        (Value::Map(ea), Value::Map(eb)) => {
            for (k, va) in ea {
                match eb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => {
                        if let Some(d) = first_diff(&format!("{path}.{k}"), va, vb) {
                            return Some(d);
                        }
                    }
                    None => {
                        return Some(format!(
                            "{path}.{k} (set in the checkpoint, absent in the request)"
                        ))
                    }
                }
            }
            eb.iter()
                .find(|(k, _)| !ea.iter().any(|(ka, _)| ka == k))
                .map(|(k, _)| format!("{path}.{k} (absent in the checkpoint, set in the request)"))
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            if sa.len() != sb.len() {
                return Some(format!(
                    "{path} (length {} in the checkpoint vs {} requested)",
                    sa.len(),
                    sb.len()
                ));
            }
            sa.iter()
                .zip(sb)
                .enumerate()
                .find_map(|(i, (va, vb))| first_diff(&format!("{path}[{i}]"), va, vb))
        }
        _ => {
            if a == b {
                None
            } else {
                Some(format!(
                    "{path} ({} in the checkpoint vs {} requested)",
                    serde_json::to_string(a).unwrap_or_default(),
                    serde_json::to_string(b).unwrap_or_default()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    fn spec() -> ExperimentSpec {
        let mut s = ExperimentSpec::new(DragonflyConfig::tiny());
        s.name = "ck-test".to_string();
        s
    }

    fn sample() -> RunCheckpoint {
        let mut engine = EngineCheckpoint {
            now: 123,
            ..Default::default()
        };
        engine.shard.generated = 5;
        RunCheckpoint::new(spec(), engine, MetricsCollector::new(0, 1_000))
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let back = RunCheckpoint::from_json(&sample().to_json()).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.engine.now, 123);
        assert_eq!(back.engine.shard.generated, 5);
        assert_eq!(back.collector.window_end_ns, 1_000);
        back.check_spec_matches(&spec()).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected_with_context() {
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v999".to_string();
        let err = RunCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(err.0.contains("v999"), "error names the bad version: {err}");
    }

    #[test]
    fn v1_checkpoints_are_still_accepted() {
        // Every field v2 added (sketch bins, sparse q_rows) is
        // serde-default-compatible, so the v1 tag stays readable.
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v1".to_string();
        let back = RunCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.version, "qadaptive-checkpoint-v1");
        assert_eq!(back.engine.now, 123);
    }

    #[test]
    fn v2_checkpoints_are_still_accepted() {
        // v2 files are already in the canonical single-shard form the v3
        // restore path expects, so the tag stays readable too.
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v2".to_string();
        let back = RunCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.version, "qadaptive-checkpoint-v2");
        assert_eq!(back.engine.shard.generated, 5);
    }

    #[test]
    fn spec_mismatch_is_rejected_with_both_names() {
        let ck = sample();
        let mut other = spec();
        other.seed = Some(999);
        let err = ck.check_spec_matches(&other).unwrap_err();
        assert!(
            err.0.contains("ck-test"),
            "error names the experiments: {err}"
        );
        assert!(
            err.0.contains("spec.seed"),
            "error names the mismatched field: {err}"
        );
    }

    #[test]
    fn execution_mode_overrides_do_not_block_resume() {
        // The v3 contract: a resume may change shards / pipeline /
        // scheduler / paging threshold freely — only knobs that alter the
        // simulated experiment must match.
        use dragonfly_engine::config::ShardKind;
        let ck = sample(); // engine: None
        let mut other = spec();
        other.engine = Some(EngineConfig {
            shards: ShardKind::Fixed(4),
            pipeline: true,
            ..Default::default()
        });
        ck.check_spec_matches(&other).unwrap();

        // But an engine knob that changes physics still trips the guard.
        let mut physical = spec();
        physical.engine = Some(EngineConfig {
            local_latency_ns: 99,
            ..Default::default()
        });
        let err = ck.check_spec_matches(&physical).unwrap_err();
        assert!(
            err.0.contains("spec.engine"),
            "error names the engine block: {err}"
        );
    }

    #[test]
    fn truncated_file_is_a_contextual_error_naming_the_path() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt.json");
        let mut text = sample().to_json();
        text.truncate(text.len() / 2); // simulate a torn non-atomic write
        std::fs::write(&path, text).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.0.contains("truncated.ckpt.json") && err.0.contains("malformed"),
            "error names the file and the cause: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_overwrites_cleanly() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt.json");
        let tmp = dir.join("atomic.ckpt.json.tmp");

        // First write, then overwrite with a different snapshot — the
        // rename must replace the old file and leave no temp file behind.
        sample().save(&path).unwrap();
        let mut second = sample();
        second.engine.now = 456;
        second.save(&path).unwrap();
        assert!(!tmp.exists(), "temp file must not survive a save");
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 456);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt.json");
        sample().save(&path).unwrap();
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_contextual_error() {
        let err = RunCheckpoint::load("/nonexistent/qadaptive.ckpt.json").unwrap_err();
        assert!(err.0.contains("cannot read checkpoint"), "{err}");
    }
}
