//! Run-level checkpoint files — the persistence layer behind the CLI's
//! `--checkpoint-every` and `--resume-from` flags.
//!
//! A [`RunCheckpoint`] bundles everything a later process needs to
//! continue a run bit-for-bit (see `dragonfly_engine::checkpoint` for the
//! engine-side contract):
//!
//! * the originating [`ExperimentSpec`] — resume refuses to continue under
//!   a different spec, because the engine snapshot only stores state the
//!   spec cannot reconstruct;
//! * the [`EngineCheckpoint`] (event queue, packet arena, router/NIC/agent
//!   state, fault cursor, injector state);
//! * the [`MetricsCollector`], which the engine snapshot deliberately
//!   excludes (observers are a sim-layer concern).
//!
//! Files come in two encodings sharing one logical layout:
//!
//! * **Binary** (default, version tag `qadaptive-checkpoint-v4`) — the
//!   compact magic-prefixed codec of `serde_json::binary`. On the
//!   110k-node scale system it is several times smaller and faster than
//!   JSON, which matters when a snapshot is taken every few simulated
//!   microseconds.
//! * **JSON** (version tags v1–v3) — self-describing and diffable in
//!   tests. Still written on request ([`CheckpointFormat::Json`]) and
//!   always accepted on load.
//!
//! [`RunCheckpoint::load`] sniffs the encoding from the first bytes of
//! the file (binary streams carry a magic header; JSON documents start
//! with `{`), so `--resume-from` needs no format flag. A version tag
//! guards against silently resuming from an incompatible layout.

use crate::collector::MetricsCollector;
use crate::spec::{ExperimentSpec, SpecError};
use dragonfly_engine::checkpoint::EngineCheckpoint;
use dragonfly_engine::EngineConfig;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Format tag stored in every checkpoint file. Bump when any serialized
/// layout changes incompatibly.
///
/// v2 added the bounded-memory state: streaming latency-sketch bins in
/// the collector and sparse (`q_rows`-keyed) paged Q-table rows in agent
/// snapshots.
///
/// v3 generalises the engine snapshot to the canonical
/// single-shard-equivalent form (see `dragonfly_engine::checkpoint`):
/// sharded and pipelined runs checkpoint too, and a snapshot taken at
/// `shards = N` resumes at any `shards = M`. The serialized layout is
/// unchanged — earlier files were always single-shard, which *is* the
/// canonical form — but v3 resumes no longer require the execution-mode
/// knobs (shards, pipeline, scheduler, Q-table paging threshold) of the
/// checkpointing run, so the version tag records the semantic change.
pub const CHECKPOINT_VERSION: &str = "qadaptive-checkpoint-v3";

/// Format tag of binary snapshot files. The logical layout is exactly
/// v3's — only the container changed from JSON text to the
/// `serde_json::binary` codec — but the tag records which encoder wrote
/// the file, and pre-v4 builds reject it cleanly instead of choking on
/// the magic bytes.
pub const BINARY_CHECKPOINT_VERSION: &str = "qadaptive-checkpoint-v4";

/// Older format tags this build still reads. Every field added since v1
/// is `#[serde(default)]`-compatible (exact-mode sketches, dense Q-table
/// rows), and v2 files are already in the canonical single-shard form v3
/// expects, so both tags deserialize into the current layout unchanged.
pub const COMPATIBLE_VERSIONS: &[&str] = &["qadaptive-checkpoint-v1", "qadaptive-checkpoint-v2"];

/// On-disk encoding of a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// Compact magic-prefixed binary (`qadaptive-checkpoint-v4`).
    #[default]
    Binary,
    /// Human-readable JSON (`qadaptive-checkpoint-v3`), for diffing and
    /// for tooling that predates the binary codec.
    Json,
}

impl std::str::FromStr for CheckpointFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "binary" => Ok(Self::Binary),
            "json" => Ok(Self::Json),
            other => Err(format!(
                "unknown checkpoint format {other:?} (expected `binary` or `json`)"
            )),
        }
    }
}

/// A complete, self-contained snapshot of a running experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format tag ([`CHECKPOINT_VERSION`]).
    pub version: String,
    /// The experiment this snapshot belongs to (after any CLI overrides).
    pub spec: ExperimentSpec,
    /// Engine state (see `dragonfly_engine::checkpoint`).
    pub engine: EngineCheckpoint,
    /// The measurement observer at snapshot time.
    pub collector: MetricsCollector,
}

impl RunCheckpoint {
    /// Bundle a snapshot taken mid-run.
    pub fn new(
        spec: ExperimentSpec,
        engine: EngineCheckpoint,
        collector: MetricsCollector,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION.to_string(),
            spec,
            engine,
            collector,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints always serialize")
    }

    /// Serialize to the compact binary encoding. The stored version tag
    /// becomes [`BINARY_CHECKPOINT_VERSION`] — the tag records the
    /// encoder, and the in-memory `version` field (v3) must not leak
    /// into a container it does not describe.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut tree = self.to_value();
        if let Value::Map(entries) = &mut tree {
            for (k, v) in entries.iter_mut() {
                if k == "version" {
                    *v = Value::Str(BINARY_CHECKPOINT_VERSION.to_string());
                }
            }
        }
        serde_json::binary::value_to_vec(&tree)
    }

    /// Parse from JSON, rejecting unknown format versions with a
    /// contextual error.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let ck: Self = serde_json::from_str(text)
            .map_err(|e| SpecError(format!("malformed checkpoint file: {e}")))?;
        ck.check_version()?;
        Ok(ck)
    }

    /// Parse from the binary encoding (the caller has already sniffed
    /// the magic), rejecting unknown format versions.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, SpecError> {
        let ck: Self = serde_json::binary::from_slice(bytes)
            .map_err(|e| SpecError(format!("malformed checkpoint file: {e}")))?;
        ck.check_version()?;
        Ok(ck)
    }

    /// Reject version tags this build does not read. Both containers
    /// share the check: the logical layout is identical, so a v3 tag in
    /// a binary file or a v4 tag in JSON is tolerated — only genuinely
    /// unknown tags (a future incompatible layout) are refused.
    fn check_version(&self) -> Result<(), SpecError> {
        if self.version != CHECKPOINT_VERSION
            && self.version != BINARY_CHECKPOINT_VERSION
            && !COMPATIBLE_VERSIONS.contains(&self.version.as_str())
        {
            return Err(SpecError(format!(
                "checkpoint version {:?} is not supported (this build reads {:?}, {:?} and {:?})",
                self.version, BINARY_CHECKPOINT_VERSION, CHECKPOINT_VERSION, COMPATIBLE_VERSIONS
            )));
        }
        Ok(())
    }

    /// Write the checkpoint to a file, atomically: the bytes go to a
    /// temporary file in the same directory, which is renamed over the
    /// final path only once fully written. A crash mid-write (power
    /// loss, kill -9) therefore never leaves a truncated snapshot at the
    /// path a later `--resume-from` will read — the old snapshot (if
    /// any) survives intact and at worst a stale `.tmp` file remains.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SpecError> {
        self.save_format(path, CheckpointFormat::default())
    }

    /// [`save`](Self::save) with an explicit on-disk encoding (the CLI's
    /// `--checkpoint-format` flag lands here).
    pub fn save_format(
        &self,
        path: impl AsRef<Path>,
        format: CheckpointFormat,
    ) -> Result<(), SpecError> {
        let path = path.as_ref();
        let file_name = path.file_name().ok_or_else(|| {
            SpecError(format!(
                "checkpoint path {} has no file name",
                path.display()
            ))
        })?;
        let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
        let bytes = match format {
            CheckpointFormat::Binary => self.to_binary(),
            CheckpointFormat::Json => self.to_json().into_bytes(),
        };
        std::fs::write(&tmp, bytes)
            .map_err(|e| SpecError(format!("cannot write checkpoint {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SpecError(format!(
                "cannot move checkpoint into place at {}: {e}",
                path.display()
            ))
        })
    }

    /// Read a checkpoint from a file, sniffing the encoding from its
    /// first bytes (binary magic vs JSON text) — no format flag needed.
    /// Both I/O and parse failures name the offending file, so a
    /// truncated or corrupted snapshot yields a clean contextual error
    /// rather than a panic.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SpecError(format!("cannot read checkpoint {}: {e}", path.display())))?;
        let parsed = if serde_json::binary::looks_binary(&bytes) {
            Self::from_binary(&bytes)
        } else {
            let text = std::str::from_utf8(&bytes).map_err(|_| {
                SpecError(
                    "malformed checkpoint file: neither a binary stream nor UTF-8 JSON".to_string(),
                )
            });
            text.and_then(Self::from_json)
        };
        parsed.map_err(|e| SpecError(format!("checkpoint {}: {}", path.display(), e.0)))
    }

    /// Verify that `spec` describes the same experiment this checkpoint
    /// was taken from. The engine snapshot only stores state the spec
    /// cannot rebuild, so resuming under a different spec would silently
    /// mix two experiments.
    ///
    /// Execution-mode knobs — shard count, pipelining, event-scheduler
    /// kind, Q-table paging threshold — are deliberately **excluded**
    /// from the comparison: the snapshot is partition-independent, and
    /// resuming a `shards = N` checkpoint at `shards = M` is part of the
    /// v3 contract. Everything else must match exactly; the error names
    /// the first mismatched field.
    pub fn check_spec_matches(&self, spec: &ExperimentSpec) -> Result<(), SpecError> {
        let ours = resume_relevant(&self.spec).to_value();
        let theirs = resume_relevant(spec).to_value();
        if let Some(diff) = first_diff("spec", &ours, &theirs) {
            return Err(SpecError(format!(
                "checkpoint was taken from experiment {:?}, which differs from the \
                 requested experiment {:?} at {diff}; resume with the same scenario \
                 file, seed and overrides (execution-mode knobs — shards, pipeline, \
                 scheduler — may differ)",
                self.spec.name, spec.name
            )));
        }
        Ok(())
    }
}

/// The spec with every execution-mode knob reset to its default: two
/// specs that agree on this projection describe the same simulation
/// (engine determinism makes shard count, pipelining and scheduler kind
/// unobservable), so resume accepts them interchangeably. A fully
/// default engine block collapses to `None`, since CLI overrides
/// materialise a default block just to set a knob on it.
fn resume_relevant(spec: &ExperimentSpec) -> ExperimentSpec {
    let mut s = spec.clone();
    if let Some(engine) = &mut s.engine {
        let defaults = EngineConfig::default();
        engine.scheduler = defaults.scheduler;
        engine.shards = defaults.shards;
        engine.pipeline = defaults.pipeline;
        engine.qtable_page_rows_threshold = defaults.qtable_page_rows_threshold;
        if *engine == defaults {
            s.engine = None;
        }
    }
    s
}

/// First leaf where two JSON values disagree, as a dotted path rooted at
/// `path`, or `None` when equal. Drives the spec-mismatch message: naming
/// the exact field beats asking the user to diff two TOML files.
fn first_diff(path: &str, a: &Value, b: &Value) -> Option<String> {
    match (a, b) {
        (Value::Map(ea), Value::Map(eb)) => {
            for (k, va) in ea {
                match eb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => {
                        if let Some(d) = first_diff(&format!("{path}.{k}"), va, vb) {
                            return Some(d);
                        }
                    }
                    None => {
                        return Some(format!(
                            "{path}.{k} (set in the checkpoint, absent in the request)"
                        ))
                    }
                }
            }
            eb.iter()
                .find(|(k, _)| !ea.iter().any(|(ka, _)| ka == k))
                .map(|(k, _)| format!("{path}.{k} (absent in the checkpoint, set in the request)"))
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            if sa.len() != sb.len() {
                return Some(format!(
                    "{path} (length {} in the checkpoint vs {} requested)",
                    sa.len(),
                    sb.len()
                ));
            }
            sa.iter()
                .zip(sb)
                .enumerate()
                .find_map(|(i, (va, vb))| first_diff(&format!("{path}[{i}]"), va, vb))
        }
        _ => {
            if a == b {
                None
            } else {
                Some(format!(
                    "{path} ({} in the checkpoint vs {} requested)",
                    serde_json::to_string(a).unwrap_or_default(),
                    serde_json::to_string(b).unwrap_or_default()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    fn spec() -> ExperimentSpec {
        let mut s = ExperimentSpec::new(DragonflyConfig::tiny());
        s.name = "ck-test".to_string();
        s
    }

    fn sample() -> RunCheckpoint {
        let mut engine = EngineCheckpoint {
            now: 123,
            ..Default::default()
        };
        engine.shard.generated = 5;
        RunCheckpoint::new(spec(), engine, MetricsCollector::new(0, 1_000))
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let back = RunCheckpoint::from_json(&sample().to_json()).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.engine.now, 123);
        assert_eq!(back.engine.shard.generated, 5);
        assert_eq!(back.collector.window_end_ns, 1_000);
        back.check_spec_matches(&spec()).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected_with_context() {
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v999".to_string();
        let err = RunCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(err.0.contains("v999"), "error names the bad version: {err}");
    }

    #[test]
    fn v1_checkpoints_are_still_accepted() {
        // Every field v2 added (sketch bins, sparse q_rows) is
        // serde-default-compatible, so the v1 tag stays readable.
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v1".to_string();
        let back = RunCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.version, "qadaptive-checkpoint-v1");
        assert_eq!(back.engine.now, 123);
    }

    #[test]
    fn v2_checkpoints_are_still_accepted() {
        // v2 files are already in the canonical single-shard form the v3
        // restore path expects, so the tag stays readable too.
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v2".to_string();
        let back = RunCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.version, "qadaptive-checkpoint-v2");
        assert_eq!(back.engine.shard.generated, 5);
    }

    #[test]
    fn spec_mismatch_is_rejected_with_both_names() {
        let ck = sample();
        let mut other = spec();
        other.seed = Some(999);
        let err = ck.check_spec_matches(&other).unwrap_err();
        assert!(
            err.0.contains("ck-test"),
            "error names the experiments: {err}"
        );
        assert!(
            err.0.contains("spec.seed"),
            "error names the mismatched field: {err}"
        );
    }

    #[test]
    fn execution_mode_overrides_do_not_block_resume() {
        // The v3 contract: a resume may change shards / pipeline /
        // scheduler / paging threshold freely — only knobs that alter the
        // simulated experiment must match.
        use dragonfly_engine::config::ShardKind;
        let ck = sample(); // engine: None
        let mut other = spec();
        other.engine = Some(EngineConfig {
            shards: ShardKind::Fixed(4),
            pipeline: true,
            ..Default::default()
        });
        ck.check_spec_matches(&other).unwrap();

        // But an engine knob that changes physics still trips the guard.
        let mut physical = spec();
        physical.engine = Some(EngineConfig {
            local_latency_ns: 99,
            ..Default::default()
        });
        let err = ck.check_spec_matches(&physical).unwrap_err();
        assert!(
            err.0.contains("spec.engine"),
            "error names the engine block: {err}"
        );
    }

    #[test]
    fn truncated_file_is_a_contextual_error_naming_the_path() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt.json");
        let mut text = sample().to_json();
        text.truncate(text.len() / 2); // simulate a torn non-atomic write
        std::fs::write(&path, text).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.0.contains("truncated.ckpt.json") && err.0.contains("malformed"),
            "error names the file and the cause: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_overwrites_cleanly() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt.json");
        let tmp = dir.join("atomic.ckpt.json.tmp");

        // First write, then overwrite with a different snapshot — the
        // rename must replace the old file and leave no temp file behind.
        sample().save(&path).unwrap();
        let mut second = sample();
        second.engine.now = 456;
        second.save(&path).unwrap();
        assert!(!tmp.exists(), "temp file must not survive a save");
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 456);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let back = RunCheckpoint::from_binary(&sample().to_binary()).unwrap();
        // The binary container re-tags the snapshot as v4.
        assert_eq!(back.version, BINARY_CHECKPOINT_VERSION);
        assert_eq!(back.engine.now, 123);
        assert_eq!(back.engine.shard.generated, 5);
        assert_eq!(back.collector.window_end_ns, 1_000);
        back.check_spec_matches(&spec()).unwrap();
        // And the logical content matches the JSON encoding exactly
        // (modulo the version tag).
        let mut via_json = RunCheckpoint::from_json(&sample().to_json()).unwrap();
        via_json.version = BINARY_CHECKPOINT_VERSION.to_string();
        assert_eq!(via_json.to_json(), back.to_json());
    }

    #[test]
    fn default_save_is_binary_and_load_sniffs_it() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("default.ckpt");
        sample().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(
            serde_json::binary::looks_binary(&bytes),
            "save() must default to the binary encoding"
        );
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_binary_file_is_a_contextual_error_naming_the_path() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt");
        let mut bytes = sample().to_binary();
        bytes.truncate(bytes.len() / 2); // simulate a torn non-atomic write
        std::fs::write(&path, bytes).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.0.contains("truncated.ckpt") && err.0.contains("truncated or corrupted"),
            "error names the file and the cause: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_binary_payload_is_a_contextual_error_naming_the_path() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ckpt");
        let mut bytes = sample().to_binary();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // Decoding may fail at the codec layer or at the typed layer
        // (a flipped byte can still be a well-formed tree of the wrong
        // shape); either way the error is clean and names the file.
        if let Err(err) = RunCheckpoint::load(&path) {
            assert!(
                err.0.contains("corrupt.ckpt"),
                "error names the file: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_binary_file_is_a_contextual_error_naming_the_path() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrongmagic.ckpt");
        let mut bytes = sample().to_binary();
        bytes[0] = b'X'; // no longer the binary magic, and not JSON either
        std::fs::write(&path, &bytes).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.0.contains("wrongmagic.ckpt") && err.0.contains("malformed"),
            "error names the file and the cause: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_binary_codec_version_is_rejected_cleanly() {
        let mut bytes = sample().to_binary();
        bytes[7] = 200; // codec version byte inside the magic
        let err = RunCheckpoint::from_binary(&bytes).unwrap_err();
        assert!(err.0.contains("version 200"), "{err}");
    }

    #[test]
    fn checkpoint_format_parses_and_defaults_to_binary() {
        assert_eq!(
            "binary".parse::<CheckpointFormat>().unwrap(),
            CheckpointFormat::Binary
        );
        assert_eq!(
            "json".parse::<CheckpointFormat>().unwrap(),
            CheckpointFormat::Json
        );
        assert_eq!(CheckpointFormat::default(), CheckpointFormat::Binary);
        let err = "yaml".parse::<CheckpointFormat>().unwrap_err();
        assert!(err.contains("yaml"), "{err}");
    }

    #[test]
    fn json_fixtures_of_every_legacy_version_still_load_from_disk() {
        // The compatibility matrix as actual files on disk: a v1, v2 and
        // v3 JSON snapshot must all still load through the sniffing
        // `load()` path even now that binary is the default encoding.
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        for version in [
            "qadaptive-checkpoint-v1",
            "qadaptive-checkpoint-v2",
            CHECKPOINT_VERSION,
        ] {
            let mut ck = sample();
            ck.version = version.to_string();
            let path = dir.join(format!("{version}.ckpt.json"));
            ck.save_format(&path, CheckpointFormat::Json).unwrap();
            let back = RunCheckpoint::load(&path)
                .unwrap_or_else(|e| panic!("fixture {version} must load: {e}"));
            assert_eq!(back.version, version);
            assert_eq!(back.engine.now, 123);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt.json");
        sample().save(&path).unwrap();
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_contextual_error() {
        let err = RunCheckpoint::load("/nonexistent/qadaptive.ckpt.json").unwrap_err();
        assert!(err.0.contains("cannot read checkpoint"), "{err}");
    }
}
